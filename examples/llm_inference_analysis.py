"""Analyse the GEMMs behind LLM inference on Versal (the paper's motivation).

Transformers spend >90% of their compute in GEMM, and the shapes are
tall/fat/skinny rather than square (Table III).  This example takes the
BERT/ViT/Llama2 layers, places them on the roofline (Fig. 15), estimates
latency and bottlenecks on the best FP32 configuration (Fig. 14), and
shows what a DRAM-bandwidth upgrade buys for each layer.

Run:  python examples/llm_inference_analysis.py
"""

from repro import (
    AnalyticalModel,
    CharmDesign,
    DNN_WORKLOADS,
    DramPorts,
    Precision,
    Roofline,
    config_by_name,
)
from repro.reporting import render_table


def main() -> None:
    design_fast = CharmDesign(config_by_name("C6"))
    design_slow = design_fast.with_ports(DramPorts(2, 1))
    roofline = Roofline(Precision.INT8)
    int8_config = config_by_name("C11")

    rows = []
    for workload in DNN_WORKLOADS:
        slow = AnalyticalModel(design_slow).estimate(workload.shape)
        fast = AnalyticalModel(design_fast).estimate(workload.shape)
        ideal = roofline.point(workload.workload_id, workload.shape)
        tiled = roofline.tiled_point(workload.workload_id, workload.shape, int8_config)
        rows.append(
            {
                "layer": str(workload),
                "aspect": workload.shape.aspect(),
                "ms @20GB/s": round(slow.total_seconds * 1e3, 2),
                "ms @34GB/s": round(fast.total_seconds * 1e3, 2),
                "speedup": round(slow.total_seconds / fast.total_seconds, 2),
                "bottleneck": str(fast.bottleneck),
                "roofline (ideal)": "compute" if ideal.compute_bound else "DRAM",
                "roofline (tiled)": "compute" if tiled.compute_bound else "DRAM",
            }
        )

    print(render_table(rows, title="Table III workloads on C6 (FP32, analytical model)"))
    print()
    print("observations (matching Sections V-I and V-J):")
    print(" * the attention/MLP layers (B1, V1, L1, L2) are input-load bound;")
    print("   more DRAM bandwidth converts directly into speedup")
    print(" * the small-K projection layers (L3, L4) are store-C bound: the")
    print("   output matrix dominates, so bandwidth helps less")
    print(" * after tiling overhead every layer is DRAM-bound on the roofline —")
    print("   the 128 TOPS INT8 ceiling is unreachable for these shapes")


if __name__ == "__main__":
    main()
