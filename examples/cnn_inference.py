"""CNN inference on the Versal model: im2col conv layers end to end.

CHARM's DNN suite and the space-edge-computing literature run CNNs on
Versal; this example lowers a ResNet-50-style layer sample to GEMM,
picks the best Table II configuration per layer (they are tall shapes —
very different from the square synthetic workloads), batches the
repeated invocations, and reports layer-by-layer latency, bottlenecks
and padding waste.

Run:  python examples/cnn_inference.py [batch]
"""

import sys

from repro import CharmDesign, Precision, config_by_name, configs_for
from repro.core.analytical_model import AnalyticalModel
from repro.core.batch import batched_estimate
from repro.mapping.fragmentation import FragmentationAnalysis
from repro.reporting import format_seconds, render_table
from repro.workloads.conv import RESNET50_LAYERS


def main() -> None:
    batch = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    analysis = FragmentationAnalysis(Precision.FP32)
    models = {
        c.name: AnalyticalModel(CharmDesign(c)) for c in configs_for(Precision.FP32)
    }

    rows = []
    total = 0.0
    for layer in RESNET50_LAYERS:
        shape = layer.im2col_shape(batch)
        best = analysis.best(shape)
        estimate = models[best.config.name].estimate(shape)
        # conv stages repeat within a network; batch the invocations
        repeats = 3
        batched = batched_estimate(CharmDesign(best.config), shape, count=repeats)
        total += batched.total_seconds
        rows.append(
            {
                "layer": layer.name,
                "gemm (im2col)": str(shape),
                "config": best.config.name,
                "latency": format_seconds(estimate.total_seconds),
                "bottleneck": str(estimate.bottleneck),
                "padding_waste": f"{best.waste_fraction:.1%}",
                "im2col_expand": f"{layer.im2col_expansion():.0f}x",
            }
        )

    print(render_table(rows, title=f"ResNet-50-style layers, batch {batch} (FP32)"))
    print()
    print(f"layer-sample total (3 repeats each, setup amortised): {format_seconds(total)}")
    print()
    print("observations:")
    print(" * im2col GEMMs are tall: like the paper's L3/L4 layers they are")
    print("   frequently bound by the C store, not the inputs")
    print(" * 1x1 convolutions lower with no data expansion; 3x3 kernels")
    print("   amplify input reads ~9x — tiling overhead before tiling even starts")
    print(" * per-layer configuration choice matters: early high-resolution")
    print("   layers and late channel-heavy layers prefer different groupings")


if __name__ == "__main__":
    main()
