"""PLIO budgeting: per-accelerator speed vs whole-array utilization.

A 16-AIE GEMM accelerator can be wired with anywhere from 3 to 36 PLIOs
(Fig. 12).  More PLIOs make one accelerator faster, but PLIOs are the
scarce resource that decides how many accelerator replicas — and thus how
much of the 400-AIE array — a full deployment can use (Fig. 13).  This
example sweeps the twelve reference schemes for both precisions and
computes the *aggregate* array throughput of each choice, reproducing the
paper's conclusion that 7 (FP32) / 14 (INT8) PLIOs are the sweet spots.

Run:  python examples/plio_budgeting.py
"""

from repro import config_by_name, reference_schemes
from repro.hw.specs import VCK5000
from repro.sim.aiesim import simulate_graph
from repro.reporting import render_table


def sweep(config_name: str) -> None:
    config = config_by_name(config_name)
    rows = []
    for scheme in reference_schemes(config):
        report = simulate_graph(scheme, invocations=32)
        replicas = scheme.max_replicas()
        per_replica_ops = (
            config.native_size.flops
            * report.invocations
            / report.seconds(VCK5000)
        )
        rows.append(
            {
                "plios": scheme.total_plios,
                "A/B/C": "{}/{}/{}".format(
                    scheme.conn_a.num_plios, scheme.conn_b.num_plios, scheme.conn_c.num_plios
                ),
                "tile_us": round(report.per_invocation / VCK5000.aie_freq_hz * 1e6, 2),
                "replicas": replicas,
                "array_util": f"{scheme.array_utilization():.0%}",
                "aggregate_tops": round(per_replica_ops * replicas / 1e12, 2),
            }
        )
    best = max(rows, key=lambda r: r["aggregate_tops"])
    print(render_table(rows, title=f"{config.precision} / {config_name} (16 AIEs)"))
    print(f"--> best aggregate throughput at {best['plios']} PLIOs "
          f"({best['aggregate_tops']} Tops/s across {best['replicas']} replicas)")
    print()


def main() -> None:
    print("Per-accelerator PLIOs vs whole-array throughput (Figs. 12/13)\n")
    sweep("C1")
    sweep("C7")
    print("paper's summary holds: high PLIO usage per AIE leaves AIEs unused;")
    print("moderate schemes win once the whole array is considered.")


if __name__ == "__main__":
    main()
