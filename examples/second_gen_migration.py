"""Porting the analysis to second-generation AIE-ML silicon (Section V-K).

The paper argues its methodology transfers to AIE-ML devices: the
qualitative analysis holds while the quantitative results shift with the
new speeds and feeds (more MACs/cycle, larger local memory).  This example
runs identical designs on the VCK5000 model and on an AIE-ML device model
and shows exactly that: compute-bound designs accelerate and flip to
communication-bound; memory-bound designs barely move.

Run:  python examples/second_gen_migration.py
"""

from repro import (
    AIE_ML_DEVICE,
    AnalyticalModel,
    CharmDesign,
    GemmShape,
    Precision,
    VCK5000,
    configs_for,
)
from repro.reporting import render_table


def main() -> None:
    workload = GemmShape(2048, 2048, 2048)
    rows = []
    for config in configs_for(Precision.INT8):
        if config.num_aies > AIE_ML_DEVICE.num_aies:
            continue
        vck = AnalyticalModel(CharmDesign(config, device=VCK5000)).estimate(workload)
        ml = AnalyticalModel(CharmDesign(config, device=AIE_ML_DEVICE)).estimate(workload)
        rows.append(
            {
                "config": config.name,
                "aies": config.num_aies,
                "vck5000_ms": round(vck.total_seconds * 1e3, 3),
                "vck_bottleneck": str(vck.bottleneck),
                "aie_ml_ms": round(ml.total_seconds * 1e3, 3),
                "aie_ml_bottleneck": str(ml.bottleneck),
                "speedup": round(vck.total_seconds / ml.total_seconds, 2),
            }
        )
    print(render_table(rows, title=f"INT8 {workload} on first vs second generation"))
    print()
    print("observations (Section V-K):")
    print(" * AIE-ML doubles per-tile INT8 throughput, so designs that were")
    print("   compute-bound shift to PLIO/DRAM bottlenecks — the qualitative")
    print("   analysis (and this library's machinery) carries over unchanged")
    print(" * memory-bound configurations see little gain: the DRAM wall,")
    print("   not the engines, sets their speed on both generations")


if __name__ == "__main__":
    main()
