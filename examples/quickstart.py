"""Quickstart: estimate, verify and simulate one GEMM on the Versal model.

Runs a 2048x2048x2048 FP32 GEMM on the paper's largest FP32 configuration
(C6: 384 AIEs, 96 PLIOs, 4r2w DRAM ports) through the three layers of the
library:

1. the analytical model (Section V-A) for an instant estimate + breakdown,
2. the functional simulator to prove the tiled dataflow computes A @ B,
3. the discrete-event hardware simulator for the "measured" time.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticalModel,
    CharmDesign,
    FunctionalGemm,
    GemmShape,
    HwSimulator,
    config_by_name,
)
from repro.reporting import format_seconds


def main() -> None:
    workload = GemmShape(2048, 2048, 2048)
    design = CharmDesign(config_by_name("C6"))
    design.validate()

    print(f"workload : {workload} ({workload.flops / 1e9:.1f} GFLOP)")
    print(f"design   : {design.config}")
    print(f"peak     : {design.peak_ops() / 1e12:.2f} TFLOP/s on {design.config.num_aies} AIEs")
    print()

    # 1. analytical estimate (Eq. 1 + Eq. 2 + 100 us setup)
    estimate = AnalyticalModel(design).estimate(workload)
    b = estimate.breakdown
    print("analytical model")
    print(f"  total        {format_seconds(estimate.total_seconds)}")
    print(f"  throughput   {estimate.throughput_ops / 1e12:.2f} TFLOP/s "
          f"({estimate.efficiency:.1%} of peak)")
    print(f"  bottleneck   {estimate.bottleneck}")
    print(f"  tile plan    PL tile {estimate.plan.pl_tile} "
          f"({estimate.plan.num_dram_tiles} DRAM tiles)")
    print(f"  phases       load A {format_seconds(b.load_a_seconds)} | "
          f"load B {format_seconds(b.load_b_seconds)} | "
          f"AIE {format_seconds(b.aie_seconds)} | "
          f"store C {format_seconds(b.store_c_seconds)}")
    print()

    # 2. functional verification on one native tile (sw_emu role)
    result = FunctionalGemm(design, seed=0).run(design.native_size)
    print("functional verification")
    print(f"  native tile {design.native_size}: max rel. error "
          f"{result.max_abs_error:.2e} -> {'OK' if result.correct else 'FAIL'}")
    print()

    # 3. simulated hardware run (HW platform role)
    run = HwSimulator(design).run(workload)
    error = (estimate.total_seconds - run.total_seconds) / run.total_seconds
    print("simulated hardware run")
    print(f"  total        {format_seconds(run.total_seconds)}")
    print(f"  model error  {error:+.1%} (paper: within +/-5%)")


if __name__ == "__main__":
    main()
