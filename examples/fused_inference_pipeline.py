"""A fused GEMM+activation pipeline on spare AIEs, with a visible timeline.

Section V-G's summary recommends running activation functions on unused
AIEs instead of round-tripping through the PL or DRAM.  This example
builds that pipeline for a transformer MLP block (GEMM -> GELU ->
GEMM -> add), compares fused vs unfused latency and energy, and prints
the execution Gantt so the double-buffered overlap is visible.

Run:  python examples/fused_inference_pipeline.py
"""

from repro import (
    CharmDesign,
    EnergyModel,
    FusionPlanner,
    GemmShape,
    HwSimulator,
    PostOp,
    config_by_name,
)
from repro.reporting import format_seconds, render_table


def main() -> None:
    # a Llama2-13B MLP block at 2048 tokens
    tokens, hidden, intermediate = 2048, 5120, 13824
    up = GemmShape(tokens, hidden, intermediate)
    down = GemmShape(tokens, intermediate, hidden)
    design = CharmDesign(config_by_name("C5"))  # 256 AIEs -> 144 spare
    planner = FusionPlanner(design)

    rows = []
    total_unfused = total_fused = 0.0
    for name, shape, post_op in (
        ("mlp_up + GELU", up, PostOp.GELU),
        ("mlp_down + residual add", down, PostOp.ELEMENTWISE_ADD),
    ):
        estimate = planner.estimate(post_op, shape)
        total_unfused += estimate.unfused_total
        total_fused += estimate.fused_total
        rows.append(
            {
                "stage": name,
                "gemm": format_seconds(estimate.gemm_seconds),
                "unfused": format_seconds(estimate.unfused_total),
                "fused": format_seconds(estimate.fused_total),
                "spare_aies": estimate.spare_aies,
                "dram_saved_mb": round(estimate.avoided_dram_bytes / 1e6, 1),
            }
        )

    print(render_table(rows, title="Llama2-13B MLP block on C5 (FP32)"))
    print()
    speedup = total_unfused / total_fused
    print(f"block latency: {format_seconds(total_unfused)} unfused -> "
          f"{format_seconds(total_fused)} fused ({speedup:.2f}x)")

    energy = EnergyModel(design).estimate(up)
    saved_joules = sum(r["dram_saved_mb"] for r in rows) * 1e6 * 150e-12
    print(f"energy: the avoided DRAM traffic is worth ~{saved_joules * 1e3:.1f} mJ "
          f"(DRAM is {energy.fractions()['dram']:.0%} of the GEMM's dynamic+static energy)")
    print()

    print("pipeline timeline for the mlp_up GEMM (double buffering visible):")
    trace = HwSimulator(design).trace(up)
    print(trace.gantt(width=68))
    overlap = trace.overlap_seconds("load", "aie") / trace.makespan
    print(f"load/AIE overlap covers {overlap:.0%} of the run — the 'max()' "
          f"behaviour of Eq. 2 in action")


if __name__ == "__main__":
    main()
