"""CHARM-style design-space exploration for a custom GEMM workload.

Given a workload, enumerate AIE groupings (pack-aligned, Section IV-A),
PLIO allocations and DRAM port setups, estimate each with the analytical
model, and report the Pareto view: latency vs AIEs vs PLIOs.  This is the
paper's "access ports as an additional parameter for design space
exploration" (Section V-A) in action.

Run:  python examples/design_space_exploration.py [MxKxN]
"""

import sys

from repro import DesignSpaceExplorer, GemmShape, Precision
from repro.reporting import format_seconds, render_table


def explore(workload: GemmShape, precision: Precision) -> None:
    explorer = DesignSpaceExplorer(precision, explore_ports=True)
    points = explorer.explore(workload, top=8)
    rows = [
        {
            "rank": i + 1,
            "grouping": f"{p.config.grouping.gm}x{p.config.grouping.gk}x{p.config.grouping.gn}",
            "aies": p.num_aies,
            "native": str(p.config.native_size),
            "plios": p.num_plios,
            "ports": str(p.config.dram_ports),
            "latency": format_seconds(p.seconds),
            "eff_vs_peak": f"{p.estimate.efficiency:.1%}",
            "bottleneck": str(p.estimate.bottleneck),
        }
        for i, p in enumerate(points)
    ]
    print(render_table(rows, title=f"{precision} designs for {workload}"))

    best = points[0]
    tiny = [p for p in points if p.num_aies <= best.num_aies // 4]
    print()
    print(f"best design: {best.config.grouping} with {best.num_plios} PLIOs, "
          f"{best.config.dram_ports} ports -> {format_seconds(best.seconds)}")
    if tiny:
        p = tiny[0]
        ratio = p.seconds / best.seconds
        print(f"resource-frugal alternative: {p.num_aies} AIEs is only "
              f"{ratio:.2f}x slower — the memory wall flattens the benefit "
              f"of extra engines (Section V-G's guidance)")


def main() -> None:
    workload = (
        GemmShape.parse(sys.argv[1]) if len(sys.argv) > 1 else GemmShape(4096, 4096, 4096)
    )
    for precision in (Precision.FP32, Precision.INT8):
        explore(workload, precision)
        print()


if __name__ == "__main__":
    main()
