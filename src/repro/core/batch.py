"""Batched GEMM execution: setup amortisation across repeated calls.

The 100 µs AIE setup the paper calibrates (Section V-A) is paid when a
design's graph is loaded — not on every invocation.  A DNN re-runs the
same GEMM shape dozens of times per forward pass (layers, attention
heads), so batched execution amortises the setup: the first call pays
it, the rest stream through the already-configured datapath.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical_model import AnalyticalModel, Estimate
from repro.mapping.charm import CharmDesign
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class BatchEstimate:
    """Latency of ``count`` back-to-back executions of one shape."""

    design: CharmDesign
    shape: GemmShape
    count: int
    first: Estimate

    @property
    def setup_seconds(self) -> float:
        return self.first.breakdown.setup_seconds

    @property
    def steady_seconds(self) -> float:
        """Per-call time once the graph is resident."""
        return self.first.total_seconds - self.setup_seconds

    @property
    def total_seconds(self) -> float:
        return self.setup_seconds + self.count * self.steady_seconds

    @property
    def amortized_seconds(self) -> float:
        return self.total_seconds / self.count

    @property
    def naive_seconds(self) -> float:
        """What paying the setup every call would cost."""
        return self.count * self.first.total_seconds

    @property
    def amortization_speedup(self) -> float:
        return self.naive_seconds / self.total_seconds


def batched_estimate(
    design: CharmDesign, shape: GemmShape, count: int
) -> BatchEstimate:
    """Estimate ``count`` repetitions of ``shape`` on ``design``."""
    if count < 1:
        raise ValueError("count must be at least 1")
    first = AnalyticalModel(design).estimate(shape)
    return BatchEstimate(design=design, shape=shape, count=count, first=first)
