"""Energy model for GEMM executions on the Versal device model.

The paper motivates Versal with energy efficiency (Section I; AIM [17]
and Perryman et al. [12] report AIE energy advantages) but publishes no
energy numbers.  This extension attaches a transparent energy model to
every execution estimate so designs can be compared on GFLOPS/W as well
as latency:

* dynamic energy = per-MAC, per-byte-streamed (PLIO), per-byte of PL
  buffer traffic and per-byte of DRAM traffic, with documented
  7-nm-class constants,
* static energy = board idle power times execution time — which is what
  punishes DRAM-bound configurations that leave 400 engines waiting.

All constants are module-level and overridable; they are calibration
points, not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical_model import AnalyticalModel, Estimate
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.workloads.gemm import GemmShape

#: Dynamic energy per MAC, joules (7-nm-class vector datapath).
ENERGY_PER_MAC = {
    Precision.FP32: 2.0e-12,
    Precision.INT16: 0.6e-12,
    Precision.INT8: 0.2e-12,
}
#: On-chip stream transfer energy, joules per byte (PLIO + switch hop).
ENERGY_PER_PLIO_BYTE = 1.0e-12
#: PL BRAM/URAM access energy, joules per byte.
ENERGY_PER_PL_BYTE = 0.5e-12
#: Off-chip DDR4 access energy, joules per byte (~19 pJ/bit).
ENERGY_PER_DRAM_BYTE = 150e-12
#: Board static/idle power, watts (fans, PS, clocks, leakage).
STATIC_POWER_WATTS = 40.0


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown of one GEMM execution."""

    workload: GemmShape
    seconds: float
    compute_joules: float
    plio_joules: float
    pl_joules: float
    dram_joules: float
    static_joules: float

    @property
    def dynamic_joules(self) -> float:
        return self.compute_joules + self.plio_joules + self.pl_joules + self.dram_joules

    @property
    def total_joules(self) -> float:
        return self.dynamic_joules + self.static_joules

    @property
    def average_power_watts(self) -> float:
        return self.total_joules / self.seconds

    @property
    def ops_per_joule(self) -> float:
        return self.workload.flops / self.total_joules

    @property
    def gflops_per_watt(self) -> float:
        return self.ops_per_joule / 1e9

    def fractions(self) -> dict[str, float]:
        total = self.total_joules
        return {
            "compute": self.compute_joules / total,
            "plio": self.plio_joules / total,
            "pl": self.pl_joules / total,
            "dram": self.dram_joules / total,
            "static": self.static_joules / total,
        }


class EnergyModel:
    """Derives energy from an analytical-model estimate."""

    def __init__(self, design: CharmDesign, static_power_watts: float = STATIC_POWER_WATTS):
        design.validate()
        self.design = design
        self.static_power_watts = static_power_watts

    def from_estimate(self, estimate: Estimate) -> EnergyEstimate:
        precision = self.design.precision
        eb = precision.element_bytes
        plan = estimate.plan
        padded = plan.padded

        # every padded MAC executes (padding is wasted work, and costs)
        compute = padded.macs * ENERGY_PER_MAC[precision]

        # PL <-> AIE streams: each native tile moves A, B and C once
        native = plan.native
        per_tile_bytes = native.bytes_a(eb) + native.bytes_b(eb) + native.bytes_c(eb)
        plio = plan.total_native_tiles * per_tile_bytes * ENERGY_PER_PLIO_BYTE

        # PL buffers see the same traffic twice (write into BRAM, read out)
        pl = 2 * plan.total_native_tiles * per_tile_bytes * ENERGY_PER_PL_BYTE

        dram = plan.traffic().total * ENERGY_PER_DRAM_BYTE
        static = self.static_power_watts * estimate.total_seconds
        return EnergyEstimate(
            workload=estimate.workload,
            seconds=estimate.total_seconds,
            compute_joules=compute,
            plio_joules=plio,
            pl_joules=pl,
            dram_joules=dram,
            static_joules=static,
        )

    def estimate(self, workload: GemmShape) -> EnergyEstimate:
        return self.from_estimate(AnalyticalModel(self.design).estimate(workload))
