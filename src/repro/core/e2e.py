"""End-to-end DNN estimation: whole-model latency on one Versal design.

The paper analyses isolated GEMMs (Table III / Fig. 14); a user sizing a
deployment needs the sum over a model's layers.  :class:`ModelEstimator`
runs every weight GEMM of a transformer forward pass through the
analytical model — optionally picking the best Table II configuration
*per GEMM shape* (CHARM's multi-accelerator idea: different shapes suit
different groupings) — and reports per-layer and total latency,
throughput and bottlenecks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical_model import AnalyticalModel, Estimate
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import HardwareConfig, configs_for
from repro.workloads.transformer import LayerGemm, TransformerConfig


@dataclass(frozen=True)
class LayerEstimate:
    """Latency of one (repeated) layer GEMM, setup amortised."""

    gemm: LayerGemm
    config_name: str
    single_seconds: float
    estimate: Estimate

    @property
    def setup_seconds(self) -> float:
        return self.estimate.breakdown.setup_seconds

    @property
    def total_seconds(self) -> float:
        """Repeated invocations of a resident graph pay setup once."""
        steady = self.single_seconds - self.setup_seconds
        return self.setup_seconds + self.gemm.count * steady

    @property
    def bottleneck(self) -> str:
        return str(self.estimate.bottleneck)


@dataclass(frozen=True)
class ModelEstimate:
    """Whole-model forward-pass estimate."""

    model: TransformerConfig
    tokens: int
    layers: list[LayerEstimate]
    include_attention: bool = False

    @property
    def total_seconds(self) -> float:
        return sum(layer.total_seconds for layer in self.layers)

    @property
    def total_flops(self) -> int:
        return self.model.forward_flops(self.tokens, self.include_attention)

    @property
    def throughput_ops(self) -> float:
        return self.total_flops / self.total_seconds

    @property
    def tokens_per_second(self) -> float:
        return self.tokens / self.total_seconds

    def dominant_layer(self) -> LayerEstimate:
        return max(self.layers, key=lambda l: l.total_seconds)


class ModelEstimator:
    """Estimates transformer forward passes on Versal designs."""

    def __init__(
        self,
        precision: Precision = Precision.FP32,
        configs: tuple[HardwareConfig, ...] | None = None,
        per_layer_selection: bool = True,
    ):
        self.precision = precision
        self.configs = configs if configs is not None else configs_for(precision)
        if not self.configs:
            raise ValueError("need at least one configuration")
        self.per_layer_selection = per_layer_selection
        self._models = {
            config.name: AnalyticalModel(CharmDesign(config)) for config in self.configs
        }

    def _best_for(self, gemm: LayerGemm) -> tuple[str, Estimate]:
        candidates = []
        for name, model in self._models.items():
            try:
                candidates.append((name, model.estimate(gemm.shape)))
            except ValueError:
                continue  # shape cannot be tiled on this config
        if not candidates:
            raise ValueError(f"no configuration can run {gemm.shape}")
        return min(candidates, key=lambda pair: pair[1].total_seconds)

    def estimate(
        self,
        model: TransformerConfig,
        tokens: int,
        include_attention: bool = False,
    ) -> ModelEstimate:
        layers = []
        gemms = model.forward_gemms(tokens, include_attention)
        if not self.per_layer_selection:
            # one fixed design for the whole model: the config that is
            # best for the most expensive GEMM
            heaviest = max(gemms, key=lambda g: g.total_flops)
            fixed_name, _ = self._best_for(heaviest)
        for gemm in gemms:
            if self.per_layer_selection:
                name, estimate = self._best_for(gemm)
            else:
                name = fixed_name
                estimate = self._models[name].estimate(gemm.shape)
            layers.append(
                LayerEstimate(
                    gemm=gemm,
                    config_name=name,
                    single_seconds=estimate.total_seconds,
                    estimate=estimate,
                )
            )
        return ModelEstimate(
            model=model,
            tokens=tokens,
            layers=layers,
            include_attention=include_attention,
        )
