"""Generic parameter-sweep helper used by the experiment drivers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping


@dataclass
class SweepResult:
    """Records produced by a sweep: one dict per parameter combination."""

    axes: dict[str, list[Any]]
    records: list[dict[str, Any]] = field(default_factory=list)

    def column(self, key: str) -> list[Any]:
        return [r[key] for r in self.records]

    def where(self, **conditions: Any) -> list[dict[str, Any]]:
        return [
            r for r in self.records if all(r.get(k) == v for k, v in conditions.items())
        ]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def sweep(
    axes: Mapping[str, Iterable[Any]],
    evaluate: Callable[..., Mapping[str, Any]],
) -> SweepResult:
    """Run ``evaluate(**point)`` over the cartesian product of ``axes``.

    Each record contains the axis values plus whatever ``evaluate``
    returns.  ``evaluate`` may return None to skip a combination.
    """
    materialized = {name: list(values) for name, values in axes.items()}
    result = SweepResult(axes=materialized)
    names = list(materialized)
    for combo in itertools.product(*(materialized[n] for n in names)):
        point = dict(zip(names, combo))
        outcome = evaluate(**point)
        if outcome is None:
            continue
        record = dict(point)
        record.update(outcome)
        result.records.append(record)
    return result
