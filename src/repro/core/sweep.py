"""Generic parameter-sweep helper used by the experiment drivers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.obs.spans import span
from repro.perf.metrics import GLOBAL_STATS, EvalStats, track
from repro.perf.parallel import parallel_map, resolve_jobs


@dataclass
class SweepResult:
    """Records produced by a sweep: one dict per parameter combination."""

    axes: dict[str, list[Any]]
    records: list[dict[str, Any]] = field(default_factory=list)
    #: evaluation accounting for the sweep (combinations evaluated,
    #: combinations the evaluator declined, wall time, workers used)
    stats: EvalStats = field(default_factory=EvalStats)

    def column(self, key: str) -> list[Any]:
        return [r[key] for r in self.records]

    def where(self, **conditions: Any) -> list[dict[str, Any]]:
        return [
            r for r in self.records if all(r.get(k) == v for k, v in conditions.items())
        ]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def sweep(
    axes: Mapping[str, Iterable[Any]],
    evaluate: Callable[..., Mapping[str, Any]],
    jobs: int = 1,
    batch_evaluate: Callable[[list[dict[str, Any]]], list[Any]] | None = None,
) -> SweepResult:
    """Run ``evaluate(**point)`` over the cartesian product of ``axes``.

    Each record contains the axis values plus whatever ``evaluate``
    returns.  ``evaluate`` may return None to skip a combination.
    ``jobs`` parallelises the evaluations; record order always follows
    the cartesian-product order, identical to the serial result.

    ``batch_evaluate`` is the vectorized opt-in: the sweep cannot
    auto-vectorize an arbitrary ``evaluate``, but a caller whose
    evaluator has an array form (e.g. one built on
    :func:`repro.perf.vectorized.batch_estimate`) can supply a function
    receiving the full cartesian-product point list and returning one
    outcome per point (None to skip), replacing the per-point calls.
    """
    materialized = {name: list(values) for name, values in axes.items()}
    stats = EvalStats(jobs=resolve_jobs(jobs))
    result = SweepResult(axes=materialized, stats=stats)
    names = list(materialized)
    points = [
        dict(zip(names, combo))
        for combo in itertools.product(*(materialized[n] for n in names))
    ]
    sweep_span = span(
        "sweep.run",
        track="sweep",
        axes=",".join(names),
        points=len(points),
        vectorize=batch_evaluate is not None,
    )
    with sweep_span:
        with track(stats):
            if batch_evaluate is not None:
                outcomes = list(batch_evaluate(points))
                if len(outcomes) != len(points):
                    raise ValueError(
                        f"batch_evaluate returned {len(outcomes)} outcomes "
                        f"for {len(points)} points"
                    )
            else:
                outcomes = parallel_map(
                    lambda point: evaluate(**point), points, jobs=jobs
                )
        for point, outcome in zip(points, outcomes):
            if outcome is None:
                stats.skipped += 1
                continue
            record = dict(point)
            record.update(outcome)
            result.records.append(record)
        stats.evaluations = len(result.records)
        GLOBAL_STATS.record(stats)
        sweep_span.set(evaluated=stats.evaluations, skipped=stats.skipped)
        return result
