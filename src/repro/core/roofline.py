"""Roofline model for the Versal platform (Fig. 15).

The plot has one compute ceiling per Table II configuration (peak ops of
its AIE count) and two bandwidth slopes: the achieved DRAM bandwidth and
the much higher PLIO (PL<->AIE) bandwidth.  Workloads appear twice: at
their ideal operational intensity (read inputs once — red dots) and at
the effective intensity after DRAM tiling overhead (green circles),
which pushes every Table III workload into the DRAM-bound region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.dram import DramModel
from repro.hw.specs import DeviceSpec, VCK5000
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import HardwareConfig, configs_for
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class RooflineCeiling:
    """One horizontal compute roof."""

    label: str
    peak_ops: float

    def ridge_point(self, bandwidth: float) -> float:
        """Operational intensity where this roof meets a bandwidth slope."""
        return self.peak_ops / bandwidth


@dataclass(frozen=True)
class RooflinePoint:
    """One workload plotted on the roofline."""

    label: str
    operational_intensity: float  # ops per DRAM byte
    attainable_ops: float
    compute_bound: bool
    includes_tiling_overhead: bool


class Roofline:
    """Builds Fig. 15's ceilings, slopes and workload points."""

    def __init__(
        self,
        precision: Precision = Precision.INT8,
        device: DeviceSpec = VCK5000,
        dram: DramModel | None = None,
    ):
        self.precision = precision
        self.device = device
        self.dram = dram if dram is not None else DramModel(device)

    # ------------------------------------------------------------------
    # Roofs and slopes
    # ------------------------------------------------------------------
    def ceilings(self) -> list[RooflineCeiling]:
        """One compute roof per Table II configuration of this precision,
        plus the full-array theoretical peak."""
        roofs = [
            RooflineCeiling(
                label=config.name,
                peak_ops=self.device.peak_ops(self.precision, config.num_aies),
            )
            for config in configs_for(self.precision)
        ]
        roofs.append(
            RooflineCeiling(
                label=f"{self.device.name} peak", peak_ops=self.device.peak_ops(self.precision)
            )
        )
        return roofs

    def dram_bandwidth(self) -> float:
        """The DRAM slope Fig. 15 draws: theoretical DDR4 bandwidth
        (102.4 GB/s) — the paper classifies its red dots against this
        line (B1/V1/L1/L2 compute-bound, L3/L4 DRAM-bound)."""
        return self.device.dram_bandwidth

    def achieved_dram_bandwidth(self) -> float:
        """What the design's NoC assignment actually sustains (34 GB/s)."""
        return self.dram.total_bandwidth()

    def plio_bandwidth(self) -> float:
        """The PLIO slope: aggregate PL->AIE stream bandwidth."""
        return self.device.pl_to_aie_bandwidth

    def attainable(self, operational_intensity: float, peak_ops: float | None = None) -> float:
        """min(peak, OI * DRAM bandwidth): the classic roofline bound."""
        if operational_intensity <= 0:
            raise ValueError("operational intensity must be positive")
        peak = self.device.peak_ops(self.precision) if peak_ops is None else peak_ops
        return min(peak, operational_intensity * self.dram_bandwidth())

    # ------------------------------------------------------------------
    # Workload points
    # ------------------------------------------------------------------
    def point(
        self,
        label: str,
        workload: GemmShape,
        peak_ops: float | None = None,
    ) -> RooflinePoint:
        """Ideal-traffic point (Fig. 15 red dots)."""
        oi = workload.operational_intensity(self.precision.element_bytes)
        return self._make_point(label, oi, peak_ops, includes_overhead=False)

    def tiled_point(
        self,
        label: str,
        workload: GemmShape,
        config: HardwareConfig,
    ) -> RooflinePoint:
        """Effective point after tiling overhead (Fig. 15 green circles).

        Classified against the full-array ceiling — the paper's point is
        that even the 128 TOPS roof is unreachable once tiling shrinks
        the operational intensity.
        """
        design = CharmDesign(config, self.device)
        plan = design.tile_plan(workload)
        oi = plan.effective_operational_intensity()
        return self._make_point(label, oi, None, includes_overhead=True)

    def _make_point(
        self, label: str, oi: float, peak_ops: float | None, includes_overhead: bool
    ) -> RooflinePoint:
        peak = self.device.peak_ops(self.precision) if peak_ops is None else peak_ops
        attainable = min(peak, oi * self.dram_bandwidth())
        return RooflinePoint(
            label=label,
            operational_intensity=oi,
            attainable_ops=attainable,
            compute_bound=oi * self.dram_bandwidth() >= peak,
            includes_tiling_overhead=includes_overhead,
        )

    # ------------------------------------------------------------------
    # Terminal rendering
    # ------------------------------------------------------------------
    def render_ascii(
        self,
        points: list[RooflinePoint],
        width: int = 70,
        height: int = 20,
    ) -> str:
        """Fig. 15 in the terminal: log-log axes, the DRAM slope, the
        top compute roof, and the workload points (``o`` = ideal
        red-dot, ``x`` = tiled green-circle)."""
        import math

        if not points:
            raise ValueError("need at least one point to plot")
        ois = [p.operational_intensity for p in points]
        x_min = min(ois) / 2
        x_max = max(max(ois) * 2, 2 * self.device.peak_ops(self.precision) / self.dram_bandwidth())
        peak = self.device.peak_ops(self.precision)
        y_max = peak * 2
        y_min = min(x_min * self.dram_bandwidth(), min(p.attainable_ops for p in points)) / 2

        def to_col(oi: float) -> int:
            frac = (math.log10(oi) - math.log10(x_min)) / (
                math.log10(x_max) - math.log10(x_min)
            )
            return max(0, min(width - 1, round(frac * (width - 1))))

        def to_row(ops: float) -> int:
            frac = (math.log10(ops) - math.log10(y_min)) / (
                math.log10(y_max) - math.log10(y_min)
            )
            return max(0, min(height - 1, (height - 1) - round(frac * (height - 1))))

        grid = [[" "] * width for _ in range(height)]
        # the attainable envelope: min(peak, oi * BW) traced across columns
        for col in range(width):
            oi = 10 ** (
                math.log10(x_min)
                + col / (width - 1) * (math.log10(x_max) - math.log10(x_min))
            )
            bound = min(peak, oi * self.dram_bandwidth())
            row = to_row(bound)
            grid[row][col] = "-" if bound >= peak else "/"
        for point in points:
            glyph = "x" if point.includes_tiling_overhead else "o"
            grid[to_row(point.attainable_ops)][to_col(point.operational_intensity)] = glyph
        lines = ["".join(row) for row in grid]
        lines.append("-" * width)
        lines.append(
            f"x: ops/byte (log, {x_min:.3g}..{x_max:.3g})   "
            f"y: ops/s (log, peak {peak:.3g})   o=ideal  x=tiled"
        )
        return "\n".join(lines)
