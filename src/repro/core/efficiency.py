"""Efficiency metrics used throughout the paper.

*Kernel efficiency* (Sections V-B/V-C): theoretical time at peak AIE
throughput divided by observed time, for a single-AIE kernel.

*Array efficiency*: achieved ops/s over the peak of the AIEs a design
occupies — the "how close to theoretical peak" research question.
"""

from __future__ import annotations

from repro.hw.specs import DeviceSpec, VCK5000
from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape


def kernel_efficiency(
    shape: GemmShape,
    precision: Precision,
    observed_cycles: float,
) -> float:
    """Theoretical cycles at peak MACs/cycle over observed cycles."""
    if observed_cycles <= 0:
        raise ValueError("observed_cycles must be positive")
    ideal = shape.macs / precision.macs_per_cycle
    return ideal / observed_cycles


def achieved_ops(shape: GemmShape, seconds: float) -> float:
    """Achieved throughput in ops/s for a workload that took ``seconds``."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return shape.flops / seconds


def array_efficiency(
    shape: GemmShape,
    precision: Precision,
    seconds: float,
    num_aies: int,
    device: DeviceSpec = VCK5000,
) -> float:
    """Achieved over peak throughput for ``num_aies`` engines."""
    peak = device.peak_ops(precision, num_aies)
    return achieved_ops(shape, seconds) / peak
