"""The analytical performance model (Section V-A, Eqs. 1 and 2).

The model extends CHARM's with the paper's additions: parallel DRAM
access ports as a design parameter, a calibrated 100 us AIE setup time,
and execution-breakdown extraction.

Level 1 — PL <-> AIE (Eq. 1).  Within one DRAM tile, native-size tiles
stream through the AIE array.  Double buffering overlaps the A/B input
streams, the kernel compute and the C output stream, so the steady-state
period is their max::

    AIE_CYCLES = #PL_tiles * max(PLtoAIE_A, PLtoAIE_B, T_compute, AIEtoPL_C)

plus a per-DRAM-tile *exposed* PL->AIE overhead: the pipeline fill/drain
that cannot overlap anything (the paper observes it is "repeated once for
each DRAM tile transfer").

Level 2 — DRAM <-> PL (Eq. 2).  DRAM tiles pipeline the same way when
the PL is double buffered::

    Final = #DRAM_tiles * max(DRAMtoPL_A, DRAMtoPL_B, AIE_CYCLES, PLtoDRAM_C)

With PL *single* buffering the DRAM loads serialise with the AIE phase
instead (Section V-G).  A fixed setup time is added at the end; the
paper calibrates it to 100 us.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.breakdown import Bottleneck, ExecutionBreakdown
from repro.hw.dram import DramModel
from repro.kernels.kernel_timing import compute_cycles
from repro.mapping.charm import CharmDesign
from repro.mapping.tiling import TilePlan
from repro.obs.spans import GLOBAL_TRACER, span
from repro.perf.cache import EvalCache, design_fingerprint, get_cache
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class AieLevelTimes:
    """Per-native-tile stream/compute times, in AIE cycles (Eq. 1 inputs)."""

    plio_a: float
    plio_b: float
    compute: float
    plio_c: float

    @property
    def period(self) -> float:
        """Steady-state cycles per native tile (the Eq. 1 max)."""
        return max(self.plio_a, self.plio_b, self.compute, self.plio_c)

    @property
    def bottleneck(self) -> Bottleneck:
        times = {
            Bottleneck.PLIO_A: self.plio_a,
            Bottleneck.PLIO_B: self.plio_b,
            Bottleneck.COMPUTE: self.compute,
            Bottleneck.PLIO_C: self.plio_c,
        }
        return max(times, key=times.get)

    @property
    def exposed_fill(self) -> float:
        """Pipeline fill/drain cycles exposed once per DRAM tile."""
        return self.plio_a + self.plio_b + self.plio_c


@dataclass(frozen=True)
class DramLevelTimes:
    """Per-DRAM-tile phase times, in seconds (Eq. 2 inputs).

    ``load_a``/``load_b`` are each stream's occupancy of the shared
    read-port pool (the DMA engines multiplex the design's read ports),
    so the effective input-load time per tile is their *sum*; the write
    ports are dedicated to C.
    """

    load_a: float
    load_b: float
    aie: float
    store_c: float  # amortised: a C tile moves once per K-sweep

    @property
    def load_inputs(self) -> float:
        """Total DRAM->PL input time per tile (A + B on the read pool)."""
        return self.load_a + self.load_b

    @property
    def period(self) -> float:
        return max(self.load_inputs, self.aie, self.store_c)

    @property
    def serialized_period(self) -> float:
        """PL single buffering: input loads serialise with the AIE phase
        (the store keeps its own buffer and still overlaps)."""
        return max(self.load_inputs, self.store_c) + self.aie

    @property
    def bottleneck(self) -> Bottleneck:
        times = {
            Bottleneck.LOAD_A: self.load_a,
            Bottleneck.LOAD_B: self.load_b,
            Bottleneck.AIE: self.aie,
            Bottleneck.STORE_C: self.store_c,
        }
        if self.period == self.load_inputs:
            return Bottleneck.LOAD_A if self.load_a >= self.load_b else Bottleneck.LOAD_B
        return max(times, key=times.get)


@dataclass(frozen=True)
class Estimate:
    """Complete model output for one (workload, design) pair."""

    design: CharmDesign
    workload: GemmShape
    plan: TilePlan
    aie_level: AieLevelTimes
    dram_level: DramLevelTimes
    total_seconds: float
    breakdown: ExecutionBreakdown

    @property
    def throughput_ops(self) -> float:
        """Achieved ops/s on the original (unpadded) workload."""
        return self.workload.flops / self.total_seconds

    @property
    def efficiency(self) -> float:
        """Fraction of the design's peak throughput achieved."""
        return self.throughput_ops / self.design.peak_ops()

    @property
    def bottleneck(self) -> Bottleneck:
        return self.breakdown.bound_phase


class AnalyticalModel:
    """Evaluates Eqs. 1 and 2 for a design, producing an :class:`Estimate`.

    The model is a pure function of its design, so sub-results memoize:
    per-instance for :meth:`aie_level_times` (read three times per
    estimate) and process-wide through an :class:`EvalCache` keyed on the
    design fingerprint, which the batch drivers (DSE, sweeps, serving)
    share across thousands of candidate evaluations.  Pass
    ``cache=NULL_CACHE`` to force the uncached baseline.
    """

    def __init__(self, design: CharmDesign, cache: EvalCache | None = None):
        design.validate()
        self.design = design
        self.device = design.device
        self.dram: DramModel = design.dram
        self.cache = get_cache() if cache is None else cache
        self._fingerprint = None
        self._aie_level: AieLevelTimes | None = None

    @property
    def fingerprint(self):
        """Hashable cache key for this design (computed lazily)."""
        if self._fingerprint is None:
            self._fingerprint = design_fingerprint(self.design)
        return self._fingerprint

    # ------------------------------------------------------------------
    # Level 1: PL <-> AIE (Eq. 1)
    # ------------------------------------------------------------------
    def _compute_aie_level_times(self) -> AieLevelTimes:
        design = self.design
        native = design.native_size
        eb = design.precision.element_bytes
        plios_a, plios_b, plios_c = design.config.plio_split()
        rate = self.device.plio_bytes_per_aie_cycle()
        # the kernel cycle model is parameterised on the first-generation
        # datapath; scale for devices with more MACs/cycle (AIE-ML)
        datapath_scale = (
            design.precision.macs_per_cycle
            / self.device.macs_per_cycle[design.precision]
        )
        return AieLevelTimes(
            plio_a=native.bytes_a(eb) / (plios_a * rate),
            plio_b=native.bytes_b(eb) / (plios_b * rate),
            compute=datapath_scale
            * compute_cycles(design.config.kernel, design.precision, design.kernel_style),
            plio_c=native.bytes_c(eb) / (plios_c * rate),
        )

    def aie_level_times(self) -> AieLevelTimes:
        if self._aie_level is None:
            self._aie_level = self.cache.get_or_compute(
                "aie_level", self.fingerprint, self._compute_aie_level_times
            )
        return self._aie_level

    def aie_cycles_per_dram_tile(
        self, plan: TilePlan, aie_level: AieLevelTimes | None = None
    ) -> float:
        """Eq. 1 plus the exposed per-DRAM-tile fill/drain."""
        level = self.aie_level_times() if aie_level is None else aie_level
        return plan.pl_tiles_per_dram_tile * level.period + level.exposed_fill

    # ------------------------------------------------------------------
    # Level 2: DRAM <-> PL (Eq. 2)
    # ------------------------------------------------------------------
    def dram_level_times(
        self, plan: TilePlan, aie_level: AieLevelTimes | None = None
    ) -> DramLevelTimes:
        return self.cache.get_or_compute(
            "dram_level",
            (self.fingerprint, plan),
            lambda: self._compute_dram_level_times(plan, aie_level),
        )

    def _compute_dram_level_times(
        self, plan: TilePlan, aie_level: AieLevelTimes | None
    ) -> DramLevelTimes:
        bytes_a, bytes_b, bytes_c = plan.dram_tile_bytes()
        read_pool = self.dram.read_bandwidth()  # all read ports, multiplexed
        bw_c = self.dram.write_bandwidth()
        aie_seconds = self.device.cycles_to_seconds(
            self.aie_cycles_per_dram_tile(plan, aie_level)
        )
        return DramLevelTimes(
            load_a=self.dram.transfer_seconds(bytes_a, read_pool),
            load_b=self.dram.transfer_seconds(bytes_b, read_pool),
            aie=aie_seconds,
            store_c=self.dram.transfer_seconds(bytes_c, bw_c) * plan.c_write_fraction,
        )

    # ------------------------------------------------------------------
    # Full estimate
    # ------------------------------------------------------------------
    def estimate(self, workload: GemmShape, plan: TilePlan | None = None) -> Estimate:
        if not GLOBAL_TRACER.enabled:
            # the hot path: one attribute check, no span machinery
            return self.cache.get_or_compute(
                "estimate",
                (self.fingerprint, workload, plan),
                lambda: self._compute_estimate(workload, plan),
            )
        with span("model.estimate", track="model", workload=str(workload)) as sp:
            result = self.cache.get_or_compute(
                "estimate",
                (self.fingerprint, workload, plan),
                lambda: self._compute_estimate(workload, plan),
            )
            breakdown = result.breakdown
            sp.set(
                total_seconds=result.total_seconds,
                bottleneck=breakdown.dram_bottleneck.value,
                load_a_seconds=breakdown.load_a_seconds,
                load_b_seconds=breakdown.load_b_seconds,
                aie_seconds=breakdown.aie_seconds,
                store_c_seconds=breakdown.store_c_seconds,
                setup_seconds=breakdown.setup_seconds,
            )
            return result

    def _compute_estimate(
        self, workload: GemmShape, plan: TilePlan | None
    ) -> Estimate:
        if plan is None:
            plan = self.design.tile_plan(workload)
        aie_level = self.aie_level_times()
        dram_level = self.dram_level_times(plan, aie_level)
        num_tiles = plan.num_dram_tiles
        if self.design.pl_double_buffered:
            steady = dram_level.period
        else:
            steady = dram_level.serialized_period
        # pipeline fill/drain: the first tile traverses every stage before
        # the steady-state period takes over, and the final C tile's
        # write-back burst (tk amortised iterations' worth) drains after
        # the last compute — visible when tile counts are small (the same
        # effects the paper's 100 us calibration absorbs)
        _, tk, _ = plan.dram_tile_counts
        traversal = dram_level.load_inputs + dram_level.aie + dram_level.store_c * tk
        total = (
            traversal
            + max(num_tiles - 1, 0) * steady
            + self.device.aie_setup_seconds
        )
        breakdown = self._build_breakdown(plan, dram_level, total, aie_level)
        return Estimate(
            design=self.design,
            workload=workload,
            plan=plan,
            aie_level=aie_level,
            dram_level=dram_level,
            total_seconds=total,
            breakdown=breakdown,
        )

    def _build_breakdown(
        self,
        plan: TilePlan,
        dram_level: DramLevelTimes,
        total: float,
        aie_level: AieLevelTimes | None = None,
    ) -> ExecutionBreakdown:
        num_tiles = plan.num_dram_tiles
        if aie_level is None:
            aie_level = self.aie_level_times()
        compute_seconds = self.device.cycles_to_seconds(
            plan.pl_tiles_per_dram_tile * aie_level.compute * num_tiles
        )
        exposed = self.device.cycles_to_seconds(aie_level.exposed_fill * num_tiles)
        return ExecutionBreakdown(
            total_seconds=total,
            load_a_seconds=dram_level.load_a * num_tiles,
            load_b_seconds=dram_level.load_b * num_tiles,
            aie_seconds=dram_level.aie * num_tiles,
            store_c_seconds=dram_level.store_c * num_tiles,
            setup_seconds=self.device.aie_setup_seconds,
            compute_seconds=compute_seconds,
            exposed_plio_seconds=exposed,
            dram_bottleneck=dram_level.bottleneck,
            aie_bottleneck=aie_level.bottleneck,
        )
