"""Execution breakdown and bottleneck identification.

The paper's analytical model "extracts execution breakdown, given a
workload size and hardware configuration" (Section V-A); Figs. 11 and 14
present the result as stacked/hatched bars.  :class:`ExecutionBreakdown`
is that data structure: per-phase aggregate times plus which phase binds
at each level of the hierarchy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Bottleneck(enum.Enum):
    """The phase that binds a pipelined execution level."""

    LOAD_A = "load_a"  # DRAM -> PL transfer of matrix A
    LOAD_B = "load_b"  # DRAM -> PL transfer of matrix B
    AIE = "aie"  # AIE compute + PL<->AIE streaming (Eq. 1)
    STORE_C = "store_c"  # PL -> DRAM write-back of matrix C
    COMPUTE = "compute"  # within the AIE level: the vector units
    PLIO_A = "plio_a"  # within the AIE level: A stream PL->AIE
    PLIO_B = "plio_b"
    PLIO_C = "plio_c"

    @property
    def is_memory(self) -> bool:
        return self is not Bottleneck.COMPUTE and self is not Bottleneck.AIE

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ExecutionBreakdown:
    """Aggregate per-phase times (seconds) over a whole execution.

    The phases overlap (double buffering), so they do not sum to
    ``total_seconds``; each value is how long that resource was busy.
    ``exposed_*`` are the non-overlapped residuals that stack on top of
    the binding phase.
    """

    total_seconds: float
    load_a_seconds: float
    load_b_seconds: float
    aie_seconds: float
    store_c_seconds: float
    setup_seconds: float
    #: time inside ``aie_seconds`` spent on pure vector compute
    compute_seconds: float
    #: PL<->AIE stream time exposed (not overlapped with compute)
    exposed_plio_seconds: float
    dram_bottleneck: Bottleneck
    aie_bottleneck: Bottleneck

    @property
    def dram_seconds(self) -> float:
        """Total DRAM-side busy time (the green bars of Fig. 11)."""
        return max(self.load_a_seconds, self.load_b_seconds) + self.store_c_seconds

    @property
    def memory_bound(self) -> bool:
        """True when a DRAM phase binds the execution (Fig. 11, right of C4)."""
        return self.dram_bottleneck is not Bottleneck.AIE

    @property
    def bound_phase(self) -> Bottleneck:
        """The overall binding phase: the DRAM-level winner, refined to
        the AIE-level winner when the AIE level binds."""
        if self.dram_bottleneck is Bottleneck.AIE:
            return self.aie_bottleneck
        return self.dram_bottleneck

    def phase_fractions(self) -> dict[str, float]:
        """Busy time of each phase relative to the total (can exceed 1
        in sum because phases overlap)."""
        if self.total_seconds <= 0:
            raise ValueError("breakdown has non-positive total time")
        return {
            "load_a": self.load_a_seconds / self.total_seconds,
            "load_b": self.load_b_seconds / self.total_seconds,
            "aie": self.aie_seconds / self.total_seconds,
            "store_c": self.store_c_seconds / self.total_seconds,
            "setup": self.setup_seconds / self.total_seconds,
        }
