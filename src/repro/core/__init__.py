"""The paper's primary contribution: the analytical performance model,
execution breakdown, roofline analysis and design-space exploration."""

from repro.core.analytical_model import AnalyticalModel, Estimate, AieLevelTimes, DramLevelTimes
from repro.core.breakdown import Bottleneck, ExecutionBreakdown
from repro.core.efficiency import kernel_efficiency, array_efficiency, achieved_ops
from repro.core.roofline import Roofline, RooflinePoint, RooflineCeiling
from repro.core.dse import DesignSpaceExplorer, DsePoint
from repro.core.sweep import sweep, SweepResult

__all__ = [
    "AnalyticalModel",
    "Estimate",
    "AieLevelTimes",
    "DramLevelTimes",
    "Bottleneck",
    "ExecutionBreakdown",
    "kernel_efficiency",
    "array_efficiency",
    "achieved_ops",
    "Roofline",
    "RooflinePoint",
    "RooflineCeiling",
    "DesignSpaceExplorer",
    "DsePoint",
    "sweep",
    "SweepResult",
]
