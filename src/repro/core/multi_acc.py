"""Composing heterogeneous accelerators — the CHARM idea, end to end.

CHARM's central contribution (and the reason the paper builds on it) is
*composing* multiple differently-shaped GEMM accelerators on one Versal
device: a big square-native accelerator for the large MLP GEMMs plus
smaller ones for awkward shapes, all resident simultaneously and fed
concurrently.  This module implements that composition on top of the
reproduction's machinery:

* :class:`AcceleratorPartition` — a set of designs that coexist on the
  device (AIE, PLIO and PL-memory budgets all checked, placement
  verified on the physical array),
* :class:`MultiAccScheduler` — assigns a list of GEMM jobs to the
  partition's accelerators and computes the concurrent makespan with a
  longest-processing-time list scheduler, sharing the DRAM read pool
  between accelerators (the resource the paper shows is scarce).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analytical_model import AnalyticalModel
from repro.hw.specs import DeviceSpec, VCK5000
from repro.mapping.charm import CharmDesign, DesignError
from repro.mapping.configs import HardwareConfig
from repro.mapping.placement import CharmPlacer, PlacementError
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class GemmJob:
    """One GEMM to schedule (e.g. a DNN layer), possibly repeated."""

    name: str
    shape: GemmShape
    count: int = 1


@dataclass(frozen=True)
class Assignment:
    """A job placed on one accelerator of the partition."""

    job: GemmJob
    accelerator: str
    single_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.job.count * self.single_seconds


@dataclass
class Schedule:
    """The outcome of scheduling jobs onto a partition."""

    assignments: list[Assignment]
    #: per-accelerator busy time
    lanes: dict[str, float] = field(default_factory=dict)
    #: slowdown applied because accelerators share the DRAM read pool
    dram_sharing_factor: float = 1.0

    @property
    def makespan(self) -> float:
        """Concurrent completion time across accelerators."""
        if not self.lanes:
            return 0.0
        return max(self.lanes.values()) * self.dram_sharing_factor

    @property
    def serial_seconds(self) -> float:
        """What one-at-a-time execution would take (no concurrency)."""
        return sum(a.total_seconds for a in self.assignments)

    @property
    def speedup_vs_serial(self) -> float:
        if self.makespan == 0:
            return 1.0
        return self.serial_seconds / self.makespan

    def utilization(self) -> dict[str, float]:
        if not self.lanes:
            return {}
        horizon = max(self.lanes.values())
        return {name: busy / horizon for name, busy in self.lanes.items()}


class AcceleratorPartition:
    """Several designs resident on one device simultaneously."""

    def __init__(self, configs: list[HardwareConfig], device: DeviceSpec = VCK5000):
        if not configs:
            raise ValueError("a partition needs at least one accelerator")
        names = [c.name for c in configs]
        if len(set(names)) != len(names):
            raise ValueError("accelerator names must be unique within a partition")
        self.device = device
        self.designs = {c.name: CharmDesign(c, device) for c in configs}
        self._validate()
        self._models = {
            name: AnalyticalModel(design) for name, design in self.designs.items()
        }

    def _validate(self) -> None:
        total_aies = sum(d.config.num_aies for d in self.designs.values())
        if total_aies > self.device.num_aies:
            raise DesignError(
                f"partition needs {total_aies} AIEs; device has {self.device.num_aies}"
            )
        total_plios = sum(d.config.num_plios for d in self.designs.values())
        if total_plios > self.device.usable_plios:
            raise DesignError(
                f"partition needs {total_plios} PLIOs; budget is {self.device.usable_plios}"
            )
        placer = CharmPlacer(self.device)
        try:
            for name, design in self.designs.items():
                placer.place(design, name=name)
        except (PlacementError, Exception) as error:
            if isinstance(error, (PlacementError,)):
                raise DesignError(f"partition does not place: {error}") from error
            raise

    # ------------------------------------------------------------------
    def estimate_on(self, accelerator: str, shape: GemmShape) -> float:
        return self._models[accelerator].estimate(shape).total_seconds

    def best_accelerator(self, shape: GemmShape) -> tuple[str, float]:
        """Fastest accelerator of the partition for this shape."""
        best_name, best_time = None, float("inf")
        for name in self.designs:
            try:
                seconds = self.estimate_on(name, shape)
            except ValueError:
                continue
            if seconds < best_time:
                best_name, best_time = name, seconds
        if best_name is None:
            raise ValueError(f"no accelerator of the partition can run {shape}")
        return best_name, best_time


class MultiAccScheduler:
    """Longest-processing-time list scheduling over a partition."""

    def __init__(self, partition: AcceleratorPartition):
        self.partition = partition

    def schedule(self, jobs: list[GemmJob]) -> Schedule:
        """Assign each job to an accelerator, balancing completion times.

        Jobs are considered in decreasing work order; each goes to the
        accelerator that *finishes* it earliest (current lane load plus
        the job's runtime there).  Concurrent accelerators contend for
        the DRAM read pool, modelled as a uniform slowdown equal to the
        number of simultaneously busy memory-bound lanes' aggregate
        demand (capped at the lane count).
        """
        if not jobs:
            return Schedule(assignments=[], lanes={name: 0.0 for name in self.partition.designs})
        lanes = {name: 0.0 for name in self.partition.designs}
        assignments: list[Assignment] = []
        ordered = sorted(jobs, key=lambda j: j.shape.macs * j.count, reverse=True)
        for job in ordered:
            best_name, best_finish, best_single = None, float("inf"), 0.0
            for name in lanes:
                try:
                    single = self.partition.estimate_on(name, job.shape)
                except ValueError:
                    continue
                finish = lanes[name] + single * job.count
                if finish < best_finish:
                    best_name, best_finish, best_single = name, finish, single
            if best_name is None:
                raise ValueError(f"job {job.name}: no accelerator can run {job.shape}")
            lanes[best_name] = best_finish
            assignments.append(Assignment(job, best_name, best_single))

        sharing = self._dram_sharing_factor(lanes)
        return Schedule(assignments=assignments, lanes=lanes, dram_sharing_factor=sharing)

    def _dram_sharing_factor(self, lanes: dict[str, float]) -> float:
        """Concurrent accelerators split the achieved DRAM bandwidth.

        The factor interpolates between 1 (one busy lane) and the busy
        lane count (fully memory-bound lanes), weighted by how balanced
        the lanes are — idle lanes don't contend.
        """
        busy = [t for t in lanes.values() if t > 0]
        if len(busy) <= 1:
            return 1.0
        horizon = max(busy)
        concurrency = sum(t / horizon for t in busy)  # in [1, len(busy)]
        # concurrent lanes share the read pool for the overlapping span
        return 1.0 + (concurrency - 1.0) * 0.5
