"""Calibration fitting: recover model constants from measured points.

`docs/calibration.md` lists the constants fitted to the paper's
measurements.  This module automates the fitting for the two most
board-specific ones, so the library can be re-targeted from a handful of
measurements on new hardware/toolchains:

* :func:`fit_noc` — fit the NoC virtual-channel constants from measured
  (port count, achieved GB/s) points (Section IV-C style measurements).
* :func:`fit_pl_fraction` — fit ``pl_usable_fraction`` from measured
  end-to-end (config, workload, seconds) points (Section V-G style).

Both are deliberately simple grid searches: transparent, deterministic,
and adequate for 1-2 free parameters.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.core.analytical_model import AnalyticalModel
from repro.hw.noc import NocModel
from repro.hw.specs import DeviceSpec, VCK5000
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class NocFit:
    vc_bandwidth: float
    second_vc_factor: float
    max_relative_error: float

    def build(self, device: DeviceSpec = VCK5000) -> NocModel:
        return NocModel(
            device,
            vc_bandwidth=self.vc_bandwidth,
            second_vc_factor=self.second_vc_factor,
        )


def fit_noc(
    measurements: Sequence[tuple[int, float]],
    device: DeviceSpec = VCK5000,
    vc_grid: Sequence[float] | None = None,
    factor_grid: Sequence[float] | None = None,
) -> NocFit:
    """Fit (vc_bandwidth, second_vc_factor) to measured operating points.

    ``measurements``: (num_ports, achieved bytes/s) pairs, e.g.
    [(3, 20e9), (6, 34e9), (12, 34e9)].
    """
    if not measurements:
        raise ValueError("need at least one measurement")
    if vc_grid is None:
        vc_grid = [base * 1e9 / 30 for base in range(120, 301, 2)]  # 4..10 GB/s
    if factor_grid is None:
        factor_grid = [f / 100 for f in range(0, 101, 2)]
    best: NocFit | None = None
    for vc in vc_grid:
        for factor in factor_grid:
            noc = NocModel(device, vc_bandwidth=vc, second_vc_factor=factor)
            worst = max(
                abs(noc.achieved_bandwidth(ports) - target) / target
                for ports, target in measurements
            )
            if best is None or worst < best.max_relative_error:
                best = NocFit(vc, factor, worst)
    assert best is not None
    return best


@dataclass(frozen=True)
class PlFractionFit:
    pl_usable_fraction: float
    max_relative_error: float

    def build(self, device: DeviceSpec = VCK5000) -> DeviceSpec:
        return dataclasses.replace(device, pl_usable_fraction=self.pl_usable_fraction)


def fit_pl_fraction(
    measurements: Sequence[tuple[str, GemmShape, float]],
    device: DeviceSpec = VCK5000,
    grid: Sequence[float] | None = None,
) -> PlFractionFit:
    """Fit ``pl_usable_fraction`` to measured end-to-end times.

    ``measurements``: (config name, workload, measured seconds) tuples,
    e.g. [("C6", 2048^3, 9.95e-3), ("C11", 2048^3, 0.92e-3)].
    """
    if not measurements:
        raise ValueError("need at least one measurement")
    if grid is None:
        grid = [f / 100 for f in range(8, 41)]  # 0.08 .. 0.40
    best: PlFractionFit | None = None
    for fraction in grid:
        candidate = dataclasses.replace(device, pl_usable_fraction=fraction)
        worst = 0.0
        feasible = True
        for config_name, workload, target in measurements:
            design = CharmDesign(config_by_name(config_name), device=candidate)
            try:
                estimate = AnalyticalModel(design).estimate(workload)
            except ValueError:
                feasible = False
                break
            worst = max(worst, abs(estimate.total_seconds - target) / target)
        if feasible and (best is None or worst < best.max_relative_error):
            best = PlFractionFit(fraction, worst)
    if best is None:
        raise ValueError("no feasible fraction in the search grid")
    return best
