"""Design-space exploration, CHARM-style with the paper's extensions.

CHARM's DSE searches AIE groupings and tile sizes for the best
performance/resource balance; Section V-A adds DRAM access ports as an
extra axis.  :class:`DesignSpaceExplorer` enumerates

* groupings ``(gm, gk, gn)`` whose product fits an AIE budget and whose
  ``gk`` is a multiple of the cascade pack depth,
* PLIO allocations within the device budget,
* optionally both DRAM port setups (2r1w / 4r2w),

evaluates each candidate with the analytical model, and returns the
candidates ranked by estimated latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical_model import AnalyticalModel, Estimate
from repro.hw.dram import CHARM_DEFAULT_PORTS, IMPROVED_PORTS
from repro.hw.specs import DeviceSpec, VCK5000
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign, DesignError
from repro.mapping.configs import KERNEL_BY_PRECISION, HardwareConfig
from repro.mapping.grouping import AieGrouping, pack_depth_for
from repro.obs.spans import span
from repro.perf.cache import EvalCache, get_cache
from repro.perf.metrics import GLOBAL_STATS, EvalStats, track
from repro.perf.parallel import parallel_map, resolve_jobs
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class DsePoint:
    """One explored design with its estimated performance."""

    config: HardwareConfig
    estimate: Estimate

    @property
    def seconds(self) -> float:
        return self.estimate.total_seconds

    @property
    def num_aies(self) -> int:
        return self.config.num_aies

    @property
    def num_plios(self) -> int:
        return self.config.num_plios


class DseResult(list):
    """Ranked :class:`DsePoint` list plus evaluation accounting.

    Behaves exactly like the plain list earlier releases returned, with
    an :attr:`stats` field reporting how many candidates were evaluated,
    how many were skipped as infeasible for the workload (previously
    swallowed silently), and how the cache behaved.
    """

    def __init__(self, points: list[DsePoint], stats: EvalStats):
        super().__init__(points)
        self.stats = stats

    @property
    def evaluated(self) -> int:
        return self.stats.evaluations

    @property
    def skipped(self) -> int:
        return self.stats.skipped


class DesignSpaceExplorer:
    """Enumerates and ranks CHARM-style designs for a workload.

    ``jobs`` fans candidate evaluation out over worker threads through
    :func:`repro.perf.parallel.parallel_map`; results are deterministic
    and bit-identical to the serial order for any ``jobs``.  All model
    evaluations share ``cache`` (the process-wide one by default).
    """

    def __init__(
        self,
        precision: Precision,
        device: DeviceSpec = VCK5000,
        max_aies: int | None = None,
        explore_ports: bool = False,
        jobs: int = 1,
        cache: EvalCache | None = None,
        vectorize: bool = False,
    ):
        self.precision = precision
        self.device = device
        self.max_aies = device.num_aies if max_aies is None else max_aies
        self.explore_ports = explore_ports
        self.jobs = resolve_jobs(jobs)
        self.cache = get_cache() if cache is None else cache
        self.vectorize = vectorize
        self.kernel = KERNEL_BY_PRECISION[precision]

    # ------------------------------------------------------------------
    def candidate_groupings(self) -> list[AieGrouping]:
        """All pack-aligned groupings within the AIE budget."""
        depth = pack_depth_for(self.precision)
        groupings = []
        factors = [1, 2, 3, 4, 6, 8, 12, 16]
        k_factors = [depth * f for f in (1, 2, 4)]
        for gm in factors:
            for gk in k_factors:
                for gn in factors:
                    if gm * gk * gn <= self.max_aies:
                        groupings.append(
                            AieGrouping(gm, gk, gn, self.kernel, self.precision)
                        )
        return groupings

    def _plio_budget_for(self, grouping: AieGrouping) -> int:
        """PLIOs granted to a candidate: proportional to its AIE share,
        capped by the device budget (mirrors CHARM's resource balance)."""
        share = grouping.num_aies / self.device.num_aies
        return max(3, min(self.device.usable_plios, round(self.device.usable_plios * share)))

    def candidates(self) -> list[CharmDesign]:
        designs = []
        port_options = (
            (CHARM_DEFAULT_PORTS, IMPROVED_PORTS) if self.explore_ports else (IMPROVED_PORTS,)
        )
        for i, grouping in enumerate(self.candidate_groupings()):
            for ports in port_options:
                config = HardwareConfig(
                    name=f"dse-{i}-{ports}",
                    grouping=grouping,
                    num_plios=self._plio_budget_for(grouping),
                    dram_ports=ports,
                )
                design = CharmDesign(config, self.device)
                if design.is_valid():
                    designs.append(design)
        return designs

    # ------------------------------------------------------------------
    def _evaluate(self, design: CharmDesign, workload: GemmShape) -> DsePoint | None:
        """One candidate evaluation; None when it cannot tile ``workload``."""
        try:
            estimate = AnalyticalModel(design, cache=self.cache).estimate(workload)
        except (DesignError, ValueError):
            return None
        return DsePoint(config=design.config, estimate=estimate)

    def explore(
        self,
        workload: GemmShape,
        top: int = 10,
        jobs: int | None = None,
        vectorize: bool | None = None,
    ) -> DseResult:
        """Evaluate every candidate on ``workload``; best first.

        Returns a :class:`DseResult` — a ranked list whose ``stats``
        field reports evaluated/skipped candidate counts and cache
        behaviour for the batch.

        ``vectorize`` (default: the constructor's setting) switches to
        the two-phase fast path: a NumPy batch evaluation of the whole
        candidate grid (:mod:`repro.perf.vectorized`) ranks every
        candidate, then only the leading survivors are re-ranked through
        the scalar cached model, so the returned points — rankings and
        ``Estimate`` objects alike — are byte-identical to the serial
        path while skipping the per-candidate Python overhead for the
        rest of the grid.
        """
        jobs = self.jobs if jobs is None else resolve_jobs(jobs)
        vectorize = self.vectorize if vectorize is None else vectorize
        designs = self.candidates()
        hits0, misses0 = self.cache.hits, self.cache.misses
        stats = EvalStats(jobs=jobs)
        feasibility: tuple[int, int] | None = None
        explore_span = span(
            "dse.explore",
            track="dse",
            workload=str(workload),
            candidates=len(designs),
            jobs=jobs,
            vectorize=bool(vectorize),
        )
        with explore_span:
            with track(stats):
                if vectorize and designs:
                    from repro.perf.vectorized import (
                        batch_estimate_designs,
                        rank_feasible,
                    )

                    batch = batch_estimate_designs(designs, workload)
                    # generous safety margin over `top`: the exact pass
                    # re-sorts the survivors, so near-ties cannot be lost
                    coarse_k = max(4 * top, top + 16)
                    survivors = rank_feasible(batch)[:coarse_k]
                    feasibility = (batch.num_feasible, batch.num_infeasible)
                    outcomes = parallel_map(
                        lambda index: self._evaluate(designs[index], workload),
                        survivors,
                        jobs=jobs,
                    )
                else:
                    outcomes = parallel_map(
                        lambda design: self._evaluate(design, workload),
                        designs,
                        jobs=jobs,
                    )
            points = [point for point in outcomes if point is not None]
            if feasibility is None:
                stats.evaluations = len(points)
                stats.skipped = len(designs) - len(points)
            else:
                stats.evaluations, stats.skipped = feasibility
            stats.cache_hits = self.cache.hits - hits0
            stats.cache_misses = self.cache.misses - misses0
            GLOBAL_STATS.record(stats)
            explore_span.set(
                evaluated=stats.evaluations, skipped=stats.skipped
            )
            points.sort(key=lambda p: (p.seconds, p.num_aies, p.num_plios))
            return DseResult(points[:top], stats)

    def best(self, workload: GemmShape) -> DsePoint:
        points = self.explore(workload, top=1)
        if not points:
            raise RuntimeError(
                f"no feasible design found for {workload} "
                f"({points.skipped} candidates skipped as infeasible)"
            )
        return points[0]
