"""What-if sensitivity analysis over architecture parameters.

The paper's research questions ask how sensitive performance is to
architecture parameters (#AIEs, #PLIOs, PL memory, DRAM bandwidth).
:class:`SensitivityAnalysis` answers them systematically: perturb one
parameter of a (design, workload) pair, hold everything else, and return
the latency curve — the machinery behind Fig. 14's variation bars,
generalised to any axis.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from types import MappingProxyType
from typing import Sequence

from repro.core.analytical_model import AnalyticalModel, Estimate
from repro.hw.dram import DramPorts
from repro.mapping.charm import CharmDesign
from repro.obs.spans import span
from repro.perf.cache import EvalCache, get_cache
from repro.perf.parallel import parallel_map, resolve_jobs
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class SensitivityPoint:
    """One point of a sensitivity curve."""

    parameter: str
    value: object
    estimate: Estimate

    @property
    def seconds(self) -> float:
        return self.estimate.total_seconds

    @property
    def bottleneck(self) -> str:
        return str(self.estimate.bottleneck)


class SensitivityAnalysis:
    """Latency curves under single-parameter perturbations.

    ``jobs`` evaluates the perturbed designs of each axis concurrently
    (point order always matches the requested value order); ``cache``
    memoizes the shared base-design sub-results across axes.
    """

    def __init__(
        self,
        design: CharmDesign,
        workload: GemmShape,
        jobs: int = 1,
        cache: EvalCache | None = None,
        vectorize: bool = False,
    ):
        design.validate()
        self.design = design
        self.workload = workload
        self.jobs = resolve_jobs(jobs)
        self.cache = get_cache() if cache is None else cache
        self.vectorize = vectorize

    def _evaluate(self, parameter: str, value: object, design: CharmDesign) -> SensitivityPoint:
        estimate = AnalyticalModel(design, cache=self.cache).estimate(self.workload)
        return SensitivityPoint(parameter=parameter, value=value, estimate=estimate)

    def _evaluate_axis(
        self, variants: Sequence[tuple[str, object, CharmDesign]]
    ) -> list[SensitivityPoint]:
        """Evaluate one axis's perturbed designs, fanning out when asked."""
        with span(
            "sensitivity.axis",
            track="sensitivity",
            parameter=variants[0][0] if variants else "",
            points=len(variants),
        ):
            if self.vectorize:
                points = self._evaluate_axis_vectorized(variants)
                if points is not None:
                    return points
            return parallel_map(
                lambda variant: self._evaluate(*variant), variants, jobs=self.jobs
            )

    def _evaluate_axis_vectorized(
        self, variants: Sequence[tuple[str, object, CharmDesign]]
    ) -> list[SensitivityPoint] | None:
        """One batch evaluation for the whole axis; None to fall back.

        Perturbed devices (frequency, PL memory, DRAM bandwidth) are
        per-candidate scalars of the grid, so one batch covers any axis.
        An axis containing an infeasible variant falls back to the scalar
        path, which raises exactly the error the serial analysis raises.
        """
        from repro.perf.vectorized import batch_estimate_designs

        designs = [design for (_, _, design) in variants]
        if not designs:
            return []
        try:
            batch = batch_estimate_designs(designs, self.workload)
        except ValueError:
            return None
        if not all(batch.feasible):
            return None
        return [
            SensitivityPoint(parameter=parameter, value=value, estimate=batch.estimate(i))
            for i, (parameter, value, _) in enumerate(variants)
        ]

    # ------------------------------------------------------------------
    def dram_ports(self, setups: Sequence[DramPorts]) -> list[SensitivityPoint]:
        """Vary the DRAM port configuration (the paper's 2r1w vs 4r2w)."""
        return self._evaluate_axis(
            [
                ("dram_ports", str(ports), self.design.with_ports(ports))
                for ports in setups
            ]
        )

    def plio_count(self, counts: Sequence[int]) -> list[SensitivityPoint]:
        """Vary the design's PLIO budget at fixed AIE count."""
        variants = []
        for count in counts:
            config = dataclasses.replace(
                self.design.config, num_plios=count, plio_split_override=None
            )
            variants.append(
                ("plios", count, dataclasses.replace(self.design, config=config))
            )
        return self._evaluate_axis(variants)

    def aie_frequency(self, frequencies_hz: Sequence[float]) -> list[SensitivityPoint]:
        """Vary the AIE clock (e.g. derating for thermal budgets)."""
        variants = []
        for freq in frequencies_hz:
            device = dataclasses.replace(self.design.device, aie_freq_hz=freq)
            variants.append(
                ("aie_freq_hz", freq, dataclasses.replace(self.design, device=device))
            )
        return self._evaluate_axis(variants)

    def pl_memory_fraction(self, fractions: Sequence[float]) -> list[SensitivityPoint]:
        """Vary the usable PL memory fraction (banking/porting pressure)."""
        variants = []
        for fraction in fractions:
            device = dataclasses.replace(self.design.device, pl_usable_fraction=fraction)
            variants.append(
                (
                    "pl_usable_fraction",
                    fraction,
                    dataclasses.replace(self.design, device=device),
                )
            )
        return self._evaluate_axis(variants)

    def dram_channel_bandwidth(self, bandwidths: Sequence[float]) -> list[SensitivityPoint]:
        """Vary raw DDR channel bandwidth (e.g. LPDDR/DDR5 what-ifs).

        Note: the achieved bandwidth is NoC-assignment limited, so this
        axis saturates — exactly the paper's Section IV-C story.
        """
        variants = []
        for bandwidth in bandwidths:
            device = dataclasses.replace(
                self.design.device, dram_channel_bandwidth=bandwidth
            )
            variants.append(
                (
                    "dram_channel_bandwidth",
                    bandwidth,
                    dataclasses.replace(self.design, device=device),
                )
            )
        return self._evaluate_axis(variants)

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, list[SensitivityPoint]]:
        """A default sweep across every supported axis."""
        base_freq = self.design.device.aie_freq_hz
        return MappingProxyType(
            {
                "dram_ports": self.dram_ports([DramPorts(2, 1), DramPorts(4, 2), DramPorts(8, 4)]),
                "plios": self.plio_count(
                    sorted({max(3, self.design.config.num_plios // 2),
                            self.design.config.num_plios,
                            self.design.config.num_plios * 2})
                ),
                "aie_freq_hz": self.aie_frequency([0.5 * base_freq, base_freq, 1.25 * base_freq]),
                "pl_usable_fraction": self.pl_memory_fraction([0.1, 0.2, 0.4]),
            }
        )
