"""Post-op fusion on spare AIEs — the paper's multi-AIE recommendation.

Section V-G's summary: *"Different AIEs can run different kernels in
parallel... we suggest utilizing these AIEs for operations that do not
require external data. Operations such as activation functions (ReLU),
softmax, and element-wise addition can be performed on the output of
AIEs running GEMM operations by implementing kernels in unused AIEs,
instead of implementing them in the PL. This approach avoids unnecessary
data movement between AIE and PL or DRAM."*

This module implements that optimisation as an analyzable design choice:

* **Unfused** — the GEMM writes C to DRAM; a separate pass streams C
  back through the PL (or a PL datapath), applies the post-op and writes
  the result: one extra DRAM read + write of C plus a kernel setup.
* **Fused** — post-op kernels sit on spare AIEs and consume the GEMM
  output streams in-array; the only cost is the post-op compute, which
  overlaps the GEMM pipeline when the spare engines keep up.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.analytical_model import AnalyticalModel
from repro.mapping.charm import CharmDesign
from repro.workloads.gemm import GemmShape


class PostOp(enum.Enum):
    """Element-wise (or row-wise) operations applied to the GEMM output."""

    RELU = ("relu", 1.0)
    BIAS_ADD = ("bias_add", 1.0)
    ELEMENTWISE_ADD = ("elementwise_add", 1.0)
    GELU = ("gelu", 14.0)  # tanh-approximation op count
    SOFTMAX = ("softmax", 12.0)  # exp + row reduction + divide

    def __init__(self, label: str, ops_per_element: float) -> None:
        self.label = label
        self.ops_per_element = ops_per_element

    def __str__(self) -> str:
        return self.label


#: Non-MAC vector ops one AIE retires per cycle (32-bit lanes).
VECTOR_OPS_PER_CYCLE = 8
#: Fixed launch overhead of a separate (unfused) post-op pass.
UNFUSED_PASS_SETUP_SECONDS = 100e-6


@dataclass(frozen=True)
class FusionEstimate:
    """Latency comparison of fused vs unfused post-op execution."""

    design: CharmDesign
    workload: GemmShape
    post_op: PostOp
    spare_aies: int
    gemm_seconds: float
    #: post-op compute on the spare engines (overlaps the GEMM)
    fused_postop_seconds: float
    #: extra DRAM traffic time + setup of the separate pass
    unfused_pass_seconds: float

    @property
    def fused_total(self) -> float:
        """Fused: the post-op pipeline-overlaps the GEMM; only the excess
        beyond the GEMM time is exposed."""
        return max(self.gemm_seconds, self.fused_postop_seconds)

    @property
    def unfused_total(self) -> float:
        return self.gemm_seconds + self.unfused_pass_seconds

    @property
    def savings_seconds(self) -> float:
        return self.unfused_total - self.fused_total

    @property
    def speedup(self) -> float:
        return self.unfused_total / self.fused_total

    @property
    def avoided_dram_bytes(self) -> int:
        """DRAM traffic the fusion eliminates: re-read + re-write of C."""
        eb = self.design.precision.element_bytes
        return 2 * self.workload.bytes_c(eb)


class FusionPlanner:
    """Plans post-op fusion onto a design's spare AIEs."""

    def __init__(self, design: CharmDesign):
        design.validate()
        self.design = design
        self.device = design.device

    @property
    def spare_aies(self) -> int:
        return self.device.num_aies - self.design.config.num_aies

    def postop_aies_needed(self, post_op: PostOp, workload: GemmShape) -> int:
        """Spare engines needed for the post-op to keep pace with the GEMM."""
        gemm = AnalyticalModel(self.design).estimate(workload)
        total_ops = workload.elements_c() * post_op.ops_per_element
        per_aie_rate = VECTOR_OPS_PER_CYCLE * self.device.aie_freq_hz
        needed = total_ops / (per_aie_rate * gemm.total_seconds)
        return max(1, math.ceil(needed))

    def estimate(self, post_op: PostOp, workload: GemmShape) -> FusionEstimate:
        if self.spare_aies < 1:
            raise ValueError(
                f"{self.design.config.name} occupies the whole array; "
                "no spare AIEs for fusion"
            )
        gemm = AnalyticalModel(self.design).estimate(workload)
        engines = min(self.spare_aies, self.postop_aies_needed(post_op, workload))
        total_ops = workload.elements_c() * post_op.ops_per_element
        fused_postop = total_ops / (engines * VECTOR_OPS_PER_CYCLE * self.device.aie_freq_hz)

        eb = self.design.precision.element_bytes
        dram = self.design.dram
        extra_read = dram.transfer_seconds(workload.bytes_c(eb), dram.read_bandwidth())
        extra_write = dram.transfer_seconds(workload.bytes_c(eb), dram.write_bandwidth())
        unfused_pass = extra_read + extra_write + UNFUSED_PASS_SETUP_SECONDS

        return FusionEstimate(
            design=self.design,
            workload=workload,
            post_op=post_op,
            spare_aies=engines,
            gemm_seconds=gemm.total_seconds,
            fused_postop_seconds=fused_postop,
            unfused_pass_seconds=unfused_pass,
        )
