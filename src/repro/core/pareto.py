"""Pareto-front utilities for design selection.

DSE rankings answer "fastest"; real deployments trade latency against
AIEs (area for other kernels), PLIOs (replication headroom, Fig. 13) and
energy.  These helpers extract the non-dominated designs from any
collection of candidate records.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

Record = Mapping[str, Any]


def dominates(a: Record, b: Record, objectives: Sequence[str]) -> bool:
    """True when ``a`` is at least as good as ``b`` on every (minimised)
    objective and strictly better on at least one."""
    at_least_as_good = all(a[o] <= b[o] for o in objectives)
    strictly_better = any(a[o] < b[o] for o in objectives)
    return at_least_as_good and strictly_better


def pareto_front(records: Sequence[Record], objectives: Sequence[str]) -> list[Record]:
    """The non-dominated subset (all objectives minimised), preserving
    input order within the front."""
    if not objectives:
        raise ValueError("need at least one objective")
    front = []
    for candidate in records:
        if not any(
            dominates(other, candidate, objectives)
            for other in records
            if other is not candidate
        ):
            front.append(candidate)
    return front


def knee_point(
    front: Sequence[Record], objectives: Sequence[str]
) -> Record:
    """The balanced choice: minimal normalised distance to the utopia
    point (the per-objective minima of the front)."""
    if not front:
        raise ValueError("empty front")
    minima = {o: min(r[o] for r in front) for o in objectives}
    maxima = {o: max(r[o] for r in front) for o in objectives}

    def distance(record: Record) -> float:
        total = 0.0
        for objective in objectives:
            span = maxima[objective] - minima[objective]
            if span > 0:
                total += ((record[objective] - minima[objective]) / span) ** 2
        return total

    return min(front, key=distance)


def design_tradeoff_records(
    workload,
    precision,
    max_aies: int | None = None,
    vectorize: bool = False,
) -> list[dict[str, Any]]:
    """Candidate records (latency/AIEs/PLIOs/energy) for Pareto study.

    ``vectorize`` routes the underlying exploration through the batch
    evaluation kernel (identical records, far less Python overhead).
    """
    from repro.core.dse import DesignSpaceExplorer
    from repro.core.energy import EnergyModel
    from repro.mapping.charm import CharmDesign

    explorer = DesignSpaceExplorer(precision, max_aies=max_aies, vectorize=vectorize)
    records = []
    for point in explorer.explore(workload, top=100):
        energy = EnergyModel(CharmDesign(point.config)).from_estimate(point.estimate)
        records.append(
            {
                "grouping": f"{point.config.grouping.gm}x{point.config.grouping.gk}x{point.config.grouping.gn}",
                "seconds": point.seconds,
                "aies": point.num_aies,
                "plios": point.num_plios,
                "joules": energy.total_joules,
            }
        )
    return records
