"""Command-line interface: run any of the paper's experiments.

Usage::

    versal-gemm list
    versal-gemm run fig9
    versal-gemm run all --format csv
    versal-gemm estimate 2048x2048x2048 --config C6
    versal-gemm dse 4096x4096x4096 --precision fp32
    versal-gemm -j 4 --stats dse 4096x4096x4096    # parallel + stats
    versal-gemm serve 1024x1024x1024 --trace-out trace.json \
        --metrics-out metrics.prom                 # observability out
    versal-gemm obs summary trace.json             # analyze a trace
    versal-gemm bench serving -n 10 --noise dram:0.1,clock:0.05
    versal-gemm bench --smoke --out-dir artifacts  # CI statistical gate

Global flags (before the subcommand): ``--jobs/-j N`` fans batched
evaluations out over N worker threads (0 = one per CPU), ``--stats``
prints evaluation-engine statistics (evaluations, cache hits, wall
time) to stderr after the command, ``--vectorize`` batch-evaluates
candidate grids through the NumPy fast path (identical results).
Stats and cache counters reset at the start of every invocation, so
``--stats`` always reports per-run numbers.

``serve`` and ``dse`` additionally accept ``--trace-out trace.json``
(enable the tracer for the run and export a Chrome trace-event file —
open it at https://ui.perfetto.dev) and ``--metrics-out metrics.prom``
(dump the metrics registry in Prometheus text format); see
docs/observability.md.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.analytical_model import AnalyticalModel
from repro.core.dse import DesignSpaceExplorer
from repro.experiments import available_experiments, run_experiment
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.obs.metrics import GLOBAL_METRICS
from repro.obs.spans import GLOBAL_TRACER
from repro.reporting import RENDERERS, format_seconds, render_bars, render_table
from repro.workloads.gemm import GemmShape

#: serving reports and windowed monitors queued by commands for the
#: end-of-run trace export (cleared at the start of every ``main``
#: invocation); monitors become Perfetto counter tracks
_PENDING_TRACE_SOURCES: list = []


def _cmd_list(_: argparse.Namespace) -> int:
    for experiment_id in available_experiments():
        print(experiment_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = available_experiments() if args.experiment == "all" else [args.experiment]
    for target in targets:
        result = run_experiment(target, jobs=args.jobs)
        if args.format == "table":
            print(result.render())
        else:
            renderer = RENDERERS[args.format]
            rows = result.rows or [
                row for panel in result.panels.values() for row in panel
            ]
            print(renderer(rows))
        print()
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    workload = GemmShape.parse(args.workload)
    design = CharmDesign(config_by_name(args.config))
    estimate = AnalyticalModel(design).estimate(workload)
    if args.json:
        from repro.io import estimate_to_json

        print(estimate_to_json(estimate))
        return 0
    b = estimate.breakdown
    print(f"workload     {workload} on {design.config}")
    print(f"total        {format_seconds(estimate.total_seconds)}")
    print(f"throughput   {estimate.throughput_ops / 1e12:.3f} Tops/s "
          f"({estimate.efficiency:.1%} of peak)")
    print(f"bottleneck   {estimate.bottleneck}")
    print(f"tile plan    pl_tile={estimate.plan.pl_tile} "
          f"multiples={estimate.plan.multiples} "
          f"dram_tiles={estimate.plan.num_dram_tiles}")
    print("breakdown    " + render_table([
        {
            "load_a": format_seconds(b.load_a_seconds),
            "load_b": format_seconds(b.load_b_seconds),
            "aie": format_seconds(b.aie_seconds),
            "store_c": format_seconds(b.store_c_seconds),
            "setup": format_seconds(b.setup_seconds),
        }
    ]).replace("\n", "\n             "))
    return 0


def _cmd_roofline(args: argparse.Namespace) -> int:
    """Render the Fig. 15 roofline in the terminal."""
    from repro.core.roofline import Roofline
    from repro.workloads.dnn import DNN_WORKLOADS

    roofline = Roofline(Precision.parse(args.precision))
    tiling_config = config_by_name(args.config)
    points = []
    for workload in DNN_WORKLOADS:
        points.append(roofline.point(workload.workload_id, workload.shape))
        points.append(
            roofline.tiled_point(workload.workload_id, workload.shape, tiling_config)
        )
    print(roofline.render_ascii(points, width=args.width, height=args.height))
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    """Emit a configuration's AIE connectivity graph (summary or DOT)."""
    from repro.mapping.connectivity import build_connectivity

    graph = build_connectivity(config_by_name(args.config))
    print(graph.to_dot() if args.dot else graph.summary())
    return 0


def _cmd_chart(args: argparse.Namespace) -> int:
    """Render one experiment column as an ASCII bar chart."""
    result = run_experiment(args.experiment)
    panels = {"rows": result.rows, **result.panels} if result.rows else result.panels
    for name, rows in panels.items():
        if not rows or args.value not in rows[0]:
            continue
        label = args.label or next(iter(rows[0]))
        print(
            render_bars(
                rows,
                label_key=label,
                value_key=args.value,
                width=args.width,
                title=f"{result.experiment_id} / {name}: {args.value}",
                log_scale=args.log,
            )
        )
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run every experiment and write a markdown results document."""
    lines = [
        "# Reproduction results",
        "",
        "Generated by `versal-gemm report`. One section per paper artifact;",
        "see EXPERIMENTS.md for the paper-vs-measured audit.",
        "",
    ]
    for experiment_id in available_experiments():
        result = run_experiment(experiment_id, jobs=args.jobs)
        lines.append(f"## {result.experiment_id}: {result.title}")
        lines.append(f"*{result.paper_reference}*")
        lines.append("")
        lines.append("```")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
        print(f"ran {experiment_id}", file=sys.stderr)
    text = "\n".join(lines)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from repro.core.e2e import ModelEstimator
    from repro.workloads.transformer import model_by_name

    model = model_by_name(args.model)
    estimator = ModelEstimator(
        Precision.parse(args.precision),
        per_layer_selection=not args.fixed_config,
    )
    estimate = estimator.estimate(model, tokens=args.tokens)
    rows = [
        {
            "layer": layer.gemm.name,
            "shape": str(layer.gemm.shape),
            "x": layer.gemm.count,
            "config": layer.config_name,
            "per_call": format_seconds(layer.single_seconds),
            "total": format_seconds(layer.total_seconds),
            "bottleneck": layer.bottleneck,
        }
        for layer in estimate.layers
    ]
    print(render_table(rows, title=f"{model.name}, {args.tokens} tokens ({args.precision})"))
    print()
    print(f"forward pass  {format_seconds(estimate.total_seconds)} "
          f"({estimate.total_flops / 1e9:.0f} GFLOP, "
          f"{estimate.throughput_ops / 1e12:.2f} Tops/s, "
          f"{estimate.tokens_per_second:,.0f} tokens/s)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.hwsim import HwSimulator

    workload = GemmShape.parse(args.workload)
    design = CharmDesign(config_by_name(args.config))
    trace = HwSimulator(design).trace(workload)
    print(f"{workload} on {design.config.name}: "
          f"makespan {format_seconds(trace.makespan)} (+100 us setup)")
    print(trace.gantt(width=args.width))
    overlap = trace.overlap_seconds("load", "aie") / trace.makespan
    print(f"load/AIE overlap: {overlap:.0%} of the run "
          f"(double buffering {'on' if design.pl_double_buffered else 'off'})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.multi_acc import AcceleratorPartition
    from repro.sim.chaos import FaultError, FaultPolicy, parse_fault_spec
    from repro.sim.serving import ServingSimulator, load_sweep
    from repro.sim.streaming import generate_trace_soa

    shapes = [GemmShape.parse(token) for token in args.shapes.split(",") if token]
    if not shapes:
        print("serve: need at least one MxKxN shape", file=sys.stderr)
        return 2
    if args.rate is not None and args.mean_interarrival is not None:
        print("serve: pass --rate or --mean-interarrival, not both", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("serve: --shards must be at least 1", file=sys.stderr)
        return 2
    if args.shards > 1 and args.dispatch == "scan":
        print("serve: --shards streams its reports; the scan engine is "
              "exact-mode only", file=sys.stderr)
        return 2
    if args.windows < 1:
        print("serve: --windows must be at least 1", file=sys.stderr)
        return 2
    slo_spec = None
    if args.slo:
        from repro.obs.slo import SloSpec

        try:
            slo_spec = SloSpec.parse(args.slo)
        except ValueError as error:
            print(f"serve: {error}", file=sys.stderr)
            return 2
    if args.rate is not None:
        mean_interarrival = 1.0 / args.rate
    else:
        mean_interarrival = args.mean_interarrival or 1e-3
    configs = [config_by_name(name) for name in args.configs.split(",") if name]
    partition = AcceleratorPartition(configs)
    simulator = ServingSimulator(partition)
    from repro.sim.dispatch_batch import native_available

    native = native_available()
    GLOBAL_METRICS.gauge(
        "repro_native_available",
        "Compiled k-wide dispatch kernel in use (1) or NumPy fallback (0)",
    ).set(1.0 if native else 0.0)
    if args.stats:
        print(
            f"native       {'available' if native else 'unavailable'} "
            "(k-wide C dispatch kernel)",
            file=sys.stderr,
        )
    simulator.prewarm(shapes, jobs=args.jobs, vectorize=args.vectorize)

    faults = None
    fault_policy = None
    if args.faults:
        # the expected span of the trace anchors relative chaos windows
        horizon = args.requests * mean_interarrival
        try:
            faults = parse_fault_spec(
                args.faults,
                list(partition.designs),
                device=partition.device,
                seed=args.fault_seed,
                horizon=horizon,
            )
        except FaultError as error:
            print(f"serve: {error}", file=sys.stderr)
            return 2
        fault_policy = FaultPolicy(max_retries=args.max_retries)

    if args.sweep:
        loads = None
        if args.loads:
            loads = [float(token) for token in args.loads.split(",") if token]
        result = load_sweep(
            simulator,
            shapes,
            loads,
            num_requests=args.requests,
            seed=args.seed,
            streaming=args.streaming,
            quantile_error=args.quantile_error,
            jobs=args.jobs,
            shards=args.shards,
            start_method=args.start_method,
            faults=faults,
            fault_policy=fault_policy,
            slo=slo_spec,
            slo_windows=args.windows,
        )
        print(render_table(result.rows(), title="offered-load sweep"))
        if result.knee_rps is not None:
            print(f"saturation knee   ~{result.knee_rps:.0f} rps offered")
        else:
            print("saturation knee   not reached (raise --loads)")
        if result.early_exit:
            print(f"plateau           {result.plateau_rps:.0f} rps achieved; "
                  "sweep exited early")
        if slo_spec is not None:
            if result.slo_breach_rps is not None:
                print(f"slo breach        first at "
                      f"{result.slo_breach_rps:.0f} rps offered")
            else:
                print("slo breach        none within the swept loads")
        return 0

    monitor = None
    want_monitor = slo_spec is not None or args.monitor_out is not None
    # chunk-fed windowed telemetry: cut the expected horizon into
    # --windows equal slices of simulated time
    window_seconds = args.requests * mean_interarrival / args.windows
    fleet = None
    if args.shards > 1:
        from repro.sim.cluster_serving import ShardedServingCluster

        with ShardedServingCluster(
            simulator,
            shapes,
            shards=args.shards,
            dispatch=args.dispatch,
            quantile_error=args.quantile_error,
            start_method=args.start_method,
            max_workers=args.jobs if args.jobs != 1 else None,
            faults=faults,
            fault_policy=fault_policy,
        ) as cluster:
            fleet = cluster.serve(
                args.requests,
                mean_interarrival,
                seed=args.seed,
                monitor_window=window_seconds if want_monitor else None,
            )
        report = fleet.report
        monitor = fleet.monitor
    else:
        if want_monitor:
            from repro.obs.windows import ServingMonitor

            monitor = ServingMonitor(
                window_seconds, quantile_error=args.quantile_error
            )
        trace = generate_trace_soa(
            shapes, args.requests, mean_interarrival, seed=args.seed
        )
        report = simulator.run(
            trace,
            streaming=args.streaming,
            dispatch=args.dispatch,
            quantile_error=args.quantile_error,
            faults=faults,
            fault_policy=fault_policy,
            monitor=monitor,
        )
    if args.trace_out:
        # streaming/fleet reports degrade to utilization + fault tracks
        # in the exporter; monitors add one counter track per metric
        _PENDING_TRACE_SOURCES.append(report)
        if monitor is not None:
            _PENDING_TRACE_SOURCES.append(monitor)
    if args.metrics_out:
        summary = report.fault_summary()
        GLOBAL_METRICS.counter(
            "repro_serving_requests_total", "Requests completed by serving runs"
        ).inc(summary["completed"])
        GLOBAL_METRICS.counter(
            "repro_serving_shed_total", "Requests shed by serving runs"
        ).inc(summary["shed"])
        GLOBAL_METRICS.gauge(
            "repro_serving_throughput_rps", "Completed requests per second"
        ).set(report.throughput_rps)
        if fleet is not None:
            GLOBAL_METRICS.gauge(
                "repro_serving_shards", "Shard replicas in the last fleet serve"
            ).set(fleet.shards)
        if not args.streaming and fleet is None:
            GLOBAL_METRICS.histogram(
                "repro_serving_latency_seconds",
                "End-to-end request latency",
                relative_error=args.quantile_error,
            ).observe_many([c.latency for c in report.completed])
            GLOBAL_METRICS.histogram(
                "repro_serving_queue_seconds",
                "Request queueing delay before dispatch",
                relative_error=args.quantile_error,
            ).observe_many([c.queueing_delay for c in report.completed])
    p50, p95, p99 = report.latency_percentiles([50, 95, 99])
    if fleet is not None:
        mode = (f"{fleet.shards} shards via {fleet.start_method}, "
                "sketched percentiles")
    elif args.streaming:
        mode = "streaming (sketched percentiles)"
    else:
        mode = "exact"
    print(f"requests     {args.requests} over {len(configs)} accelerators ({mode})")
    print(f"makespan     {format_seconds(report.makespan)}")
    print(f"throughput   {report.throughput_rps:.1f} requests/s")
    print(f"latency      p50 {format_seconds(p50)}   p95 {format_seconds(p95)}   "
          f"p99 {format_seconds(p99)}   mean {format_seconds(report.mean_latency())}")
    for name, count in sorted(report.accelerator_load().items()):
        print(f"load         {name}: {count} requests")
    if faults is not None:
        summary = report.fault_summary()
        print(f"faults       {summary['fault_events'] // 2} windows: "
              f"{summary['kills']} kills, {summary['retries']} retries, "
              f"{summary['requeues']} requeues, {summary['shed']} shed")
        print(f"availability {summary['request_availability']:.1%} of requests; "
              + "  ".join(f"{name} {up:.1%}"
                          for name, up in sorted(summary["availability"].items())))
    if monitor is not None:
        slo_report = None
        if slo_spec is not None:
            from repro.obs.slo import evaluate_slo

            slo_report = evaluate_slo(monitor, slo_spec)
        print(_render_monitor_timeline(monitor, slo_report=slo_report,
                                       faults=faults))
        if slo_report is not None:
            _print_slo_verdict(slo_report)
        if args.monitor_out:
            _write_monitor_file(args.monitor_out, monitor, args.slo, slo_report)
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    workload = GemmShape.parse(args.workload)
    explorer = DesignSpaceExplorer(
        Precision.parse(args.precision),
        explore_ports=args.explore_ports,
        jobs=args.jobs,
        vectorize=args.vectorize,
    )
    points = explorer.explore(workload, top=args.top)
    rows = [
        {
            "rank": i + 1,
            "aies": p.num_aies,
            "grouping": f"{p.config.grouping.gm}x{p.config.grouping.gk}x{p.config.grouping.gn}",
            "native": str(p.config.native_size),
            "plios": p.num_plios,
            "ports": str(p.config.dram_ports),
            "time": format_seconds(p.seconds),
            "bottleneck": str(p.estimate.bottleneck),
        }
        for i, p in enumerate(points)
    ]
    print(render_table(rows, title=f"DSE for {workload} ({args.precision})"))
    print(f"evaluated {points.evaluated} candidates "
          f"({points.skipped} infeasible for this workload)")
    return 0


#: per-kind defaults the bench command applies when flags are absent
_BENCH_REPEATS_DEFAULT = 5
_BENCH_REQUESTS_DEFAULT = {"serving": 100_000, "sweep": 2000}


def _bench_experiment(args: argparse.Namespace):
    """Build the requested experiment kind from bench flags (or exit 2)."""
    from repro.bench.experiments import (
        EstimateExperiment,
        EvalThroughputExperiment,
        LoadSweepExperiment,
        PipelineExperiment,
        ServingExperiment,
    )
    from repro.bench.scenarios import SERVING_CONFIGS, SERVING_SHAPES

    shapes = (
        tuple(GemmShape.parse(token) for token in args.shapes.split(",") if token)
        if args.shapes
        else SERVING_SHAPES
    )
    configs = (
        tuple(token for token in args.configs.split(",") if token)
        if args.configs
        else SERVING_CONFIGS
    )
    requests = args.requests or _BENCH_REQUESTS_DEFAULT.get(args.kind, 0)
    mean_interarrival = args.mean_interarrival or 0.5e-3

    faults = None
    fault_policy = None
    if args.faults and args.kind in ("serving", "sweep"):
        from repro.core.multi_acc import AcceleratorPartition
        from repro.sim.chaos import FaultError, FaultPolicy, parse_fault_spec

        partition = AcceleratorPartition([config_by_name(name) for name in configs])
        try:
            faults = parse_fault_spec(
                args.faults,
                list(partition.designs),
                device=partition.device,
                seed=args.fault_seed,
                horizon=requests * mean_interarrival,
            )
        except FaultError as error:
            raise SystemExit(f"bench: {error}")
        fault_policy = FaultPolicy(max_retries=args.max_retries)

    if args.kind == "serving":
        return ServingExperiment(
            shapes,
            configs,
            num_requests=requests,
            mean_interarrival=mean_interarrival,
            dispatch=args.dispatch,
            streaming=args.streaming,
            quantile_error=args.quantile_error,
            shards=args.shards,
            start_method=args.start_method,
            faults=faults,
            fault_policy=fault_policy,
            vary_trace=not args.fixed_trace,
            trace_seed=args.trace_seed,
        )
    if args.kind == "sweep":
        loads = (
            [float(token) for token in args.loads.split(",") if token]
            if args.loads
            else None
        )
        return LoadSweepExperiment(
            shapes,
            configs,
            offered_loads=loads,
            num_requests=requests,
            jobs=args.jobs,
            shards=args.shards,
            start_method=args.start_method,
            faults=faults,
            fault_policy=fault_policy,
            quantile_error=args.quantile_error,
        )
    if args.kind == "estimate":
        workload = GemmShape.parse(args.workload) if args.workload else None
        return (
            EstimateExperiment(config=args.config, workload=workload)
            if workload
            else EstimateExperiment(config=args.config)
        )
    if args.kind == "pipeline":
        return PipelineExperiment(items=args.items)
    return EvalThroughputExperiment(
        max_aies=args.max_aies,
        inner_repeats=args.inner_repeats,
        jobs=args.eval_jobs,
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    """Repeated-run statistical bench harness (see docs/benchmarking.md)."""
    from repro.bench.noise import parse_noise_spec
    from repro.bench.regression import (
        BaselineError,
        check_result,
        exit_code,
        load_baseline,
    )
    from repro.bench.runner import run_bench, write_csv, write_json

    try:
        noise = parse_noise_spec(args.noise)
    except ValueError as error:
        print(f"bench: {error}", file=sys.stderr)
        return 2

    if args.smoke:
        from repro.bench.smoke import SMOKE_REPEATS, run_smoke

        return run_smoke(
            out_dir=args.out_dir,
            repeats=args.repeats or SMOKE_REPEATS,
            seed=7 if args.seed is None else args.seed,
            noise=noise or None,
            serving_baseline=args.serving_baseline,
            eval_baseline=args.eval_baseline,
            serving_requests=args.requests or 1_000_000,
        )
    if args.kind is None:
        print("bench: pass an experiment kind or --smoke", file=sys.stderr)
        return 2

    try:
        experiment = _bench_experiment(args)
    except SystemExit as error:
        print(error, file=sys.stderr)
        return 2
    repeats = args.repeats or _BENCH_REPEATS_DEFAULT
    seed = 0 if args.seed is None else args.seed
    try:
        result = run_bench(
            experiment,
            repeats=repeats,
            seed=seed,
            noise=noise or None,
            jobs=args.jobs,
            confidence=args.confidence,
            bootstrap_resamples=args.resamples,
            trace_rollup=args.trace_rollup,
        )
    except ValueError as error:
        print(f"bench: {error}", file=sys.stderr)
        return 2

    noise_label = ",".join(result.noise) or "none"
    print(f"bench {result.kind}: {repeats} repeats, seed {seed}, "
          f"noise {noise_label}")
    rows = [
        {
            "metric": name,
            "mean": f"{summary.mean:.6g}",
            "median": f"{summary.median:.6g}",
            "std": f"{summary.std:.3g}",
            f"ci{result.confidence:.0%}": (
                f"[{summary.ci_low:.6g}, {summary.ci_high:.6g}]"
            ),
            "bootstrap": f"[{summary.boot_low:.6g}, {summary.boot_high:.6g}]",
        }
        for name, summary in sorted(result.summaries.items())
    ]
    print(render_table(rows))
    if args.csv_out:
        write_csv(result, args.csv_out)
        print(f"wrote {args.csv_out}", file=sys.stderr)
    if args.json_out:
        write_json(result, args.json_out)
        print(f"wrote {args.json_out}", file=sys.stderr)

    if not args.baseline:
        return 0
    # regression gating: judge this run against a committed BENCH_*.json
    if args.kind == "serving":
        from repro.bench.smoke import serving_baseline_gates

        gates = serving_baseline_gates(args.tolerance)
    elif args.kind == "eval":
        from repro.bench.smoke import eval_smoke_gates

        gates = eval_smoke_gates()
    else:
        print(f"bench: no baseline gates defined for kind {args.kind!r} "
              "(serving and eval compare against BENCH_*.json)", file=sys.stderr)
        return 2
    try:
        baseline = load_baseline(args.baseline)
    except BaselineError as error:
        print(f"bench: [corrupt_baseline] {error}", file=sys.stderr)
        return 1
    verdicts = check_result(result, gates, baseline)
    for verdict in verdicts:
        print(f"gate {verdict.message}",
              file=sys.stderr if verdict.failed else sys.stdout)
    return exit_code(verdicts)


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    """Validate a Chrome trace and print utilization/overlap/bottleneck."""
    from repro.obs.export import validate_chrome_trace
    from repro.obs.summary import load_trace, summarize_trace

    try:
        trace = load_trace(args.trace)
        validate_chrome_trace(trace)
    except (OSError, ValueError) as error:
        print(f"obs summary: {error}", file=sys.stderr)
        return 2
    print(summarize_trace(trace).render())
    return 0


def _render_monitor_timeline(monitor, slo_report=None, faults=None) -> str:
    rows = []
    for stats in monitor.timeline():
        row: dict = {
            "window": f"[{stats.start:.4g}s, {stats.end:.4g}s)",
            "done": stats.completed,
            "shed": stats.shed,
            "kills": stats.kills,
            "rps": f"{stats.rps:.0f}",
            "p50": format_seconds(stats.p50) if stats.p50 is not None else "-",
            "p99": format_seconds(stats.p99) if stats.p99 is not None else "-",
        }
        if faults is not None:
            active = faults.windows_overlapping(stats.start, stats.end)
            row["fault"] = ",".join(sorted({w.accelerator for w in active})) if active else ""
        if slo_report is not None:
            row["slo"] = "ok" if slo_report.window_ok(stats.index) else "BREACH"
        rows.append(row)
    return render_table(rows, title="windowed telemetry")


def _print_slo_verdict(slo_report) -> None:
    for result in slo_report.results:
        status = "ok" if result.ok else "BREACH"
        print(f"slo          {result.objective.name}: {status} "
              f"({result.bad_events}/{result.total_events} bad, "
              f"budget consumed {result.budget_consumed:.0%})")
    for alert in slo_report.alerts:
        print(f"ALERT        [{alert.severity}] {alert.objective} "
              f"at t={alert.time:.6g}s: {alert.detail}")


def _write_monitor_file(path: str, monitor, slo_text, slo_report) -> None:
    payload: dict = {"monitor": monitor.as_dict()}
    if slo_text:
        payload["slo"] = slo_text
    if slo_report is not None:
        payload["alerts"] = [alert.as_dict() for alert in slo_report.alerts]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path} (windowed telemetry)", file=sys.stderr)


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    from repro.obs.slo import SloSpec, evaluate_slo
    from repro.obs.windows import ServingMonitor

    try:
        with open(args.file, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"obs slo: {error}", file=sys.stderr)
        return 2
    if not isinstance(data, dict):
        print(f"obs slo: {args.file} is not a monitor export", file=sys.stderr)
        return 2
    # accept both the 'serve --monitor-out' wrapper and a bare as_dict()
    payload = data.get("monitor", data)
    try:
        monitor = ServingMonitor.from_dict(payload)
    except (AttributeError, KeyError, TypeError, ValueError) as error:
        print(f"obs slo: {args.file} is not a monitor export: {error}",
              file=sys.stderr)
        return 2
    spec_text = args.slo or data.get("slo")
    slo_report = None
    if spec_text:
        try:
            spec = SloSpec.parse(spec_text)
        except ValueError as error:
            print(f"obs slo: {error}", file=sys.stderr)
            return 2
        slo_report = evaluate_slo(monitor, spec)
    print(_render_monitor_timeline(monitor, slo_report=slo_report))
    if slo_report is not None:
        _print_slo_verdict(slo_report)
    elif args.slo is None:
        print("obs slo: no spec stored in the file; pass --slo to evaluate",
              file=sys.stderr)
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable the tracer for this run and write a Chrome "
             "trace-event JSON (open at https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry in Prometheus text format",
    )


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = one per CPU)")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="versal-gemm",
        description="GEMM performance analysis on the simulated AMD Versal VCK5000",
    )
    parser.add_argument(
        "--jobs", "-j", type=_jobs_arg, default=1, metavar="N",
        help="worker threads for batched evaluations (0 = one per CPU)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print evaluation-engine statistics to stderr after the command",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the evaluation cache under DIR: warm-start from a "
             "previous invocation's snapshot and save an updated one on "
             "success (corrupt or stale snapshots cold-start silently)",
    )
    parser.add_argument(
        "--vectorize", action=argparse.BooleanOptionalAction, default=False,
        help="batch-evaluate candidate grids with the NumPy fast path "
             "(results identical; --no-vectorize forces the scalar path)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment")
    run.add_argument("--format", choices=sorted(RENDERERS), default="table")
    run.set_defaults(func=_cmd_run)

    estimate = sub.add_parser("estimate", help="estimate one workload on a config")
    estimate.add_argument("workload", help="MxKxN, e.g. 2048x2048x2048")
    estimate.add_argument("--config", default="C6", help="Table II config name")
    estimate.add_argument("--json", action="store_true", help="machine-readable output")
    estimate.set_defaults(func=_cmd_estimate)

    dse = sub.add_parser("dse", help="explore designs for a workload")
    dse.add_argument("workload", help="MxKxN")
    dse.add_argument("--precision", default="fp32", choices=["fp32", "int8", "int16"])
    dse.add_argument("--top", type=int, default=10)
    dse.add_argument("--explore-ports", action="store_true")
    _add_obs_flags(dse)
    dse.set_defaults(func=_cmd_dse)

    model = sub.add_parser("model", help="estimate a transformer forward pass")
    model.add_argument("model", help="e.g. Llama2-13B, BERT-large")
    model.add_argument("--tokens", type=int, default=2048)
    model.add_argument("--precision", default="fp32", choices=["fp32", "int8", "int16"])
    model.add_argument("--fixed-config", action="store_true",
                       help="use one configuration for every layer")
    model.set_defaults(func=_cmd_model)

    trace = sub.add_parser("trace", help="show a pipeline Gantt for a run")
    trace.add_argument("workload", help="MxKxN")
    trace.add_argument("--config", default="C6")
    trace.add_argument("--width", type=int, default=72)
    trace.set_defaults(func=_cmd_trace)

    report = sub.add_parser("report", help="run everything, write RESULTS.md")
    report.add_argument("-o", "--output", default=None)
    report.set_defaults(func=_cmd_report)

    roofline = sub.add_parser("roofline", help="render Fig. 15 in the terminal")
    roofline.add_argument("--precision", default="int8", choices=["fp32", "int8", "int16"])
    roofline.add_argument("--config", default="C11", help="config for tiled points")
    roofline.add_argument("--width", type=int, default=70)
    roofline.add_argument("--height", type=int, default=20)
    roofline.set_defaults(func=_cmd_roofline)

    graph = sub.add_parser("graph", help="emit a config's AIE connectivity graph")
    graph.add_argument("--config", default="C1")
    graph.add_argument("--dot", action="store_true", help="Graphviz DOT output")
    graph.set_defaults(func=_cmd_graph)

    chart = sub.add_parser("chart", help="render an experiment column as bars")
    chart.add_argument("experiment")
    chart.add_argument("--value", required=True, help="numeric column to plot")
    chart.add_argument("--label", default=None, help="label column (default: first)")
    chart.add_argument("--width", type=int, default=50)
    chart.add_argument("--log", action="store_true")
    chart.set_defaults(func=_cmd_chart)

    serve = sub.add_parser("serve", help="simulate serving a GEMM request stream")
    serve.add_argument("shapes", help="comma-separated MxKxN mix, e.g. "
                       "1024x1024x1024,512x512x512")
    serve.add_argument("--configs", default="C5,C3",
                       help="partition accelerators (Table II names, comma-separated)")
    serve.add_argument("--requests", type=int, default=10000)
    serve.add_argument("--rate", type=float, default=None,
                       help="offered load in requests/sec")
    serve.add_argument("--mean-interarrival", type=float, default=None,
                       help="mean seconds between arrivals (alternative to --rate)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--streaming", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="O(1)-memory report with sketched percentiles")
    serve.add_argument("--quantile-error", type=float, default=0.01,
                       help="relative error bound for streaming percentiles")
    serve.add_argument(
        "--dispatch",
        choices=["auto", "vectorized", "heap", "table", "scan"],
        default="auto",
        help="dispatch engine (all byte-identical; vectorized is legal at "
             "any partition width — native k-wide C kernel when a compiler "
             "is present, NumPy speculate-and-verify otherwise)")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="partition the trace across N process-parallel "
                            "shard replicas and merge one fleet report")
    serve.add_argument("--start-method",
                       choices=["fork", "spawn", "forkserver", "inline"],
                       default=None,
                       help="multiprocessing start method for --shards "
                            "(default: fork where available, else spawn; "
                            "inline = no pool, serial reference mode)")
    serve.add_argument("--sweep", action="store_true",
                       help="sweep offered load; report the saturation knee")
    serve.add_argument("--loads", default=None,
                       help="comma-separated offered loads (rps) for --sweep")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="inject a fault schedule: 'chaos' (seeded random) or "
                            "windows like C5:down:0.05:0.1,C3:slow:2.5:0.1:0.3 "
                            "(also clock/dram/drambw/cols — see docs/robustness.md)")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for 'chaos' fault schedules (deterministic)")
    serve.add_argument("--max-retries", type=int, default=3,
                       help="kills a request survives before being shed")
    serve.add_argument("--slo", default=None, metavar="SPEC",
                       help="windowed SLO spec, e.g. 'p99<50ms,avail>0.999,"
                            "shed<0.01': prints a per-window timeline with "
                            "burn-rate alerts (also annotates --sweep points)")
    serve.add_argument("--windows", type=int, default=100, metavar="N",
                       help="telemetry windows the run's horizon is cut into "
                            "for --slo / --monitor-out (default 100)")
    serve.add_argument("--monitor-out", default=None, metavar="PATH",
                       help="write the windowed telemetry series as JSON "
                            "(re-evaluate any spec later with 'obs slo')")
    _add_obs_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser(
        "bench",
        help="statistical repeated-run benchmarks with noise + CI gates",
    )
    bench.add_argument(
        "kind", nargs="?",
        choices=["serving", "sweep", "estimate", "pipeline", "eval"],
        help="experiment kind to repeat (omit with --smoke)",
    )
    bench.add_argument("--smoke", action="store_true",
                       help="run the CI smoke specs (serving + eval) against "
                            "the committed BENCH_*.json baselines")
    bench.add_argument("--repeats", "-n", type=int, default=None, metavar="N",
                       help="seeded repeats (default 5)")
    bench.add_argument("--seed", type=int, default=None,
                       help="root seed; repeat r uses derive_seed(seed, r)")
    bench.add_argument("--noise", default=None, metavar="SPEC",
                       help="seeded noise models, e.g. dram:0.1,thermal:0.2,"
                            "clock:0.05 ('none' disables)")
    bench.add_argument("--confidence", type=float, default=0.95,
                       help="confidence level for t/bootstrap intervals")
    bench.add_argument("--resamples", type=int, default=1000,
                       help="bootstrap resamples per metric")
    bench.add_argument("--trace-rollup", action="store_true",
                       help="add a tracer-span rollup probe per repeat")
    bench.add_argument("--csv-out", default=None, metavar="PATH",
                       help="write per-metric summary rows as CSV")
    bench.add_argument("--json-out", default=None, metavar="PATH",
                       help="write the full result entry as JSON")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="BENCH_*.json trajectory to gate against "
                            "(serving/eval kinds; exit 1 on regression)")
    bench.add_argument("--tolerance", type=float, default=0.05,
                       help="relative tolerance band for baseline gates")
    bench.add_argument("--out-dir", default=".", metavar="DIR",
                       help="artifact directory for --smoke CSV/JSON outputs")
    bench.add_argument("--serving-baseline", default="BENCH_serving.json",
                       metavar="PATH", help="serving baseline for --smoke")
    bench.add_argument("--eval-baseline", default="BENCH_eval.json",
                       metavar="PATH", help="eval baseline for --smoke")
    bench.add_argument("--shapes", default=None,
                       help="comma-separated MxKxN mix (serving/sweep)")
    bench.add_argument("--configs", default=None,
                       help="partition configs (serving/sweep; default C5,C3)")
    bench.add_argument("--requests", type=int, default=None,
                       help="requests per repeat (serving) or per sweep point")
    bench.add_argument("--mean-interarrival", type=float, default=None,
                       help="mean seconds between arrivals (default 0.5e-3)")
    bench.add_argument("--dispatch",
                       choices=["auto", "vectorized", "heap", "table", "scan"],
                       default="auto", help="serving dispatch engine")
    bench.add_argument("--streaming", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="streaming serving report (sketched percentiles)")
    bench.add_argument("--quantile-error", type=float, default=0.01,
                       help="relative error bound for streaming percentiles")
    bench.add_argument("--shards", type=int, default=1, metavar="N",
                       help="process-parallel shard replicas (serving/sweep)")
    bench.add_argument("--start-method",
                       choices=["fork", "spawn", "forkserver", "inline"],
                       default=None, help="multiprocessing start method")
    bench.add_argument("--faults", default=None, metavar="SPEC",
                       help="compose a chaos fault schedule with the noise "
                            "models (serving/sweep; see docs/robustness.md)")
    bench.add_argument("--fault-seed", type=int, default=0,
                       help="seed for 'chaos' fault schedules")
    bench.add_argument("--max-retries", type=int, default=3,
                       help="kills a request survives before being shed")
    bench.add_argument("--fixed-trace", action="store_true",
                       help="pin every repeat to --trace-seed (simulated "
                            "metrics become baseline-comparable constants)")
    bench.add_argument("--trace-seed", type=int, default=7,
                       help="trace seed used with --fixed-trace")
    bench.add_argument("--loads", default=None,
                       help="comma-separated offered loads (rps) for sweep")
    bench.add_argument("--config", default="C5",
                       help="Table II config for the estimate kind")
    bench.add_argument("--workload", default=None,
                       help="MxKxN workload for the estimate kind")
    bench.add_argument("--items", type=int, default=4096,
                       help="items replayed per repeat (pipeline kind)")
    bench.add_argument("--max-aies", type=int, default=48,
                       help="DSE candidate-space bound (eval kind)")
    bench.add_argument("--inner-repeats", type=int, default=3,
                       help="explorations timed per repeat (eval kind)")
    bench.add_argument("--eval-jobs", type=int, default=2,
                       help="worker threads for the eval kind's parallel leg")
    _add_obs_flags(bench)
    bench.set_defaults(func=_cmd_bench)

    obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_sub.add_parser(
        "summary", help="per-track utilization/overlap/bottleneck of a trace"
    )
    obs_summary.add_argument("trace", help="Chrome trace-event JSON file")
    obs_summary.set_defaults(func=_cmd_obs_summary)
    obs_slo = obs_sub.add_parser(
        "slo", help="alert timeline of an exported windowed-telemetry JSON"
    )
    obs_slo.add_argument("file", help="JSON written by 'serve --monitor-out'")
    obs_slo.add_argument("--slo", default=None, metavar="SPEC",
                         help="SLO spec to evaluate (default: the spec "
                              "stored in the file, if any)")
    obs_slo.set_defaults(func=_cmd_obs_slo)
    return parser


def _write_trace_file(path: str) -> None:
    from repro.obs.export import ChromeTraceBuilder, write_chrome_trace

    builder = ChromeTraceBuilder()
    builder.add_spans(GLOBAL_TRACER.spans())
    for source in _PENDING_TRACE_SOURCES:
        if hasattr(source, "window_seconds"):  # a ServingMonitor
            builder.add_monitor(source)
        else:
            builder.add_serving_report(source)
    write_chrome_trace(path, builder.build())
    print(f"wrote {path} ({len(builder)} trace events)", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    from repro.perf import GLOBAL_STATS, get_cache

    # per-invocation counters: successive in-process calls (tests, REPLs)
    # must not accumulate into each other's --stats report; cache entries
    # are kept — only the hit/miss counters restart
    GLOBAL_STATS.reset()
    GLOBAL_METRICS.reset()
    get_cache().reset_counters()
    _PENDING_TRACE_SOURCES.clear()
    args = build_parser().parse_args(argv)
    if args.cache_dir:
        get_cache().load_disk(args.cache_dir)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        GLOBAL_TRACER.enable(clear=True)
    try:
        status = args.func(args)
    finally:
        if trace_out:
            GLOBAL_TRACER.disable()
    if status == 0 and trace_out:
        _write_trace_file(trace_out)
    if status == 0 and args.cache_dir:
        get_cache().save_disk(args.cache_dir)
    cache = get_cache()
    disk = cache.disk_stats()
    GLOBAL_METRICS.counter(
        "repro_cache_hits_total", "Evaluation-cache hits this invocation"
    ).inc(cache.hits)
    GLOBAL_METRICS.counter(
        "repro_cache_misses_total", "Evaluation-cache misses this invocation"
    ).inc(cache.misses)
    GLOBAL_METRICS.counter(
        "repro_cache_disk_loaded_total",
        "Evaluation-cache entries warm-started from disk",
    ).inc(disk["loaded"])
    GLOBAL_METRICS.counter(
        "repro_cache_disk_saved_total",
        "Evaluation-cache entries persisted to disk",
    ).inc(disk["saved"])
    metrics_out = getattr(args, "metrics_out", None)
    if status == 0 and metrics_out:
        with open(metrics_out, "w") as handle:
            handle.write(GLOBAL_METRICS.to_prometheus())
        print(f"wrote {metrics_out}", file=sys.stderr)
    if args.stats:
        print(f"eval stats   {GLOBAL_STATS.total.summary()} "
              f"over {GLOBAL_STATS.batches} batches", file=sys.stderr)
        if GLOBAL_STATS.fault_runs:
            print(f"fault stats  {GLOBAL_STATS.faults.summary()} "
                  f"over {GLOBAL_STATS.fault_runs} runs", file=sys.stderr)
        for table, counters in get_cache().counters().items():
            print(f"cache        {table}: {counters['hits']} hits / "
                  f"{counters['misses']} misses ({counters['entries']} entries)",
                  file=sys.stderr)
        if args.cache_dir:
            print(f"cache disk   {disk['loaded']} loaded / {disk['saved']} saved"
                  + (" (cold start)" if disk["cold_starts"] else ""),
                  file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
