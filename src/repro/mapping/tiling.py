"""Three-level GEMM tiling: DRAM -> PL memory -> AIE memory (Fig. 2).

A workload is padded to a multiple of the configuration's *native size*
(the AIE-level tile).  The PL holds a *PL tile* — an integer multiple
``(am, ak, an)`` of the native size per dimension — which is streamed
native-tile by native-tile into the AIE array.  C partial sums accumulate
in PL across the K dimension, so the canonical loop order is::

    for (m_tile, n_tile) in DRAM tiles of C:
        for k_tile in DRAM tiles of K:
            load A(m_tile, k_tile), B(k_tile, n_tile)   # from DRAM
            stream native tiles through the AIE array    # accumulate C
        write C(m_tile, n_tile)                          # to DRAM

which makes the DRAM traffic:

* A is re-read once per N-direction tile: ``bytes_A * ceil(N / Tn)``
* B is re-read once per M-direction tile: ``bytes_B * ceil(M / Tm)``
* C is written exactly once.

The excess over reading everything once is the *tiling overhead*
(Section IV-A); it is what pushes the Fig. 15 workloads left on the
roofline.  Larger PL tiles reduce it but must fit the usable PL memory,
double-buffered when DRAM-PL double buffering is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.hw.specs import DeviceSpec, VCK5000
from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class TrafficSummary:
    """DRAM traffic of a tile plan, in bytes."""

    read_a: int
    read_b: int
    write_c: int
    minimal: int  # read A and B once, write C once

    @property
    def total(self) -> int:
        return self.read_a + self.read_b + self.write_c

    @property
    def total_reads(self) -> int:
        return self.read_a + self.read_b

    @property
    def tiling_overhead(self) -> float:
        """Ratio of actual to minimal traffic (1.0 = no overhead)."""
        return self.total / self.minimal


@dataclass(frozen=True)
class TilePlan:
    """A complete 3-level tiling decision for one workload."""

    workload: GemmShape
    native: GemmShape
    precision: Precision
    multiples: tuple[int, int, int]  # (am, ak, an): PL tile in native units
    double_buffered: bool = True

    def __post_init__(self) -> None:
        if any(x < 1 for x in self.multiples):
            raise ValueError("PL-tile multiples must be >= 1")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def padded(self) -> GemmShape:
        return self.workload.padded_to(self.native)

    @property
    def pl_tile(self) -> GemmShape:
        am, ak, an = self.multiples
        return self.native.scaled(am, ak, an)

    @property
    def dram_tile_counts(self) -> tuple[int, int, int]:
        return self.padded.tile_counts(self.pl_tile)

    @property
    def num_dram_tiles(self) -> int:
        tm, tk, tn = self.dram_tile_counts
        return tm * tk * tn

    @property
    def pl_tiles_per_dram_tile(self) -> int:
        """Native-size tiles streamed to the AIEs per DRAM tile."""
        am, ak, an = self.multiples
        return am * ak * an

    @property
    def total_native_tiles(self) -> int:
        return self.padded.num_tiles(self.native)

    # ------------------------------------------------------------------
    # PL memory footprint
    # ------------------------------------------------------------------
    def pl_footprint_bytes(self) -> int:
        """PL buffer bytes the plan needs.

        Inputs and the C accumulator are double buffered when DRAM-PL
        double buffering is on (Section IV-A); single buffering halves
        all of them, trading overlap for capacity (Section V-G).
        """
        eb = self.precision.element_bytes
        tile = self.pl_tile
        factor = 2 if self.double_buffered else 1
        inputs = tile.bytes_a(eb) + tile.bytes_b(eb)
        output = tile.bytes_c(eb)
        return factor * (inputs + output)

    def fits(self, device: DeviceSpec = VCK5000, budget_bytes: int | None = None) -> bool:
        """Does the plan fit the usable PL memory?

        ``budget_bytes`` overrides the device default — designs with many
        PLIOs reserve part of the PL memory for per-stream FIFOs (see
        :meth:`repro.mapping.charm.CharmDesign.pl_budget_bytes`).
        """
        budget = device.pl_usable_bytes if budget_bytes is None else budget_bytes
        return self.pl_footprint_bytes() <= budget

    # ------------------------------------------------------------------
    # DRAM traffic
    # ------------------------------------------------------------------
    def traffic(self) -> TrafficSummary:
        eb = self.precision.element_bytes
        padded = self.padded
        tm, tk, tn = self.dram_tile_counts
        return TrafficSummary(
            read_a=padded.bytes_a(eb) * tn,
            read_b=padded.bytes_b(eb) * tm,
            write_c=padded.bytes_c(eb),
            minimal=padded.total_io_bytes(eb),
        )

    def effective_operational_intensity(self) -> float:
        """Ops per DRAM byte *including* tiling overhead (Fig. 15, green)."""
        return self.workload.flops / self.traffic().total

    # ------------------------------------------------------------------
    # Per-DRAM-tile transfer sizes (inputs of the analytical model)
    # ------------------------------------------------------------------
    def dram_tile_bytes(self) -> tuple[int, int, int]:
        """(A, B, C) bytes moved per DRAM-tile iteration.

        C moves only once per (m, n) tile, i.e. every ``tk``-th
        iteration; the analytical model accounts for that via
        :meth:`c_write_fraction`.
        """
        eb = self.precision.element_bytes
        tile = self.pl_tile
        return tile.bytes_a(eb), tile.bytes_b(eb), tile.bytes_c(eb)

    @property
    def c_write_fraction(self) -> float:
        """Fraction of DRAM-tile iterations that write a C tile back."""
        _, tk, _ = self.dram_tile_counts
        return 1.0 / tk


def plan_tiling(
    workload: GemmShape,
    native: GemmShape,
    precision: Precision,
    device: DeviceSpec = VCK5000,
    double_buffered: bool = True,
    objective: Callable[[TilePlan], float] | None = None,
    max_multiple: int = 16,
    budget_bytes: int | None = None,
) -> TilePlan:
    """Choose PL-tile multiples minimising ``objective`` within PL memory.

    The default objective is total DRAM traffic (with tile count as the
    tie-breaker), which is what CHARM's DSE optimises for memory-bound
    workloads.  Raises if even the minimal (1, 1, 1) plan does not fit.
    """
    padded = workload.padded_to(native)
    limits = (
        min(max_multiple, padded.m // native.m),
        min(max_multiple, padded.k // native.k),
        min(max_multiple, padded.n // native.n),
    )
    best: TilePlan | None = None
    best_key: tuple[float, float] | None = None
    for am in range(1, limits[0] + 1):
        for ak in range(1, limits[1] + 1):
            for an in range(1, limits[2] + 1):
                plan = TilePlan(workload, native, precision, (am, ak, an), double_buffered)
                if not plan.fits(device, budget_bytes):
                    continue
                score = objective(plan) if objective else float(plan.traffic().total)
                key = (score, float(plan.num_dram_tiles))
                if best_key is None or key < best_key:
                    best, best_key = plan, key
    if best is None:
        minimal = TilePlan(workload, native, precision, (1, 1, 1), double_buffered)
        budget = device.pl_usable_bytes if budget_bytes is None else budget_bytes
        raise ValueError(
            f"no tile plan fits: native {native} needs "
            f"{minimal.pl_footprint_bytes()} B, budget is {budget} B"
        )
    return best
