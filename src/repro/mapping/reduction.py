"""PL-side reduction of partial results.

Section IV-A: "A reduction outside the cluster must be done in the PL."
Configurations whose ``gk`` exceeds the cascade pack depth (C4, C10,
C11) produce several partial C tiles per output tile; the PL accumulates
them *in-stream* — an adder array sits on the AIE->PL path and folds
each arriving partial into the BRAM-resident accumulator, so the
reduction is pipelined behind the transfer rather than serialized after
it.

The feasibility question is therefore bandwidth, not latency: the adder
array must keep up with the C PLIO arrival rate, and the partials en
route need BRAM staging.  :func:`estimate_pl_reduction` answers both for
any design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import DeviceSpec
from repro.mapping.charm import CharmDesign

#: Parallel accumulator lanes the PL instantiates on the C return path
#: (DSP adders; the VCK5000's ~2000 DSPs make 128 lanes cheap).
ACCUMULATOR_LANES = 128


@dataclass(frozen=True)
class PlReductionEstimate:
    """In-stream reduction requirements for one design."""

    groups: int  # partial results per output tile (gk / pack depth)
    #: elements/s at which partials arrive over the C PLIOs
    arrival_rate: float
    #: elements/s the PL accumulator array can fold
    accumulate_rate: float
    #: BRAM bytes holding the accumulator tile while partials stream
    bram_staging_bytes: int

    @property
    def needs_pl_reduction(self) -> bool:
        return self.groups > 1

    @property
    def keeps_up(self) -> bool:
        """True when the adder array matches the PLIO arrival rate —
        the reduction is then fully hidden behind the transfer."""
        if not self.needs_pl_reduction:
            return True
        return self.accumulate_rate >= self.arrival_rate

    @property
    def utilization(self) -> float:
        """Fraction of the accumulator array's rate the design uses."""
        if not self.needs_pl_reduction:
            return 0.0
        return self.arrival_rate / self.accumulate_rate


def estimate_pl_reduction(
    design: CharmDesign, device: DeviceSpec | None = None
) -> PlReductionEstimate:
    """Model the in-stream PL reduction for a design."""
    dev = device if device is not None else design.device
    grouping = design.config.grouping
    groups = grouping.pl_reduction_groups
    native = design.native_size
    eb = design.precision.element_bytes
    _, _, plios_c = design.config.plio_split()

    # partials arrive over the C PLIO streams; each element folded once
    arrival_rate = plios_c * dev.plio_bandwidth / design.precision.accumulator_bytes
    accumulate_rate = ACCUMULATOR_LANES * dev.pl_freq_hz
    # the accumulator tile stays in BRAM while (groups - 1) partials fold
    staging = native.elements_c() * design.precision.accumulator_bytes
    return PlReductionEstimate(
        groups=groups,
        arrival_rate=arrival_rate if groups > 1 else 0.0,
        accumulate_rate=accumulate_rate,
        bram_staging_bytes=staging if groups > 1 else 0,
    )
