"""Fragmentation/padding analysis — the paper's declared future work.

Section IV-A: *"The trade-offs between different tile sizes and their
effects on fragmentation/padding for DNN workloads are left as future
work."*  This module implements that study.  A workload that is not a
multiple of a configuration's native size is padded; the padded MACs are
executed and thrown away, so large native sizes trade parallelism for
wasted work on real (non-synthetic) shapes.

:class:`FragmentationAnalysis` quantifies, per configuration:

* the padding waste (fraction of executed MACs that are padding),
* the padded-vs-ideal latency penalty,
* and the resulting effective throughput,

so a deployment can pick the native size that balances array utilisation
against fragmentation for its actual DNN shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.analytical_model import AnalyticalModel
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import HardwareConfig, configs_for
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class PaddingReport:
    """Padding cost of one workload on one configuration."""

    config: HardwareConfig
    workload: GemmShape
    padded: GemmShape
    seconds: float

    @property
    def waste_fraction(self) -> float:
        """Fraction of executed MACs spent on padding."""
        return 1.0 - self.workload.macs / self.padded.macs

    @property
    def useful_throughput_ops(self) -> float:
        """Throughput counting only the workload's own FLOPs."""
        return self.workload.flops / self.seconds

    @property
    def padded_dimensions(self) -> tuple[int, int, int]:
        """Elements of padding added per dimension."""
        return (
            self.padded.m - self.workload.m,
            self.padded.k - self.workload.k,
            self.padded.n - self.workload.n,
        )


class FragmentationAnalysis:
    """Padding trade-off study across configurations."""

    def __init__(self, precision: Precision, configs: Sequence[HardwareConfig] | None = None):
        self.precision = precision
        self.configs = tuple(configs) if configs is not None else configs_for(precision)
        self._models = {c.name: AnalyticalModel(CharmDesign(c)) for c in self.configs}

    def report(self, config: HardwareConfig, workload: GemmShape) -> PaddingReport:
        estimate = self._models[config.name].estimate(workload)
        return PaddingReport(
            config=config,
            workload=workload,
            padded=workload.padded_to(config.native_size),
            seconds=estimate.total_seconds,
        )

    def sweep(self, workload: GemmShape) -> list[PaddingReport]:
        """Padding reports for every configuration, largest AIEs first."""
        reports = [self.report(config, workload) for config in self.configs]
        reports.sort(key=lambda r: r.config.num_aies, reverse=True)
        return reports

    def best(self, workload: GemmShape) -> PaddingReport:
        """The configuration with the highest *useful* throughput —
        padding included in the accounting."""
        return max(self.sweep(workload), key=lambda r: r.useful_throughput_ops)

    def waste_matrix(self, workloads: Sequence[GemmShape]) -> dict[str, dict[str, float]]:
        """Waste fraction per (config, workload) — the future-work table."""
        return {
            config.name: {
                str(w): self.report(config, w).waste_fraction for w in workloads
            }
            for config in self.configs
        }
