"""Table II: the multi-AIE hardware configurations C1..C11.

Each configuration fixes a precision, an AIE grouping (which determines
the native size), and a PLIO count.  All configurations use the 32x32x32
(FP32) / 64x64x64 (INT8) kernels chosen in Section V-C, cascade AIE-AIE
links (Section V-D), intrinsic kernels (Section V-B) and the 4r2w DDR
port setup (34 GB/s).

PLIO splits between the A, B and C streams are published only for the
16-AIE designs (Fig. 12: C1 = 2/4/1, C7 = 8/4/2); larger configurations
split the Table II total proportionally to per-invocation stream traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.dram import DramPorts, IMPROVED_PORTS
from repro.kernels.precision import Precision
from repro.mapping.grouping import AieGrouping
from repro.workloads.gemm import GemmShape

#: Kernel sizes Section V-C selects for scalability + overlap.  The
#: INT16 kernel (CHARM 2.0's precision) is chosen by the same rules:
#: the largest double-buffered shape that stays within one AIE's 32 KB
#: (2*(A+B+C) = 32 KB exactly) while keeping >90% compute efficiency.
KERNEL_FP32 = GemmShape(32, 32, 32)
KERNEL_INT8 = GemmShape(64, 64, 64)
KERNEL_INT16 = GemmShape(64, 32, 64)
KERNEL_BY_PRECISION = {
    Precision.FP32: KERNEL_FP32,
    Precision.INT8: KERNEL_INT8,
    Precision.INT16: KERNEL_INT16,
}


@dataclass(frozen=True)
class HardwareConfig:
    """One Table II row."""

    name: str
    grouping: AieGrouping
    num_plios: int
    plio_split_override: tuple[int, int, int] | None = None
    dram_ports: DramPorts = IMPROVED_PORTS

    @property
    def precision(self) -> Precision:
        return self.grouping.precision

    @property
    def num_aies(self) -> int:
        return self.grouping.num_aies

    @property
    def native_size(self) -> GemmShape:
        return self.grouping.native_size

    @property
    def kernel(self) -> GemmShape:
        return self.grouping.kernel

    def plio_split(self) -> tuple[int, int, int]:
        """PLIOs assigned to the A, B and C streams (sums to num_plios)."""
        if self.plio_split_override is not None:
            return self.plio_split_override
        return _proportional_split(self.native_size, self.precision, self.num_plios)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.precision} {self.num_aies} AIEs "
            f"native {self.native_size} plios {self.num_plios}"
        )


def _proportional_split(
    native: GemmShape, precision: Precision, total: int
) -> tuple[int, int, int]:
    """Largest-remainder proportional allocation with a minimum of 1 each."""
    if total < 3:
        raise ValueError("need at least 3 PLIOs (one per stream)")
    eb = precision.element_bytes
    traffic = [native.bytes_a(eb), native.bytes_b(eb), native.bytes_c(eb)]
    weight = sum(traffic)
    raw = [total * t / weight for t in traffic]
    counts = [max(1, int(r)) for r in raw]
    # distribute the remainder to the largest fractional parts
    while sum(counts) < total:
        fractions = [r - c for r, c in zip(raw, counts)]
        counts[fractions.index(max(fractions))] += 1
    while sum(counts) > total:
        candidates = [i for i, c in enumerate(counts) if c > 1]
        fractions = {i: raw[i] - counts[i] for i in candidates}
        counts[min(fractions, key=fractions.get)] -= 1
    return tuple(counts)  # type: ignore[return-value]


def _config(
    name: str,
    precision: Precision,
    gm: int,
    gk: int,
    gn: int,
    num_plios: int,
    split: tuple[int, int, int] | None = None,
) -> HardwareConfig:
    grouping = AieGrouping(gm, gk, gn, KERNEL_BY_PRECISION[precision], precision)
    return HardwareConfig(name, grouping, num_plios, split)


#: Table II, verbatim.  Native sizes are derived from the grouping and
#: asserted against the published column in tests.
ALL_CONFIGS: tuple[HardwareConfig, ...] = (
    _config("C1", Precision.FP32, 1, 4, 4, 7, (2, 4, 1)),
    _config("C2", Precision.FP32, 2, 4, 4, 10),
    _config("C3", Precision.FP32, 4, 4, 4, 20),
    _config("C4", Precision.FP32, 4, 8, 4, 36),
    _config("C5", Precision.FP32, 8, 4, 8, 64),
    _config("C6", Precision.FP32, 12, 4, 8, 96),
    _config("C7", Precision.INT8, 2, 4, 2, 14, (8, 4, 2)),
    _config("C8", Precision.INT8, 2, 4, 4, 20),
    _config("C9", Precision.INT8, 4, 4, 4, 40),
    _config("C10", Precision.INT8, 4, 8, 4, 72),
    _config("C11", Precision.INT8, 4, 8, 8, 112),
)

FP32_CONFIGS = tuple(c for c in ALL_CONFIGS if c.precision is Precision.FP32)
INT8_CONFIGS = tuple(c for c in ALL_CONFIGS if c.precision is Precision.INT8)

#: INT16 extension configurations (CHARM 2.0 adds INT16 support; the
#: paper's Table II covers FP32/INT8 only).  Built with the same
#: grouping rules: packs of 2, kernel 64x32x64.
INT16_CONFIGS: tuple[HardwareConfig, ...] = (
    _config("I1", Precision.INT16, 2, 4, 2, 10),
    _config("I2", Precision.INT16, 4, 4, 4, 28),
    _config("I3", Precision.INT16, 4, 8, 8, 80),
)

_BY_NAME = {c.name.lower(): c for c in ALL_CONFIGS + INT16_CONFIGS}


def config_by_name(name: str) -> HardwareConfig:
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(c.name for c in ALL_CONFIGS)
        raise KeyError(f"unknown config {name!r}; known: {known}") from None


def configs_for(precision: Precision) -> tuple[HardwareConfig, ...]:
    if precision is Precision.INT16:
        return INT16_CONFIGS
    return tuple(c for c in ALL_CONFIGS if c.precision is precision)
