"""Physical placement of a CHARM design onto the AIE array.

Table II's configurations are logical groupings; building one means
assigning every kernel to a physical tile such that

* each cascade pack occupies consecutive tiles along the cascade snake
  (the 384-bit link only connects physical neighbours),
* each pack's head/tail reach a PLIO through the switch network from an
  interface column,
* the per-kernel data memory (double-buffered operand footprint) fits
  the 32 KB tile memory.

The placer below implements CHARM's column-major strategy and reports
what the Fig. 13 utilization axis measures for real: how many design
replicas fit, how long the PLIO feeder routes get, and how congested the
switch links are.  It also realises the Fig. 8 placement flavours
(``near`` / ``far`` / ``random``) for via-switch experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.aie_array import AieArray, Route
from repro.hw.plio import PlioAllocator, PlioDirection, PlioExhaustedError
from repro.hw.specs import DeviceSpec, VCK5000
from repro.mapping.charm import CharmDesign


class PlacementError(RuntimeError):
    """The design cannot be placed on the array."""


@dataclass(frozen=True)
class PlacedPack:
    """One cascade pack mapped to physical tiles."""

    pack_index: int
    tiles: tuple[tuple[int, int], ...]

    @property
    def head(self) -> tuple[int, int]:
        return self.tiles[0]

    @property
    def tail(self) -> tuple[int, int]:
        return self.tiles[-1]

    @property
    def depth(self) -> int:
        return len(self.tiles)


@dataclass
class Placement:
    """A fully placed design replica."""

    design: CharmDesign
    packs: list[PlacedPack]
    feeder_routes: list[Route] = field(default_factory=list)

    @property
    def tiles_used(self) -> int:
        return sum(p.depth for p in self.packs)

    def max_feeder_hops(self) -> int:
        if not self.feeder_routes:
            return 0
        return max(route.hop_count for route in self.feeder_routes)

    def mean_feeder_hops(self) -> float:
        if not self.feeder_routes:
            return 0.0
        return sum(r.hop_count for r in self.feeder_routes) / len(self.feeder_routes)


class CharmPlacer:
    """Places CHARM designs onto an :class:`AieArray`."""

    def __init__(self, device: DeviceSpec = VCK5000):
        self.device = device
        self.array = AieArray(device)
        self.plios = PlioAllocator(device)
        self.placements: list[Placement] = []

    # ------------------------------------------------------------------
    def _cascade_chain(self, start: tuple[int, int], depth: int) -> list[tuple[int, int]]:
        """Consecutive tiles along the cascade snake from ``start``."""
        chain = [start]
        position = start
        while len(chain) < depth:
            tile = self.array.tiles[position]
            successor = tile.cascade_successor()
            if successor is None:
                raise PlacementError("cascade chain ran off the array")
            chain.append(successor)
            position = successor
        return chain

    def _snake_order(self) -> list[tuple[int, int]]:
        """All positions in cascade-snake order (row-major, alternating
        direction), so chains pack without fragmenting the snake."""
        order = []
        for row in range(self.device.aie_rows):
            cols = range(self.device.aie_cols)
            if row % 2 == 1:
                cols = reversed(cols)
            order.extend((col, row) for col in cols)
        return order

    def _find_free_chain(self, depth: int) -> list[tuple[int, int]]:
        for position in self._snake_order():
            if self.array.tiles[position].occupied:
                continue
            try:
                chain = self._cascade_chain(position, depth)
            except PlacementError:
                continue
            if all(not self.array.tiles[p].occupied for p in chain):
                return chain
        raise PlacementError(f"no free cascade chain of depth {depth} left")

    # ------------------------------------------------------------------
    def place(self, design: CharmDesign, name: str | None = None) -> Placement:
        """Place one replica of ``design``; raises when resources run out."""
        design.validate()
        grouping = design.config.grouping
        kernel_bytes = design.kernel.footprint_bytes()
        label = name if name is not None else f"replica{len(self.placements)}"

        packs = []
        placed_positions: list[tuple[int, int]] = []
        try:
            for pack_index in range(grouping.num_packs):
                chain = self._find_free_chain(grouping.pack_depth)
                for j, position in enumerate(chain):
                    self.array.tiles[position].place_kernel(
                        f"{label}-p{pack_index}k{j}", kernel_bytes
                    )
                    placed_positions.append(position)
                packs.append(PlacedPack(pack_index, tuple(chain)))
            plios_a, plios_b, plios_c = design.config.plio_split()
            self.plios.allocate_many(f"{label}-a", PlioDirection.PL_TO_AIE, plios_a)
            self.plios.allocate_many(f"{label}-b", PlioDirection.PL_TO_AIE, plios_b)
            self.plios.allocate_many(f"{label}-c", PlioDirection.AIE_TO_PL, plios_c)
        except (PlacementError, PlioExhaustedError):
            for position in placed_positions:  # roll back partial placement
                tile = self.array.tiles[position]
                tile.kernel = None
                tile.reserved_bytes = 0
            raise

        placement = Placement(design=design, packs=packs)
        self._route_feeders(placement)
        self.placements.append(placement)
        return placement

    def _route_feeders(self, placement: Placement) -> None:
        """Route each pack's input feed from the nearest interface tile
        (row 0 of its column) to the pack head."""
        for pack in placement.packs:
            col, _ = pack.head
            interface = (min(col, self.device.aie_cols - 1), 0)
            placement.feeder_routes.append(self.array.route(interface, pack.head))

    # ------------------------------------------------------------------
    def place_replicas(self, design: CharmDesign, count: int | None = None) -> list[Placement]:
        """Place as many replicas as fit (or exactly ``count``)."""
        placed = []
        while count is None or len(placed) < count:
            try:
                placed.append(self.place(design))
            except (PlacementError, PlioExhaustedError):
                if count is not None:
                    raise
                break
        return placed

    def utilization(self) -> float:
        return self.array.utilization()

    def plio_usage(self) -> int:
        return self.plios.used_total

    def congestion(self) -> int:
        return self.array.max_link_congestion()
