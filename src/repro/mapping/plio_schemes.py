"""PLIO connectivity schemes for a fixed AIE count (Figs. 12 and 13).

Section V-H fixes the design at 16 AIEs and sweeps twelve connectivity
schemes from 3 PLIOs (pure packet switching — Fig. 12(a)) to 36/34 PLIOs
(one circuit-switched tree per AIE — Fig. 12(d)).  Each scheme trades
PLIO usage against transfer parallelism, and — through the device PLIO
budget — against how much of the AIE array the design can occupy when
replicated (the right axis of Fig. 13).

The chunk bookkeeping follows the grouping algebra: for a grouping
``(gm, gk, gn)`` of kernel-sized chunks,

* A has ``gm*gk`` distinct chunks, each reused by ``gn`` AIEs,
* B has ``gk*gn`` distinct chunks, each reused by ``gm`` AIEs,
* C has ``gm*gn`` output chunks (one per cascade pack).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.plio import PlioAllocator
from repro.hw.specs import DeviceSpec, VCK5000
from repro.kernels.kernel_timing import PLIO_BYTES_PER_CYCLE, compute_cycles
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.mapping.configs import HardwareConfig
from repro.mapping.switching import PlioConnection, SwitchingKind


@dataclass(frozen=True)
class PlioScheme:
    """One connectivity scheme: per-matrix PLIO counts and switching kinds."""

    config: HardwareConfig
    conn_a: PlioConnection
    conn_b: PlioConnection
    conn_c: PlioConnection

    @property
    def total_plios(self) -> int:
        return self.conn_a.num_plios + self.conn_b.num_plios + self.conn_c.num_plios

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _chunk_cycles(self, matrix: str) -> float:
        kernel = self.config.kernel
        eb = self.config.precision.element_bytes
        chunk_bytes = {
            "A": kernel.bytes_a(eb),
            "B": kernel.bytes_b(eb),
            "C": kernel.bytes_c(eb),
        }[matrix]
        return chunk_bytes / PLIO_BYTES_PER_CYCLE

    def transfer_cycles(self, matrix: str) -> float:
        """Cycles to deliver one native tile's worth of this matrix."""
        conn = {"A": self.conn_a, "B": self.conn_b, "C": self.conn_c}[matrix]
        return conn.serialization * self._chunk_cycles(matrix)

    def compute_cycles(self, style: KernelStyle = KernelStyle.INTRINSIC) -> float:
        """Per-invocation compute time (all AIEs run their kernel in
        parallel; the cascade chains pipeline within it)."""
        return compute_cycles(self.config.kernel, self.config.precision, style)

    def invocation_cycles(self, style: KernelStyle = KernelStyle.INTRINSIC) -> float:
        """Steady-state cycles per native-tile execution.

        Inputs are double buffered, so the period is the max of compute
        and every stream's transfer time.
        """
        return max(
            self.compute_cycles(style),
            self.transfer_cycles("A"),
            self.transfer_cycles("B"),
            self.transfer_cycles("C"),
        )

    def bottleneck(self, style: KernelStyle = KernelStyle.INTRINSIC) -> str:
        times = {
            "compute": self.compute_cycles(style),
            "A": self.transfer_cycles("A"),
            "B": self.transfer_cycles("B"),
            "C": self.transfer_cycles("C"),
        }
        return max(times, key=times.get)

    # ------------------------------------------------------------------
    # Array utilisation when replicated (Fig. 13, right axis)
    # ------------------------------------------------------------------
    def max_replicas(self, device: DeviceSpec = VCK5000) -> int:
        return PlioAllocator(device).max_replicas(self.total_plios, self.config.num_aies)

    def array_utilization(self, device: DeviceSpec = VCK5000) -> float:
        return PlioAllocator(device).array_utilization(
            self.total_plios, self.config.num_aies
        )


def make_scheme(
    config: HardwareConfig,
    plios_a: int,
    plios_b: int,
    plios_c: int,
    kind_a: SwitchingKind,
    kind_b: SwitchingKind,
    kind_c: SwitchingKind = SwitchingKind.HYBRID,
) -> PlioScheme:
    g = config.grouping
    return PlioScheme(
        config=config,
        conn_a=PlioConnection("A", plios_a, kind_a, g.gm * g.gk, g.gn),
        conn_b=PlioConnection("B", plios_b, kind_b, g.gk * g.gn, g.gm),
        conn_c=PlioConnection("C", plios_c, kind_c, g.gm * g.gn, 1),
    )


def reference_schemes(config: HardwareConfig) -> list[PlioScheme]:
    """The twelve-scheme sweep of Fig. 13 for a 16-AIE configuration.

    The first scheme is Fig. 12(a) (pure packet switching), the last is
    Fig. 12(d) (full circuit switching); Fig. 12(b)/(c) appear at 7 and
    14 PLIOs.
    """
    if config.num_aies != 16:
        raise ValueError("the Fig. 13 sweep is defined for 16-AIE configurations")
    packet, hybrid, circuit = SwitchingKind.PACKET, SwitchingKind.HYBRID, SwitchingKind.CIRCUIT
    if config.precision is Precision.FP32:
        recipe = [
            (1, 1, 1, packet, packet, packet),  # Fig. 12(a): 3 PLIOs
            (1, 2, 1, hybrid, packet, packet),
            (1, 3, 1, hybrid, hybrid, packet),
            (1, 4, 1, hybrid, hybrid, hybrid),
            (2, 4, 1, hybrid, hybrid, hybrid),  # Fig. 12(b): 7 PLIOs
            (2, 5, 2, hybrid, hybrid, hybrid),
            (2, 6, 2, hybrid, hybrid, hybrid),
            (4, 6, 2, hybrid, hybrid, hybrid),
            (4, 8, 2, hybrid, hybrid, hybrid),
            (8, 8, 2, hybrid, hybrid, hybrid),
            (12, 12, 4, hybrid, hybrid, hybrid),
            (16, 16, 4, circuit, circuit, circuit),  # Fig. 12(d): 36 PLIOs
        ]
    else:
        recipe = [
            (1, 1, 1, packet, packet, packet),  # pure packet switching
            (1, 2, 1, hybrid, packet, packet),
            (2, 2, 1, hybrid, hybrid, packet),
            (2, 3, 1, hybrid, hybrid, packet),
            (3, 3, 1, hybrid, hybrid, hybrid),
            (3, 3, 2, hybrid, hybrid, hybrid),
            (4, 4, 2, hybrid, hybrid, hybrid),
            (8, 4, 2, hybrid, hybrid, hybrid),  # Fig. 12(c): 14 PLIOs
            (8, 8, 2, hybrid, hybrid, hybrid),
            (10, 10, 2, hybrid, hybrid, hybrid),
            (12, 12, 4, hybrid, hybrid, hybrid),
            (16, 14, 4, circuit, hybrid, hybrid),  # max-PLIO INT8 scheme: 34
        ]
    return [make_scheme(config, *row) for row in recipe]


def scheme_sweep(config: HardwareConfig) -> list[dict]:
    """Fig. 13 data: one record per scheme, sorted by PLIO count."""
    records = []
    for scheme in reference_schemes(config):
        records.append(
            {
                "plios": scheme.total_plios,
                "cycles": scheme.invocation_cycles(),
                "bottleneck": scheme.bottleneck(),
                "replicas": scheme.max_replicas(),
                "utilization": scheme.array_utilization(),
            }
        )
    records.sort(key=lambda r: r["plios"])
    return records
