"""PLIO switching kinds: packet, circuit, and the hybrid of both.

Section IV-A: a PLIO can feed multiple AIEs either by *packet switching*
(a header routes each transfer to one sink — dynamic, serialising) or by
*circuit switching* (a static multicast tree — broadcast-only, parallel).
Real schemes mix them: e.g. Fig. 12(b) circuit-broadcasts an A chunk to
the AIEs that reuse it while packet-switching across the reduction axis.

The timing consequence is captured by :func:`serialization_factor`: how
many chunk-transfer times one PLIO needs to deliver its share of a
matrix, given the number of distinct chunks and the fanout (AIEs sharing
each chunk).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class SwitchingKind(enum.Enum):
    """How a group of PLIOs reaches its sink AIEs."""

    #: header-routed unicast: every (chunk, sink) pair is a separate
    #: serialized transfer (the minimal 3-PLIO scheme of Fig. 12(a))
    PACKET = "packet"
    #: packet switching between static multicast trees: each distinct
    #: chunk is sent once and circuit-fanned to every sink that reuses it
    HYBRID = "hybrid"
    #: one static multicast tree per PLIO: fully parallel, needs at least
    #: as many PLIOs as distinct chunks (Fig. 12(d))
    CIRCUIT = "circuit"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class PlioConnection:
    """PLIOs assigned to one matrix stream of a design."""

    matrix: str  # "A", "B" or "C"
    num_plios: int
    kind: SwitchingKind
    distinct_chunks: int
    fanout: int  # AIEs consuming each distinct chunk

    def __post_init__(self) -> None:
        if self.num_plios < 1:
            raise ValueError("a stream needs at least one PLIO")
        if self.kind is SwitchingKind.CIRCUIT and self.num_plios < self.distinct_chunks:
            raise ValueError(
                f"circuit switching needs one PLIO per distinct chunk "
                f"({self.distinct_chunks}), got {self.num_plios}"
            )

    @property
    def deliveries(self) -> int:
        """Serialized transfers the whole stream must make per invocation."""
        if self.kind is SwitchingKind.PACKET:
            return self.distinct_chunks * self.fanout
        return self.distinct_chunks

    @property
    def serialization(self) -> int:
        """Chunk-times one PLIO spends per invocation (the time factor)."""
        return serialization_factor(
            self.kind, self.distinct_chunks, self.fanout, self.num_plios
        )


def serialization_factor(
    kind: SwitchingKind, distinct_chunks: int, fanout: int, num_plios: int
) -> int:
    """Sequential chunk transfers per PLIO for one invocation."""
    if num_plios < 1:
        raise ValueError("num_plios must be >= 1")
    if kind is SwitchingKind.PACKET:
        return math.ceil(distinct_chunks * fanout / num_plios)
    if kind is SwitchingKind.CIRCUIT and num_plios < distinct_chunks:
        raise ValueError("circuit switching needs one PLIO per distinct chunk")
    return math.ceil(distinct_chunks / num_plios)
