"""AIE grouping: how kernels combine into packs and what native size results.

Section IV-A / Fig. 3: multiple AIEs are grouped so each runs the base
kernel on a different chunk; the grouping dimensions determine the
*native size* — the smallest workload that runs fully parallel on all
engines.  A grouping ``(gm, gk, gn)`` replicates the kernel ``gm`` times
along M, ``gk`` times along the reduction dimension K (connected by
cascade into packs), and ``gn`` times along N:

    AIEs        = gm * gk * gn
    native size = (gm*Mk) x (gk*Kk) x (gn*Nk)

CHARM chains engines into cascade packs of 4 (FP32) and 2 (INT8); a
``gk`` deeper than the pack requires reducing partial results in the PL.
Every Table II row satisfies this algebra (checked in tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape

#: Cascade pack depth per precision (CHARM: 4 for FP32, 2 for INT8).
_PACK_DEPTH = {Precision.FP32: 4, Precision.INT16: 2, Precision.INT8: 2}

#: CHARM's cluster granularity: reductions beyond one cluster move to PL.
CLUSTER_AIES = 16


def pack_depth_for(precision: Precision) -> int:
    """Cascade-chain length CHARM uses for this precision."""
    return _PACK_DEPTH[precision]


@dataclass(frozen=True)
class AieGrouping:
    """A (gm, gk, gn) arrangement of base kernels."""

    gm: int
    gk: int
    gn: int
    kernel: GemmShape
    precision: Precision

    def __post_init__(self) -> None:
        for name in ("gm", "gk", "gn"):
            if getattr(self, name) < 1:
                raise ValueError(f"grouping factor {name} must be >= 1")

    @property
    def num_aies(self) -> int:
        return self.gm * self.gk * self.gn

    @property
    def native_size(self) -> GemmShape:
        """Smallest workload that keeps every engine busy (Fig. 3)."""
        return GemmShape(
            self.gm * self.kernel.m,
            self.gk * self.kernel.k,
            self.gn * self.kernel.n,
        )

    @property
    def pack_depth(self) -> int:
        """Kernels chained by cascade within one pack."""
        return min(self.gk, pack_depth_for(self.precision))

    @property
    def num_packs(self) -> int:
        """Independent cascade chains in the design."""
        return self.num_aies // self.pack_depth

    @property
    def pl_reduction_groups(self) -> int:
        """Partial-result groups that must be reduced in the PL.

        When ``gk`` exceeds the cascade pack depth, each output tile is
        produced by several packs whose partials are summed in the PL
        (Section IV-A: "a reduction outside the cluster must be done in
        the PL").
        """
        return math.ceil(self.gk / self.pack_depth)

    @property
    def num_clusters(self) -> int:
        return math.ceil(self.num_aies / CLUSTER_AIES)

    def kernel_invocations(self, workload: GemmShape) -> int:
        """Native-size tile executions needed to cover ``workload``
        (after padding)."""
        return workload.num_tiles(self.native_size)

    def __str__(self) -> str:
        return f"{self.gm}x{self.gk}x{self.gn} packs of {self.kernel} ({self.precision})"
