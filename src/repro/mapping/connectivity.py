"""Connectivity-graph generation: the design artifact behind Fig. 4.

CHARM describes its accelerators as AIE graphs — kernels, cascade edges,
and PLIO ports with their switching discipline (Fig. 4 draws the 16-AIE
case).  :class:`ConnectivityGraph` generates that description for any
configuration: the exact artifact one would hand to the AIE compiler,
with counts that must (and here provably do) reconcile with Table II's
PLIO column and the grouping algebra.

Outputs: a typed graph, a text summary, and Graphviz DOT for rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapping.configs import HardwareConfig
from repro.mapping.plio_schemes import make_scheme
from repro.mapping.switching import SwitchingKind


@dataclass(frozen=True)
class KernelNode:
    """One GEMM kernel instance in the graph."""

    name: str
    im: int
    lk: int
    jn: int


@dataclass(frozen=True)
class CascadeEdge:
    """A cascade (partial-sum) connection between two kernels."""

    src: str
    dst: str


@dataclass(frozen=True)
class PlioPortDecl:
    """One PLIO port declaration with its sink/source kernels."""

    name: str
    matrix: str  # "A", "B" (inputs) or "C" (output)
    switching: SwitchingKind
    kernels: tuple[str, ...]

    @property
    def direction(self) -> str:
        return "out" if self.matrix == "C" else "in"


@dataclass
class ConnectivityGraph:
    """The full logical graph of one configuration."""

    config: HardwareConfig
    kernels: list[KernelNode] = field(default_factory=list)
    cascades: list[CascadeEdge] = field(default_factory=list)
    plios: list[PlioPortDecl] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def num_plios(self) -> int:
        return len(self.plios)

    def plios_for(self, matrix: str) -> list[PlioPortDecl]:
        return [p for p in self.plios if p.matrix == matrix]

    def validate(self) -> None:
        """The graph must reconcile with the grouping algebra and Table II."""
        g = self.config.grouping
        if self.num_kernels != g.num_aies:
            raise ValueError("kernel count != AIE count")
        expected_cascades = g.gm * g.gn * (g.gk - 1)
        if len(self.cascades) != expected_cascades:
            raise ValueError("cascade edge count mismatch")
        if self.num_plios != self.config.num_plios:
            raise ValueError("PLIO count != Table II column")
        fed = {k for p in self.plios if p.matrix in "AB" for k in p.kernels}
        if len(fed) != self.num_kernels:
            raise ValueError("some kernels receive no input PLIO")

    # ------------------------------------------------------------------
    def summary(self) -> str:
        g = self.config.grouping
        lines = [
            f"{self.config.name}: {g.num_aies} kernels "
            f"({g.gm}x{g.gk}x{g.gn} grouping, native {self.config.native_size})",
            f"cascade chains: {g.gm * g.gn} packs of depth {g.gk}",
        ]
        for matrix in "ABC":
            ports = self.plios_for(matrix)
            kinds = sorted({str(p.switching) for p in ports})
            lines.append(
                f"matrix {matrix}: {len(ports)} PLIO(s), {'/'.join(kinds)} switching"
            )
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz DOT rendering (kernels, cascades, PLIO fan-out)."""
        lines = [f'digraph "{self.config.name}" {{', "  rankdir=LR;"]
        for kernel in self.kernels:
            lines.append(f'  "{kernel.name}" [shape=box];')
        for plio in self.plios:
            shape = "invhouse" if plio.direction == "in" else "house"
            lines.append(f'  "{plio.name}" [shape={shape}];')
            for kernel in plio.kernels:
                if plio.direction == "in":
                    lines.append(f'  "{plio.name}" -> "{kernel}";')
                else:
                    lines.append(f'  "{kernel}" -> "{plio.name}";')
        for edge in self.cascades:
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [style=bold];')
        lines.append("}")
        return "\n".join(lines)


def _kernel_name(im: int, lk: int, jn: int) -> str:
    return f"k_m{im}_k{lk}_n{jn}"


def build_connectivity(config: HardwareConfig) -> ConnectivityGraph:
    """Generate the logical graph for a Table II-style configuration."""
    g = config.grouping
    graph = ConnectivityGraph(config=config)

    for im in range(g.gm):
        for jn in range(g.gn):
            for lk in range(g.gk):
                graph.kernels.append(KernelNode(_kernel_name(im, lk, jn), im, lk, jn))
            for lk in range(g.gk - 1):
                graph.cascades.append(
                    CascadeEdge(_kernel_name(im, lk, jn), _kernel_name(im, lk + 1, jn))
                )

    plios_a, plios_b, plios_c = config.plio_split()
    hybrid = SwitchingKind.HYBRID
    scheme = make_scheme(config, plios_a, plios_b, plios_c, hybrid, hybrid, hybrid)

    # A chunks (im, lk) fan out across jn; distribute chunks over ports
    a_chunks = [(im, lk) for im in range(g.gm) for lk in range(g.gk)]
    for port in range(plios_a):
        chunks = a_chunks[port::plios_a]
        sinks = tuple(
            _kernel_name(im, lk, jn) for im, lk in chunks for jn in range(g.gn)
        )
        kind = scheme.conn_a.kind if len(chunks) > 1 else SwitchingKind.CIRCUIT
        graph.plios.append(PlioPortDecl(f"plio_a{port}", "A", kind, sinks))

    b_chunks = [(lk, jn) for lk in range(g.gk) for jn in range(g.gn)]
    for port in range(plios_b):
        chunks = b_chunks[port::plios_b]
        sinks = tuple(
            _kernel_name(im, lk, jn) for lk, jn in chunks for im in range(g.gm)
        )
        kind = scheme.conn_b.kind if len(chunks) > 1 else SwitchingKind.CIRCUIT
        graph.plios.append(PlioPortDecl(f"plio_b{port}", "B", kind, sinks))

    # C comes from each pack's tail kernel (lk = gk - 1)
    tails = [
        _kernel_name(im, g.gk - 1, jn) for im in range(g.gm) for jn in range(g.gn)
    ]
    for port in range(plios_c):
        sources = tuple(tails[port::plios_c])
        kind = SwitchingKind.PACKET if len(sources) > 1 else SwitchingKind.CIRCUIT
        graph.plios.append(PlioPortDecl(f"plio_c{port}", "C", kind, sources))

    graph.validate()
    return graph
