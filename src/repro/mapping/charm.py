"""A complete CHARM-style GEMM accelerator design.

Ties together a Table II hardware configuration, a device, the kernel
programming style, the AIE-AIE communication scheme and DRAM-PL
buffering into the single object the analytical model, the simulators
and the experiments consume.  ``validate()`` checks the design against
every hardware budget the paper discusses (AIE count, PLIO budget,
kernel memory feasibility, pack-depth alignment).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hw.dram import DramModel, DramPorts
from repro.hw.interconnect import CommScheme
from repro.hw.specs import DeviceSpec, VCK5000
from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.mapping.configs import HardwareConfig
from repro.mapping.tiling import TilePlan, plan_tiling
from repro.workloads.gemm import GemmShape


class DesignError(ValueError):
    """A design violates a hardware budget."""


@dataclass(frozen=True)
class CharmDesign:
    """A validated, runnable GEMM accelerator design."""

    config: HardwareConfig
    device: DeviceSpec = VCK5000
    kernel_style: KernelStyle = KernelStyle.INTRINSIC
    comm_scheme: CommScheme = CommScheme.CASCADE
    #: DRAM-PL double buffering (Section V-G studies switching this off)
    pl_double_buffered: bool = True
    #: permit kernels that borrow neighbour memory (what-if studies such
    #: as Fig. 14's 64x64x64 FP32 kernel axis; not buildable array-wide)
    allow_neighbor_kernels: bool = False

    # ------------------------------------------------------------------
    @property
    def precision(self) -> Precision:
        return self.config.precision

    @property
    def native_size(self) -> GemmShape:
        return self.config.native_size

    @property
    def kernel(self) -> SingleAieGemmKernel:
        return SingleAieGemmKernel(
            shape=self.config.kernel,
            precision=self.precision,
            style=self.kernel_style,
            double_buffered=True,  # AIE-level double buffering is always on
        )

    @property
    def dram(self) -> DramModel:
        return DramModel(self.device, self.config.dram_ports)

    def peak_ops(self) -> float:
        """Peak throughput of the AIEs this design occupies."""
        return self.device.peak_ops(self.precision, self.config.num_aies)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`DesignError` on any budget violation."""
        if self.config.num_aies > self.device.num_aies:
            raise DesignError(
                f"{self.config.name} needs {self.config.num_aies} AIEs; "
                f"{self.device.name} has {self.device.num_aies}"
            )
        if self.config.num_plios > self.device.usable_plios:
            raise DesignError(
                f"{self.config.name} needs {self.config.num_plios} PLIOs; "
                f"budget is {self.device.usable_plios}"
            )
        plios_a, plios_b, plios_c = self.config.plio_split()
        if plios_a + plios_b > self.device.total_plio_in:
            raise DesignError("input PLIOs exceed the PL->AIE stream count")
        if plios_c > self.device.total_plio_out:
            raise DesignError("output PLIOs exceed the AIE->PL stream count")
        if not self.kernel.is_feasible():
            raise DesignError(
                f"kernel {self.config.kernel} does not fit the AIE memory rules"
            )
        if not self.kernel.is_scalable() and not self.allow_neighbor_kernels:
            raise DesignError(
                f"kernel {self.config.kernel} borrows neighbour memory and "
                "cannot be replicated across the array"
            )
        if self.config.grouping.gk % self.config.grouping.pack_depth != 0:
            raise DesignError("gk must be a multiple of the cascade pack depth")

    def is_valid(self) -> bool:
        try:
            self.validate()
        except DesignError:
            return False
        return True

    # ------------------------------------------------------------------
    def tile_plan(self, workload: GemmShape) -> TilePlan:
        """Choose the DRAM-level tiling for ``workload`` on this design."""
        return plan_tiling(
            workload,
            self.native_size,
            self.precision,
            device=self.device,
            double_buffered=self.pl_double_buffered,
        )

    def with_single_buffering(self) -> "CharmDesign":
        """The Section V-G variant: PL single buffering."""
        return replace(self, pl_double_buffered=False)

    def with_ports(self, ports: DramPorts) -> "CharmDesign":
        """Swap the DRAM port setup (2r1w vs 4r2w studies)."""
        return replace(self, config=replace(self.config, dram_ports=ports))
