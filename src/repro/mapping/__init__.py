"""CHARM-style GEMM mapping: grouping, tiling, PLIO schemes, configurations."""

from repro.mapping.grouping import AieGrouping, pack_depth_for
from repro.mapping.configs import (
    HardwareConfig,
    ALL_CONFIGS,
    FP32_CONFIGS,
    INT8_CONFIGS,
    config_by_name,
    configs_for,
)
from repro.mapping.tiling import TilePlan, plan_tiling, TrafficSummary
from repro.mapping.switching import SwitchingKind, PlioConnection, serialization_factor
from repro.mapping.plio_schemes import PlioScheme, scheme_sweep, reference_schemes
from repro.mapping.charm import CharmDesign

__all__ = [
    "AieGrouping",
    "pack_depth_for",
    "HardwareConfig",
    "ALL_CONFIGS",
    "FP32_CONFIGS",
    "INT8_CONFIGS",
    "config_by_name",
    "configs_for",
    "TilePlan",
    "plan_tiling",
    "TrafficSummary",
    "SwitchingKind",
    "PlioConnection",
    "serialization_factor",
    "PlioScheme",
    "scheme_sweep",
    "reference_schemes",
    "CharmDesign",
]
