"""Host runtime: an XRT-style API over the simulated board.

The paper's Processing System (the Cortex-A72 host) drives the
accelerator through the XRT runtime: open the device, program an
xclbin, allocate buffer objects, launch the kernel, sync results back.
This module mirrors that flow over the simulators, so application code
reads like real Versal host code while the numerics come from
:class:`FunctionalGemm` and the timing from :class:`HwSimulator`:

    device = Device()
    kernel = device.program(design)
    a_bo, b_bo = device.alloc(a), device.alloc(b)
    run = kernel(a_bo, b_bo)
    c = run.result()            # numpy array, verified dataflow
    run.duration_seconds        # simulated wall time
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.specs import DeviceSpec, VCK5000
from repro.mapping.charm import CharmDesign
from repro.sim.functional import FunctionalGemm
from repro.sim.hwsim import HwSimulator
from repro.workloads.gemm import GemmShape


class HostError(RuntimeError):
    """Invalid host-API usage (mirrors XRT's error behaviour)."""


@dataclass
class BufferObject:
    """A device buffer (XRT 'BO'): host-visible numpy + device residency."""

    data: np.ndarray
    synced_to_device: bool = False

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def sync_to_device(self) -> None:
        self.synced_to_device = True

    def sync_from_device(self) -> np.ndarray:
        return self.data


@dataclass
class KernelRun:
    """A completed kernel execution."""

    workload: GemmShape
    duration_seconds: float
    _output: np.ndarray
    verified: bool

    def result(self) -> np.ndarray:
        return self._output

    @property
    def throughput_ops(self) -> float:
        return self.workload.flops / self.duration_seconds


class GemmKernel:
    """A programmed GEMM accelerator (one xclbin's compute unit)."""

    def __init__(self, design: CharmDesign, seed: int = 0):
        self.design = design
        self._functional = FunctionalGemm(design, seed=seed)
        self._simulator = HwSimulator(design)
        self.launches = 0

    def __call__(self, a_bo: BufferObject, b_bo: BufferObject) -> KernelRun:
        """Launch C = A @ B; blocks until the simulated run completes."""
        if not (a_bo.synced_to_device and b_bo.synced_to_device):
            raise HostError("sync buffer objects to the device before launching")
        a, b = a_bo.data, b_bo.data
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise HostError(f"incompatible operand shapes {a.shape} x {b.shape}")
        workload = GemmShape(a.shape[0], a.shape[1], b.shape[1])
        functional = self._functional.run(workload, a, b)
        if not functional.correct:
            raise HostError(
                f"dataflow verification failed (max error {functional.max_abs_error})"
            )
        timing = self._simulator.run(workload)
        self.launches += 1
        reference = a.astype(np.float64) @ b.astype(np.float64)
        out_dtype = np.float32 if a.dtype == np.float32 else np.int64
        return KernelRun(
            workload=workload,
            duration_seconds=timing.total_seconds,
            _output=reference.astype(out_dtype),
            verified=True,
        )


@dataclass
class Device:
    """The opened board (XRT 'device')."""

    spec: DeviceSpec = VCK5000
    _kernels: list[GemmKernel] = field(default_factory=list)

    def program(self, design: CharmDesign, seed: int = 0) -> GemmKernel:
        """Load a design (the xclbin-programming step)."""
        if design.device is not self.spec:
            raise HostError(
                f"design targets {design.device.name}, device is {self.spec.name}"
            )
        design.validate()
        kernel = GemmKernel(design, seed=seed)
        self._kernels.append(kernel)
        return kernel

    def alloc(self, array: np.ndarray) -> BufferObject:
        """Allocate a buffer object and copy the host data in."""
        if array.ndim != 2:
            raise HostError("GEMM buffer objects are 2-D matrices")
        bo = BufferObject(data=np.ascontiguousarray(array))
        bo.sync_to_device()
        return bo

    @property
    def kernels_programmed(self) -> int:
        return len(self._kernels)
