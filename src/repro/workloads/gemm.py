"""GEMM shape algebra.

The paper's notation ``MxKxN`` denotes multiplying an ``M x K`` matrix by a
``K x N`` matrix, producing an ``M x N`` result.  :class:`GemmShape` is the
single value type used throughout the library to describe a GEMM problem or
a tile of one, together with the arithmetic (MACs, FLOPs) and data-volume
(bytes per operand) accounting every model in the library needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class GemmShape:
    """An ``M x K x N`` matrix-multiplication problem.

    Immutable and hashable so it can key caches and appear in test
    parameterisations.  Dimensions must be positive integers.
    """

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        for name in ("m", "k", "n"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"GEMM dimension {name} must be a positive int, got {value!r}")

    # ------------------------------------------------------------------
    # Arithmetic accounting
    # ------------------------------------------------------------------
    @property
    def macs(self) -> int:
        """Multiply-accumulate operations required (M*K*N)."""
        return self.m * self.k * self.n

    @property
    def flops(self) -> int:
        """Floating-point (or integer) operations: 2 per MAC (multiply + add)."""
        return 2 * self.macs

    # ------------------------------------------------------------------
    # Data-volume accounting
    # ------------------------------------------------------------------
    def elements_a(self) -> int:
        return self.m * self.k

    def elements_b(self) -> int:
        return self.k * self.n

    def elements_c(self) -> int:
        return self.m * self.n

    def bytes_a(self, element_bytes: int) -> int:
        return self.elements_a() * element_bytes

    def bytes_b(self, element_bytes: int) -> int:
        return self.elements_b() * element_bytes

    def bytes_c(self, element_bytes: int) -> int:
        return self.elements_c() * element_bytes

    def total_io_bytes(self, element_bytes: int) -> int:
        """Minimum off-chip traffic: read A and B once, write C once."""
        return (
            self.bytes_a(element_bytes)
            + self.bytes_b(element_bytes)
            + self.bytes_c(element_bytes)
        )

    def operational_intensity(self, element_bytes: int) -> float:
        """Ops per byte assuming minimal (untiled) traffic.

        Used as the x coordinate of the roofline plot (Fig. 15, red dots).
        """
        return self.flops / self.total_io_bytes(element_bytes)

    # ------------------------------------------------------------------
    # Shape algebra
    # ------------------------------------------------------------------
    def padded_to(self, unit: "GemmShape") -> "GemmShape":
        """Round each dimension up to a multiple of ``unit``.

        Workloads smaller than (or misaligned with) the native size are
        padded before execution (Section IV-A).
        """
        return GemmShape(
            m=_round_up(self.m, unit.m),
            k=_round_up(self.k, unit.k),
            n=_round_up(self.n, unit.n),
        )

    def tile_counts(self, tile: "GemmShape") -> tuple[int, int, int]:
        """How many ``tile``-sized chunks cover this shape (with padding)."""
        return (
            math.ceil(self.m / tile.m),
            math.ceil(self.k / tile.k),
            math.ceil(self.n / tile.n),
        )

    def num_tiles(self, tile: "GemmShape") -> int:
        tm, tk, tn = self.tile_counts(tile)
        return tm * tk * tn

    def is_multiple_of(self, unit: "GemmShape") -> bool:
        return self.m % unit.m == 0 and self.k % unit.k == 0 and self.n % unit.n == 0

    def scaled(self, sm: int, sk: int, sn: int) -> "GemmShape":
        """Multiply each dimension by an integer factor."""
        return GemmShape(self.m * sm, self.k * sk, self.n * sn)

    def padding_waste(self, unit: "GemmShape") -> float:
        """Fraction of MACs wasted on padding when rounded to ``unit``."""
        padded = self.padded_to(unit)
        return 1.0 - self.macs / padded.macs

    @property
    def is_square(self) -> bool:
        return self.m == self.k == self.n

    def aspect(self) -> str:
        """Coarse shape classification used in the single-AIE sweeps.

        Returns one of ``square``, ``tall`` (M dominates), ``fat``
        (K dominates) or ``skinny`` (N dominates); ties resolve in that
        order.
        """
        if self.is_square:
            return "square"
        largest = max(self.m, self.k, self.n)
        if largest == self.m:
            return "tall"
        if largest == self.k:
            return "fat"
        return "skinny"

    def __str__(self) -> str:  # matches the paper's MxKxN notation
        return f"{self.m}x{self.k}x{self.n}"

    @classmethod
    def parse(cls, text: str) -> "GemmShape":
        """Parse the paper's ``MxKxN`` notation, e.g. ``"32x128x32"``."""
        parts = text.lower().split("x")
        if len(parts) != 3:
            raise ValueError(f"expected MxKxN, got {text!r}")
        m, k, n = (int(p) for p in parts)
        return cls(m, k, n)

    @classmethod
    def square(cls, size: int) -> "GemmShape":
        return cls(size, size, size)


def _round_up(value: int, unit: int) -> int:
    return ((value + unit - 1) // unit) * unit
