"""Synthetic workload generators.

Section IV-A: "Our synthetic workload sizes are also influenced by the tile
size (workload dimensions are integer multiples of the tile size), since our
goal is to evaluate the highest compute throughput achievable" — i.e. sweeps
are built from native-size multiples to avoid fragmentation/padding.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.workloads.gemm import GemmShape


def square_sweep(sizes: Sequence[int]) -> list[GemmShape]:
    """Square (symmetric) GEMM shapes for the given edge sizes."""
    return [GemmShape.square(size) for size in sizes]


def shape_sweep(
    m_values: Sequence[int],
    k_values: Sequence[int],
    n_values: Sequence[int],
) -> Iterator[GemmShape]:
    """Cartesian sweep over per-dimension values (fat/skinny/tall shapes)."""
    for m in m_values:
        for k in k_values:
            for n in n_values:
                yield GemmShape(m, k, n)


def native_multiples(native: GemmShape, factors: Sequence[int]) -> list[GemmShape]:
    """Scale a native size by integer factors along all three dimensions.

    This is how the paper constructs fragmentation-free synthetic
    workloads for a given hardware configuration.
    """
    return [native.scaled(f, f, f) for f in factors]


def single_aie_sweep(max_elements: int, base: int = 16) -> list[GemmShape]:
    """Shapes for the single-AIE kernel study (Figs. 6 and 7).

    Generates square and asymmetric shapes with power-of-two dimensions
    starting at ``base``, keeping every operand within ``max_elements``
    elements (the per-matrix AIE memory constraint, including neighbour
    memory).  Mirrors the paper's mix of square, fat and skinny kernels.
    """
    if max_elements <= 0:
        raise ValueError("max_elements must be positive")
    dims = []
    d = base
    while d * base <= max_elements:
        dims.append(d)
        d *= 2
    shapes: set[GemmShape] = set()
    for m in dims:
        for k in dims:
            for n in dims:
                shape = GemmShape(m, k, n)
                largest_operand = max(
                    shape.elements_a(), shape.elements_b(), shape.elements_c()
                )
                if largest_operand <= max_elements:
                    shapes.add(shape)
    return sorted(shapes, key=lambda s: (s.macs, s.m, s.k, s.n))
