"""Convolution workloads lowered to GEMM (im2col).

The Versal literature the paper builds on covers CNNs as well as
transformers (CHARM's DNN suite, Perryman et al.'s edge CNNs); on a GEMM
accelerator a convolution runs as an im2col-lowered matrix multiply:

    M = output_height * output_width   (per image)
    K = kernel_h * kernel_w * in_channels
    N = out_channels

This module describes conv layers, lowers them, and provides a small
ResNet-style layer zoo so CNN inference can flow through the same
estimators as the transformer workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class ConvLayer:
    """One 2-D convolution layer."""

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    input_size: int  # square feature map
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if self.output_size < 1:
            raise ValueError(f"{self.name}: kernel/stride do not fit the input")

    @property
    def output_size(self) -> int:
        return (self.input_size + 2 * self.padding - self.kernel) // self.stride + 1

    def im2col_shape(self, batch: int = 1) -> GemmShape:
        """The GEMM this convolution lowers to."""
        if batch < 1:
            raise ValueError("batch must be positive")
        m = batch * self.output_size * self.output_size
        k = self.kernel * self.kernel * self.in_channels
        return GemmShape(m, k, self.out_channels)

    def macs(self, batch: int = 1) -> int:
        return self.im2col_shape(batch).macs

    def im2col_expansion(self) -> float:
        """Input-data replication factor of the lowering (reads amplified
        by the kernel window overlap)."""
        lowered = self.output_size**2 * self.kernel**2 * self.in_channels
        original = self.input_size**2 * self.in_channels
        return lowered / original


#: A ResNet-50-style layer sample (the distinct conv shapes of one
#: bottleneck stage per resolution), 224x224 input.
RESNET50_LAYERS: tuple[ConvLayer, ...] = (
    ConvLayer("conv1", 3, 64, 7, 224, stride=2, padding=3),
    ConvLayer("stage1_1x1a", 64, 64, 1, 56),
    ConvLayer("stage1_3x3", 64, 64, 3, 56, padding=1),
    ConvLayer("stage1_1x1b", 64, 256, 1, 56),
    ConvLayer("stage2_3x3", 128, 128, 3, 28, padding=1),
    ConvLayer("stage3_3x3", 256, 256, 3, 14, padding=1),
    ConvLayer("stage4_3x3", 512, 512, 3, 7, padding=1),
)


def layer_by_name(name: str) -> ConvLayer:
    for layer in RESNET50_LAYERS:
        if layer.name == name:
            return layer
    known = ", ".join(l.name for l in RESNET50_LAYERS)
    raise KeyError(f"unknown conv layer {name!r}; known: {known}")
