"""Real-world DNN GEMM workloads (Table III of the paper).

The paper selects GEMM layers from BERT, ViT and three Llama2 variants to
show that production shapes are tall/fat/skinny rather than square, and
analyses them in Fig. 14 (bottleneck sensitivity) and Fig. 15 (roofline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class DnnWorkload:
    """A named GEMM extracted from a production DNN."""

    workload_id: str
    network: str
    shape: GemmShape

    def __str__(self) -> str:
        return f"{self.workload_id} ({self.network}, {self.shape})"


#: Table III — Selected GEMM workloads from popular DNNs.
DNN_WORKLOADS: tuple[DnnWorkload, ...] = (
    DnnWorkload("B1", "BERT", GemmShape(3072, 4096, 1024)),
    DnnWorkload("V1", "ViT", GemmShape(3072, 1024, 4096)),
    DnnWorkload("L1", "Llama2-13B", GemmShape(13824, 5120, 4096)),
    DnnWorkload("L2", "Llama2-34B", GemmShape(6656, 20480, 4096)),
    DnnWorkload("L3", "Llama2-34B", GemmShape(8192, 128, 3584)),
    DnnWorkload("L4", "Llama2-70B", GemmShape(4000, 256, 8192)),
)

_BY_ID = {w.workload_id: w for w in DNN_WORKLOADS}


def workload_by_id(workload_id: str) -> DnnWorkload:
    """Look up a Table III workload by its ID (``B1``, ``V1``, ``L1``..``L4``)."""
    try:
        return _BY_ID[workload_id.upper()]
    except KeyError:
        known = ", ".join(sorted(_BY_ID))
        raise KeyError(f"unknown workload id {workload_id!r}; known ids: {known}") from None
