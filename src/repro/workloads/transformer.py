"""Transformer architectures and the GEMMs they generate.

Table III samples individual GEMMs out of BERT/ViT/Llama2; this module
provides the generator behind such tables: describe an architecture once
and enumerate every weight GEMM of a forward pass for a given number of
tokens.  GEMM shapes follow the activation-stationary convention
``tokens x in_features x out_features`` (M x K x N).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class LayerGemm:
    """One weight GEMM inside a transformer layer."""

    name: str
    shape: GemmShape
    #: how many times the GEMM runs in a full forward pass
    count: int = 1

    @property
    def total_flops(self) -> int:
        return self.count * self.shape.flops


@dataclass(frozen=True)
class TransformerConfig:
    """Minimal architecture description of a decoder/encoder stack."""

    name: str
    hidden: int
    intermediate: int
    num_layers: int
    num_heads: int
    #: separate Q/K/V projections (True) or one merged QKV GEMM (False)
    separate_qkv: bool = True

    def layer_gemms(self, tokens: int) -> list[LayerGemm]:
        """The weight GEMMs of one transformer layer for ``tokens``."""
        if tokens < 1:
            raise ValueError("tokens must be positive")
        gemms = []
        if self.separate_qkv:
            for proj in ("q_proj", "k_proj", "v_proj"):
                gemms.append(LayerGemm(proj, GemmShape(tokens, self.hidden, self.hidden)))
        else:
            gemms.append(
                LayerGemm("qkv_proj", GemmShape(tokens, self.hidden, 3 * self.hidden))
            )
        gemms.append(LayerGemm("attn_out", GemmShape(tokens, self.hidden, self.hidden)))
        gemms.append(LayerGemm("mlp_up", GemmShape(tokens, self.hidden, self.intermediate)))
        gemms.append(LayerGemm("mlp_down", GemmShape(tokens, self.intermediate, self.hidden)))
        return gemms

    def attention_gemms(self, tokens: int) -> list[LayerGemm]:
        """The per-head attention GEMMs of one layer (activation-by-
        activation, no weights): the score matrix ``Q K^T`` and the
        value aggregation ``P V``.  Small, repeated ``num_heads`` times —
        the textbook batched-GEMM case."""
        if tokens < 1:
            raise ValueError("tokens must be positive")
        return [
            LayerGemm(
                "attn_scores",
                GemmShape(tokens, self.head_dim, tokens),
                count=self.num_heads,
            ),
            LayerGemm(
                "attn_values",
                GemmShape(tokens, tokens, self.head_dim),
                count=self.num_heads,
            ),
        ]

    def forward_gemms(self, tokens: int, include_attention: bool = False) -> list[LayerGemm]:
        """All GEMMs of a full forward pass (layers collapsed into
        per-GEMM counts, since every layer repeats the same shapes).

        ``include_attention`` adds the per-head score/value GEMMs; the
        default matches Table III's weight-GEMM-only accounting.
        """
        gemms = [
            LayerGemm(g.name, g.shape, count=self.num_layers)
            for g in self.layer_gemms(tokens)
        ]
        if include_attention:
            gemms.extend(
                LayerGemm(g.name, g.shape, count=g.count * self.num_layers)
                for g in self.attention_gemms(tokens)
            )
        return gemms

    def forward_flops(self, tokens: int, include_attention: bool = False) -> int:
        return sum(
            g.total_flops for g in self.forward_gemms(tokens, include_attention)
        )

    def decode_gemms(self, batch: int = 1) -> list[LayerGemm]:
        """Auto-regressive decode: one token per sequence, so every
        weight GEMM degenerates to M = batch (a GEMV for batch 1).

        These shapes are brutal for a native-size architecture: M pads
        up to the configuration's native M, so single-request decode can
        waste >99% of the array — the fragmentation question at its
        sharpest.
        """
        if batch < 1:
            raise ValueError("batch must be positive")
        return [
            LayerGemm(g.name, GemmShape(batch, g.shape.k, g.shape.n), count=g.count)
            for g in self.layer_gemms(tokens=1)
        ]

    @property
    def head_dim(self) -> int:
        return self.hidden // self.num_heads


#: Architectures behind the paper's Table III workloads.
BERT_LARGE = TransformerConfig("BERT-large", 1024, 4096, 24, 16)
VIT_LARGE = TransformerConfig("ViT-L", 1024, 4096, 24, 16)
LLAMA2_7B = TransformerConfig("Llama2-7B", 4096, 11008, 32, 32)
LLAMA2_13B = TransformerConfig("Llama2-13B", 5120, 13824, 40, 40)
LLAMA2_70B = TransformerConfig("Llama2-70B", 8192, 28672, 80, 64)

MODEL_ZOO: tuple[TransformerConfig, ...] = (
    BERT_LARGE,
    VIT_LARGE,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
)


def model_by_name(name: str) -> TransformerConfig:
    for model in MODEL_ZOO:
        if model.name.lower() == name.lower():
            return model
    known = ", ".join(m.name for m in MODEL_ZOO)
    raise KeyError(f"unknown model {name!r}; known: {known}")
