"""Workload definitions: GEMM shape algebra, DNN shapes, synthetic sweeps."""

from repro.workloads.gemm import GemmShape
from repro.workloads.dnn import DNN_WORKLOADS, DnnWorkload, workload_by_id
from repro.workloads.synthetic import (
    square_sweep,
    shape_sweep,
    native_multiples,
    single_aie_sweep,
)

__all__ = [
    "GemmShape",
    "DNN_WORKLOADS",
    "DnnWorkload",
    "workload_by_id",
    "square_sweep",
    "shape_sweep",
    "native_multiples",
    "single_aie_sweep",
]
