"""Sparse matrix multiplication (SpMM) workloads.

H-GCN [18] runs sparse matrix multiplication on the AIE array; graph
workloads make the dense-vs-sparse execution choice interesting on
Versal because the vector datapath only earns its 8-128 MACs/cycle on
dense, regular access.  This module models both options for an
``M x K @ K x N`` product with a sparse left operand:

* **dense execution** — ignore sparsity, run the ordinary GEMM: full
  MAC count, full A traffic, perfect vector efficiency;
* **sparse execution** — compute only the nnz terms, but through a
  gather-based kernel whose vector efficiency is derated, with CSR
  storage (value + column index per nnz) for A.

The crossover density — below which sparse execution wins — falls out
of the model and is exposed for study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.gemm import GemmShape

#: Fraction of peak MACs/cycle a gather-based sparse kernel sustains on
#: the AIE vector unit (irregular access defeats the 2-D register reuse).
SPARSE_VECTOR_EFFICIENCY = 0.25
#: CSR index overhead per nonzero, bytes (32-bit column index).
INDEX_BYTES = 4


@dataclass(frozen=True)
class SpmmWorkload:
    """A sparse-dense matrix product: sparse A (density d) times dense B."""

    shape: GemmShape
    density: float

    def __post_init__(self) -> None:
        if not 0.0 < self.density <= 1.0:
            raise ValueError("density must be in (0, 1]")

    @property
    def nnz(self) -> int:
        return round(self.shape.elements_a() * self.density)

    @property
    def useful_macs(self) -> int:
        """MACs that touch a nonzero of A."""
        return self.nnz * self.shape.n

    @property
    def useful_flops(self) -> int:
        return 2 * self.useful_macs

    def csr_bytes(self, element_bytes: int) -> int:
        """A in CSR: values + column indices + row pointers."""
        return (
            self.nnz * (element_bytes + INDEX_BYTES)
            + (self.shape.m + 1) * INDEX_BYTES
        )


@dataclass(frozen=True)
class SpmmComparison:
    """Dense-as-GEMM vs gather-based sparse execution of one workload."""

    workload: SpmmWorkload
    dense_seconds: float
    sparse_seconds: float

    @property
    def sparse_wins(self) -> bool:
        return self.sparse_seconds < self.dense_seconds

    @property
    def speedup(self) -> float:
        """Sparse speedup over dense (>1 means sparse wins)."""
        return self.dense_seconds / self.sparse_seconds


class SpmmEstimator:
    """Estimates both execution strategies on a design."""

    def __init__(self, design):
        from repro.core.analytical_model import AnalyticalModel

        self.design = design
        self._model = AnalyticalModel(design)

    def compare(self, workload: SpmmWorkload) -> SpmmComparison:
        dense = self._model.estimate(workload.shape).total_seconds

        # sparse: compute scales with nnz at derated vector efficiency;
        # traffic swaps A's dense bytes for CSR bytes (B and C unchanged)
        device = self.design.device
        precision = self.design.precision
        eb = precision.element_bytes
        peak = (
            device.macs_per_cycle[precision]
            * device.aie_freq_hz
            * self.design.config.num_aies
        )
        compute = workload.useful_macs / (peak * SPARSE_VECTOR_EFFICIENCY)
        dram = self.design.dram
        traffic = (
            workload.csr_bytes(eb)
            + workload.shape.bytes_b(eb)
            + workload.shape.bytes_c(eb)
        )
        transfer = dram.transfer_seconds(traffic, dram.total_bandwidth())
        sparse = max(compute, transfer) + device.aie_setup_seconds
        return SpmmComparison(
            workload=workload, dense_seconds=dense, sparse_seconds=sparse
        )

    def crossover_density(
        self, shape: GemmShape, low: float = 0.001, high: float = 1.0
    ) -> float:
        """Density below which sparse execution wins, by bisection."""
        if not self.compare(SpmmWorkload(shape, low)).sparse_wins:
            return low
        if self.compare(SpmmWorkload(shape, high)).sparse_wins:
            return high
        for _ in range(40):
            mid = (low + high) / 2
            if self.compare(SpmmWorkload(shape, mid)).sparse_wins:
                low = mid
            else:
                high = mid
        return (low + high) / 2
