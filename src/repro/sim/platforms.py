"""Execution platforms (Table I) and a uniform run dispatcher.

AMD's flow offers four execution platforms plus the analytical model;
each trades speed for fidelity/scope.  Our stand-ins keep the same
interface so experiments can say "run this on <platform>":

=============  =========================  =====  ===========
Platform       Simulation target          Speed  Use case
=============  =========================  =====  ===========
aiesimulator   AIE + AIE<->PL streams     fast   FV + perf
sw_emu         PL + AIE + host            fast   FV only
hw_emu         PL + AIE + host            slow   FV + perf
hw             PL + AIE + host            fast   FV + perf
analytical     PL + AIE + host            fast   perf only
=============  =========================  =====  ===========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical_model import AnalyticalModel
from repro.mapping.charm import CharmDesign
from repro.sim.aiesim import simulate_graph
from repro.mapping.plio_schemes import make_scheme
from repro.mapping.switching import SwitchingKind
from repro.sim.functional import FunctionalGemm
from repro.sim.hwsim import HwSimulator
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class Platform:
    """One Table I row."""

    name: str
    simulation_target: str
    fast: bool
    functional_verification: bool
    performance: bool

    @property
    def usecase(self) -> str:
        parts = []
        if self.functional_verification:
            parts.append("FV")
        if self.performance:
            parts.append("P")
        return "+".join(parts)


PLATFORMS: tuple[Platform, ...] = (
    Platform("aiesimulator", "AIE + AIE<->PL", True, True, True),
    Platform("sw_emu", "PL + AIE + Host", True, True, False),
    Platform("hw_emu", "PL + AIE + Host", False, True, True),
    Platform("hw", "PL + AIE + Host", True, True, True),
    Platform("analytical", "PL + AIE + Host", True, False, True),
)

_BY_NAME = {p.name: p for p in PLATFORMS}


def platform_by_name(name: str) -> Platform:
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown platform {name!r}; known: {known}") from None


@dataclass(frozen=True)
class PlatformRunResult:
    """Uniform result of running a workload on any platform."""

    platform: Platform
    workload: GemmShape
    seconds: float | None  # None when the platform reports no performance
    functionally_verified: bool


def run_on_platform(
    platform_name: str,
    design: CharmDesign,
    workload: GemmShape,
    verify_shape: GemmShape | None = None,
) -> PlatformRunResult:
    """Run ``workload`` on the named platform.

    Functional platforms verify numerics on ``verify_shape`` (defaults to
    one native tile — full-size functional runs are as slow here as
    hw_emu is on the real flow).
    """
    platform = platform_by_name(platform_name)
    if verify_shape is None:
        verify_shape = design.native_size

    verified = False
    if platform.functional_verification:
        result = FunctionalGemm(design).run(verify_shape)
        if not result.correct:
            raise AssertionError(
                f"functional verification failed on {platform.name}: "
                f"max error {result.max_abs_error}"
            )
        verified = True

    seconds: float | None = None
    if platform.performance:
        if platform.name == "aiesimulator":
            seconds = _aiesim_seconds(design, workload)
        elif platform.name == "analytical":
            seconds = AnalyticalModel(design).estimate(workload).total_seconds
        else:  # hw, hw_emu
            seconds = HwSimulator(design).run(workload).total_seconds
    return PlatformRunResult(
        platform=platform,
        workload=workload,
        seconds=seconds,
        functionally_verified=verified,
    )


def _aiesim_seconds(design: CharmDesign, workload: GemmShape) -> float:
    """aiesimulator scope: AIE graph + PL<->AIE streams, no DRAM.

    Simulates the native-tile stream using the design's PLIO split as a
    hybrid-switched scheme.
    """
    plios_a, plios_b, plios_c = design.config.plio_split()
    hybrid = SwitchingKind.HYBRID
    scheme = make_scheme(design.config, plios_a, plios_b, plios_c, hybrid, hybrid, hybrid)
    invocations = workload.num_tiles(design.native_size)
    report = simulate_graph(scheme, invocations=invocations, device=design.device)
    return report.seconds(design.device)
