"""Optional C acceleration for the vectorized dispatch engine.

Two pieces of the fault-free fast path are irreducibly sequential —
per-element decision chains NumPy cannot express — and in CPython they
cost two orders of magnitude more than the arithmetic they perform:

* the θ-walk guesser in :mod:`repro.sim.dispatch_batch`, and
* the exact earliest-finish recurrence itself (each admission updates
  the free time the next admission reads).

This module compiles both as a few dozen lines of C once per process
(system ``cc``, a temp directory, no build system) and exposes them
through :data:`theta_walk` and :data:`dispatch_exact`.

``dispatch_exact`` mirrors the scan loop bit for bit — same
``arrival if arrival > free else free`` start rule, same strict
first-minimum winner over the ``(width, classes)`` service matrix,
same fault-segment ``limit`` / per-accelerator next-down cut
conditions as ``_corrected_step_k`` — so the NumPy speculate-and-verify
engine becomes the fallback rather than the hot path when a compiler
is present.  Width 1 and 2 keep fully unrolled kernels (the paper's
C5+C3-style partitions); every wider fleet goes through the k-wide
kernel, which scans the lanes with the same strict-less winner rule at
any width.  ``inf`` service entries (infeasible accelerator/class
pairs) are safe in all three kernels: an infinite candidate finish can
never win a strict-less comparison, and the next-down check only ever
tests the winner.  Plain ``-O2`` keeps IEEE semantics (no
``-ffast-math``, no FMA contraction opportunities in pure add/compare
code), and a self-check against a Python reference guards the build
before it is trusted.  Any failure (no ``cc``, sandboxed filesystem,
self-check mismatch) leaves both exports ``None`` and the pure-Python
paths take over.  Set ``REPRO_NO_NATIVE=1`` to force that fallback
explicitly (CI exercises it so the Python paths stay covered).
"""

from __future__ import annotations

import ctypes
import logging
import math
import os
import shutil
import subprocess
import tempfile

import numpy as np

_LOG = logging.getLogger("repro.sim.native")

_SOURCE = r"""
#include <stdint.h>

int64_t repro_theta_walk(const double *u, const double *v, int64_t n,
                         double theta, uint8_t *out)
{
    int64_t picks = 0;
    for (int64_t j = 0; j < n; ++j) {
        if (u[j] > theta) {
            out[j] = 1;
            theta += v[j];
            ++picks;
        } else {
            out[j] = 0;
        }
    }
    return picks;
}

int64_t repro_dispatch_pair(const double *arrivals, const int64_t *cids,
                            const double *svc0, const double *svc1,
                            int64_t n, double limit, double nd0, double nd1,
                            double *state, uint8_t *acc,
                            double *start, double *fin)
{
    double f0 = state[0];
    double f1 = state[1];
    int64_t j = 0;
    for (; j < n; ++j) {
        double a = arrivals[j];
        int64_t c = cids[j];
        double st0 = a > f0 ? a : f0;
        double st1 = a > f1 ? a : f1;
        if (st0 >= limit || st1 >= limit)
            break;
        double e0 = st0 + svc0[c];
        double e1 = st1 + svc1[c];
        if (e1 < e0) {
            if (e1 > nd1)
                break;
            f1 = e1;
            acc[j] = 1;
            start[j] = st1;
            fin[j] = e1;
        } else {
            if (e0 > nd0)
                break;
            f0 = e0;
            acc[j] = 0;
            start[j] = st0;
            fin[j] = e0;
        }
    }
    state[0] = f0;
    state[1] = f1;
    return j;
}

int64_t repro_dispatch_single(const double *arrivals, const int64_t *cids,
                              const double *svc0,
                              int64_t n, double limit, double nd0,
                              double *state, uint8_t *acc,
                              double *start, double *fin)
{
    double f0 = state[0];
    int64_t j = 0;
    for (; j < n; ++j) {
        double a = arrivals[j];
        double st0 = a > f0 ? a : f0;
        if (st0 >= limit)
            break;
        double e0 = st0 + svc0[cids[j]];
        if (e0 > nd0)
            break;
        f0 = e0;
        acc[j] = 0;
        start[j] = st0;
        fin[j] = e0;
    }
    state[0] = f0;
    return j;
}

/* The k-wide exact loop: svc is the row-major (k, classes) service
 * matrix, nd the per-accelerator next-down array.  Winner = first
 * strict minimum finish in lane order (np.argmin semantics); any lane
 * whose start reaches `limit` cuts the segment before a commit. */
int64_t repro_dispatch_k(const double *arrivals, const int64_t *cids,
                         const double *svc, int64_t k, int64_t classes,
                         int64_t n, double limit, const double *nd,
                         double *state, int64_t *acc,
                         double *start, double *fin)
{
    int64_t j = 0;
    for (; j < n; ++j) {
        double a = arrivals[j];
        int64_t c = cids[j];
        int64_t best = 0;
        double best_st = 0.0;
        double best_e = 0.0;
        int cut = 0;
        for (int64_t i = 0; i < k; ++i) {
            double f = state[i];
            double st = a > f ? a : f;
            if (st >= limit) {
                cut = 1;
                break;
            }
            double e = st + svc[i * classes + c];
            if (i == 0 || e < best_e) {
                best = i;
                best_st = st;
                best_e = e;
            }
        }
        if (cut || best_e > nd[best])
            break;
        state[best] = best_e;
        acc[j] = best;
        start[j] = best_st;
        fin[j] = best_e;
    }
    return j;
}
"""

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_INT64_P = ctypes.POINTER(ctypes.c_int64)
_UINT8_P = ctypes.POINTER(ctypes.c_uint8)


def _reference_walk(u, v, theta):
    out = []
    for j, value in enumerate(u):
        if value > theta:
            out.append(1)
            theta += v[j]
        else:
            out.append(0)
    return out


def _reference_dispatch(arrivals, cids, rows, state, limit, nds):
    """Pure-Python mirror of the scan/``_corrected_step_k`` loop."""
    out = []
    for a, c in zip(arrivals, cids):
        starts = [a if a > f else f for f in state]
        if any(st >= limit for st in starts):
            break
        fins = [st + row[c] for st, row in zip(starts, rows)]
        best = 0
        for i in range(1, len(fins)):
            if fins[i] < fins[best]:
                best = i
        if fins[best] > nds[best]:
            break
        state[best] = fins[best]
        out.append((best, starts[best], fins[best]))
    return out


def _check_dispatch(pair, single, kwide):
    inf = float("inf")
    arrivals = [0.0, 0.1, 0.15, 0.2, 1.0, 1.05, 1.5, 2.0]
    cids = [0, 1, 0, 1, 0, 0, 1, 1]
    # four lanes, one infeasible (inf) entry: the k-wide kernel must
    # never let an infinite candidate win a strict-less comparison
    rows = [[0.3, 0.5], [0.4, 0.5], [0.35, inf], [0.25, 0.45]]
    cases = [
        (2, inf, (inf, inf)),
        (2, 1.2, (inf, inf)),
        (2, inf, (1.4, inf)),
        (2, inf, (inf, 0.6)),
        (1, inf, (inf,)),
        (1, 0.9, (0.7,)),
        (3, inf, (inf, inf, inf)),
        (3, 1.3, (inf, inf, inf)),
        (3, inf, (inf, 0.8, inf)),
        (4, inf, (inf, inf, inf, inf)),
        (4, 1.1, (inf, inf, inf, 0.9)),
        (4, inf, (0.6, inf, inf, inf)),
    ]
    for width, limit, nds in cases:
        state = [0.05, 0.0, 0.02, 0.01][:width]
        ref_state = list(state)
        expect = _reference_dispatch(
            arrivals, cids, rows[:width], ref_state, limit, nds
        )
        arr = np.asarray(arrivals)
        cid = np.asarray(cids, dtype=np.int64)
        st = np.asarray(state)
        acc8 = np.empty(arr.size, dtype=np.uint8)
        acc64 = np.empty(arr.size, dtype=np.int64)
        starts = np.empty(arr.size)
        fins = np.empty(arr.size)
        if width == 2:
            svc = [np.asarray(row) for row in rows]
            q = pair(
                arr.ctypes.data_as(_DOUBLE_P),
                cid.ctypes.data_as(_INT64_P),
                svc[0].ctypes.data_as(_DOUBLE_P),
                svc[1].ctypes.data_as(_DOUBLE_P),
                arr.size,
                limit,
                nds[0],
                nds[1],
                st.ctypes.data_as(_DOUBLE_P),
                acc8.ctypes.data_as(_UINT8_P),
                starts.ctypes.data_as(_DOUBLE_P),
                fins.ctypes.data_as(_DOUBLE_P),
            )
            got_acc = acc8
        elif width == 1:
            svc = [np.asarray(row) for row in rows]
            q = single(
                arr.ctypes.data_as(_DOUBLE_P),
                cid.ctypes.data_as(_INT64_P),
                svc[0].ctypes.data_as(_DOUBLE_P),
                arr.size,
                limit,
                nds[0],
                st.ctypes.data_as(_DOUBLE_P),
                acc8.ctypes.data_as(_UINT8_P),
                starts.ctypes.data_as(_DOUBLE_P),
                fins.ctypes.data_as(_DOUBLE_P),
            )
            got_acc = acc8
        else:
            matrix = np.ascontiguousarray(rows[:width], dtype=np.float64)
            nd_arr = np.asarray(nds, dtype=np.float64)
            q = kwide(
                arr.ctypes.data_as(_DOUBLE_P),
                cid.ctypes.data_as(_INT64_P),
                matrix.ctypes.data_as(_DOUBLE_P),
                width,
                matrix.shape[1],
                arr.size,
                limit,
                nd_arr.ctypes.data_as(_DOUBLE_P),
                st.ctypes.data_as(_DOUBLE_P),
                acc64.ctypes.data_as(_INT64_P),
                starts.ctypes.data_as(_DOUBLE_P),
                fins.ctypes.data_as(_DOUBLE_P),
            )
            got_acc = acc64
        got = list(
            zip(got_acc[:q].tolist(), starts[:q].tolist(), fins[:q].tolist())
        )
        if q != len(expect) or got != expect:
            return False
        # the committed prefix must leave the same free clocks the
        # reference loop left
        if st.tolist() != ref_state:
            return False
    return True


def _build():
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    tmp = None
    try:
        tmp = tempfile.mkdtemp(prefix="repro-native-")
        source = os.path.join(tmp, "walk.c")
        lib_path = os.path.join(tmp, "libreprowalk.so")
        with open(source, "w", encoding="utf-8") as handle:
            handle.write(_SOURCE)
        for compiler in ("cc", "gcc", "clang"):
            if shutil.which(compiler) is None:
                continue
            try:
                subprocess.run(
                    [compiler, "-O2", "-fPIC", "-shared", "-o", lib_path, source],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                break
            except (subprocess.SubprocessError, OSError):
                continue
        else:
            return None
        library = ctypes.CDLL(lib_path)
        walk = library.repro_theta_walk
        walk.restype = ctypes.c_int64
        walk.argtypes = [_DOUBLE_P, _DOUBLE_P, ctypes.c_int64, ctypes.c_double, _UINT8_P]
        pair = library.repro_dispatch_pair
        pair.restype = ctypes.c_int64
        pair.argtypes = [
            _DOUBLE_P,
            _INT64_P,
            _DOUBLE_P,
            _DOUBLE_P,
            ctypes.c_int64,
            ctypes.c_double,
            ctypes.c_double,
            ctypes.c_double,
            _DOUBLE_P,
            _UINT8_P,
            _DOUBLE_P,
            _DOUBLE_P,
        ]
        single = library.repro_dispatch_single
        single.restype = ctypes.c_int64
        single.argtypes = [
            _DOUBLE_P,
            _INT64_P,
            _DOUBLE_P,
            ctypes.c_int64,
            ctypes.c_double,
            ctypes.c_double,
            _DOUBLE_P,
            _UINT8_P,
            _DOUBLE_P,
            _DOUBLE_P,
        ]
        kwide = library.repro_dispatch_k
        kwide.restype = ctypes.c_int64
        kwide.argtypes = [
            _DOUBLE_P,
            _INT64_P,
            _DOUBLE_P,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_double,
            _DOUBLE_P,
            _DOUBLE_P,
            _INT64_P,
            _DOUBLE_P,
            _DOUBLE_P,
        ]

        # self-check against the reference implementations before
        # trusting the build
        check_u = [0.5, -1.0, 2.0, 0.25, 3.0, 3.0, 0.0]
        check_v = [1.0, 1.0, 0.5, 2.0, 0.5, 0.5, 1.0]
        for theta in (-1.0, 0.0, 0.4, 10.0):
            cu = np.asarray(check_u)
            cv = np.asarray(check_v)
            got = np.empty(cu.size, dtype=np.uint8)
            walk(
                cu.ctypes.data_as(_DOUBLE_P),
                cv.ctypes.data_as(_DOUBLE_P),
                cu.size,
                theta,
                got.ctypes.data_as(_UINT8_P),
            )
            if got.tolist() != _reference_walk(check_u, check_v, theta):
                return None
        if not _check_dispatch(pair, single, kwide):
            return None
        return walk, pair, single, kwide
    except Exception:
        return None
    finally:
        # the loaded .so stays mapped; the directory entry can go
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


_BUILT = _build()
_WALK, _PAIR, _SINGLE, _KWIDE = (
    _BUILT if _BUILT is not None else (None, None, None, None)
)

#: whether the compiled kernels passed the self-check and are in use
NATIVE_AVAILABLE = _BUILT is not None

if NATIVE_AVAILABLE:
    _LOG.info(
        "native dispatch kernels compiled (k-wide exact earliest-finish loop)"
    )
elif os.environ.get("REPRO_NO_NATIVE"):
    _LOG.info(
        "REPRO_NO_NATIVE set: vectorized dispatch uses the NumPy "
        "speculate-and-verify fallback"
    )
else:
    _LOG.warning(
        "no working C compiler: vectorized dispatch falls back to the "
        "NumPy speculate-and-verify engine (slower, same results)"
    )


def _theta_walk_native(u: np.ndarray, v: np.ndarray, theta: float) -> np.ndarray:
    """Boolean pick array for the k=2 busy-regime θ-walk, at C speed."""
    u = np.ascontiguousarray(u, dtype=np.float64)
    v = np.ascontiguousarray(v, dtype=np.float64)
    out = np.empty(u.size, dtype=np.uint8)
    _WALK(
        u.ctypes.data_as(_DOUBLE_P),
        v.ctypes.data_as(_DOUBLE_P),
        u.size,
        theta,
        out.ctypes.data_as(_UINT8_P),
    )
    return out.view(np.bool_)


def _dispatch_exact_native(arrivals, class_ids, services, free, limit, nds=None):
    """Exact earliest-finish dispatch over one clean stretch.

    ``services`` is the engine's ``(width, classes)`` float64 matrix
    (any width; ``inf`` marks infeasible pairs); ``free`` is the
    mutable per-accelerator clock list, updated in place; ``nds`` the
    per-accelerator next-down array (``None`` = unconstrained).
    Returns ``(accepted, accs, starts, fins)`` — the maximal prefix
    satisfying the ``limit`` / next-down constraints, with per-request
    results bit-identical to the scan loop.
    """
    arrivals = np.ascontiguousarray(arrivals, dtype=np.float64)
    class_ids = np.ascontiguousarray(class_ids, dtype=np.int64)
    n = arrivals.size
    width = services.shape[0]
    starts = np.empty(n, dtype=np.float64)
    fins = np.empty(n, dtype=np.float64)
    state = np.asarray(free, dtype=np.float64)
    if nds is None:
        nds = (math.inf,) * width
    if width == 2:
        acc = np.empty(n, dtype=np.uint8)
        svc0 = np.ascontiguousarray(services[0])
        svc1 = np.ascontiguousarray(services[1])
        q = _PAIR(
            arrivals.ctypes.data_as(_DOUBLE_P),
            class_ids.ctypes.data_as(_INT64_P),
            svc0.ctypes.data_as(_DOUBLE_P),
            svc1.ctypes.data_as(_DOUBLE_P),
            n,
            limit,
            nds[0],
            nds[1],
            state.ctypes.data_as(_DOUBLE_P),
            acc.ctypes.data_as(_UINT8_P),
            starts.ctypes.data_as(_DOUBLE_P),
            fins.ctypes.data_as(_DOUBLE_P),
        )
    elif width == 1:
        acc = np.empty(n, dtype=np.uint8)
        svc0 = np.ascontiguousarray(services[0])
        q = _SINGLE(
            arrivals.ctypes.data_as(_DOUBLE_P),
            class_ids.ctypes.data_as(_INT64_P),
            svc0.ctypes.data_as(_DOUBLE_P),
            n,
            limit,
            nds[0],
            state.ctypes.data_as(_DOUBLE_P),
            acc.ctypes.data_as(_UINT8_P),
            starts.ctypes.data_as(_DOUBLE_P),
            fins.ctypes.data_as(_DOUBLE_P),
        )
    else:
        acc = np.empty(n, dtype=np.int64)
        matrix = np.ascontiguousarray(services, dtype=np.float64)
        nd_arr = np.ascontiguousarray(nds, dtype=np.float64)
        q = _KWIDE(
            arrivals.ctypes.data_as(_DOUBLE_P),
            class_ids.ctypes.data_as(_INT64_P),
            matrix.ctypes.data_as(_DOUBLE_P),
            width,
            matrix.shape[1],
            n,
            limit,
            nd_arr.ctypes.data_as(_DOUBLE_P),
            state.ctypes.data_as(_DOUBLE_P),
            acc.ctypes.data_as(_INT64_P),
            starts.ctypes.data_as(_DOUBLE_P),
            fins.ctypes.data_as(_DOUBLE_P),
        )
    for order in range(width):
        free[order] = float(state[order])
    return q, acc[:q], starts[:q], fins[:q]


#: the accelerated kernels, or ``None`` when no compiler is available —
#: callers must keep a pure-Python path behind these checks
theta_walk = _theta_walk_native if _WALK is not None else None
dispatch_exact = _dispatch_exact_native if _PAIR is not None else None
