"""Optional C acceleration for the vectorized dispatch engine.

Two pieces of the fault-free fast path are irreducibly sequential —
per-element decision chains NumPy cannot express — and in CPython they
cost two orders of magnitude more than the arithmetic they perform:

* the θ-walk guesser in :mod:`repro.sim.dispatch_batch`, and
* the exact earliest-finish recurrence itself (each admission updates
  the free time the next admission reads).

This module compiles both as a few dozen lines of C once per process
(system ``cc``, a temp directory, no build system) and exposes them
through :data:`theta_walk` and :data:`dispatch_exact`.

``dispatch_exact`` mirrors the scan loop bit for bit — same
``arrival if arrival > free else free`` start rule, same strict
``finish1 < finish0`` tie-break, same fault-segment ``limit`` /
next-down cut conditions as ``_corrected_step`` — so the NumPy
speculate-and-verify engine becomes the fallback rather than the hot
path when a compiler is present.  Plain ``-O2`` keeps IEEE semantics
(no ``-ffast-math``, no FMA contraction opportunities in pure
add/compare code), and a self-check against a Python reference guards
the build before it is trusted.  Any failure (no ``cc``, sandboxed
filesystem, self-check mismatch) leaves both exports ``None`` and the
pure-Python paths take over.  Set ``REPRO_NO_NATIVE=1`` to force that
fallback explicitly (CI exercises it so the Python paths stay covered).
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile

import numpy as np

_SOURCE = r"""
#include <stdint.h>

int64_t repro_theta_walk(const double *u, const double *v, int64_t n,
                         double theta, uint8_t *out)
{
    int64_t picks = 0;
    for (int64_t j = 0; j < n; ++j) {
        if (u[j] > theta) {
            out[j] = 1;
            theta += v[j];
            ++picks;
        } else {
            out[j] = 0;
        }
    }
    return picks;
}

int64_t repro_dispatch_pair(const double *arrivals, const int64_t *cids,
                            const double *svc0, const double *svc1,
                            int64_t n, double limit, double nd0, double nd1,
                            double *state, uint8_t *acc,
                            double *start, double *fin)
{
    double f0 = state[0];
    double f1 = state[1];
    int64_t j = 0;
    for (; j < n; ++j) {
        double a = arrivals[j];
        int64_t c = cids[j];
        double st0 = a > f0 ? a : f0;
        double st1 = a > f1 ? a : f1;
        if (st0 >= limit || st1 >= limit)
            break;
        double e0 = st0 + svc0[c];
        double e1 = st1 + svc1[c];
        if (e1 < e0) {
            if (e1 > nd1)
                break;
            f1 = e1;
            acc[j] = 1;
            start[j] = st1;
            fin[j] = e1;
        } else {
            if (e0 > nd0)
                break;
            f0 = e0;
            acc[j] = 0;
            start[j] = st0;
            fin[j] = e0;
        }
    }
    state[0] = f0;
    state[1] = f1;
    return j;
}

int64_t repro_dispatch_single(const double *arrivals, const int64_t *cids,
                              const double *svc0,
                              int64_t n, double limit, double nd0,
                              double *state, uint8_t *acc,
                              double *start, double *fin)
{
    double f0 = state[0];
    int64_t j = 0;
    for (; j < n; ++j) {
        double a = arrivals[j];
        double st0 = a > f0 ? a : f0;
        if (st0 >= limit)
            break;
        double e0 = st0 + svc0[cids[j]];
        if (e0 > nd0)
            break;
        f0 = e0;
        acc[j] = 0;
        start[j] = st0;
        fin[j] = e0;
    }
    state[0] = f0;
    return j;
}
"""

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_INT64_P = ctypes.POINTER(ctypes.c_int64)
_UINT8_P = ctypes.POINTER(ctypes.c_uint8)


def _reference_walk(u, v, theta):
    out = []
    for j, value in enumerate(u):
        if value > theta:
            out.append(1)
            theta += v[j]
        else:
            out.append(0)
    return out


def _reference_dispatch(arrivals, cids, rows, state, limit, nds):
    """Pure-Python mirror of the scan/``_corrected_step`` loop."""
    out = []
    for a, c in zip(arrivals, cids):
        starts = [a if a > f else f for f in state]
        if any(st >= limit for st in starts):
            break
        fins = [st + row[c] for st, row in zip(starts, rows)]
        best = 0
        if len(fins) == 2 and fins[1] < fins[0]:
            best = 1
        if fins[best] > nds[best]:
            break
        state[best] = fins[best]
        out.append((best, starts[best], fins[best]))
    return out


def _check_dispatch(pair, single):
    inf = float("inf")
    arrivals = [0.0, 0.1, 0.15, 0.2, 1.0, 1.05, 1.5, 2.0]
    cids = [0, 1, 0, 1, 0, 0, 1, 1]
    rows = [[0.3, 0.5], [0.4, 0.5]]
    cases = [
        (2, inf, (inf, inf)),
        (2, 1.2, (inf, inf)),
        (2, inf, (1.4, inf)),
        (2, inf, (inf, 0.6)),
        (1, inf, (inf,)),
        (1, 0.9, (0.7,)),
    ]
    for width, limit, nds in cases:
        state = [0.05, 0.0][:width]
        expect = _reference_dispatch(
            arrivals, cids, rows[:width], list(state), limit, nds
        )
        arr = np.asarray(arrivals)
        cid = np.asarray(cids, dtype=np.int64)
        svc = [np.asarray(row) for row in rows]
        st = np.asarray(state)
        acc = np.empty(arr.size, dtype=np.uint8)
        starts = np.empty(arr.size)
        fins = np.empty(arr.size)
        if width == 2:
            q = pair(
                arr.ctypes.data_as(_DOUBLE_P),
                cid.ctypes.data_as(_INT64_P),
                svc[0].ctypes.data_as(_DOUBLE_P),
                svc[1].ctypes.data_as(_DOUBLE_P),
                arr.size,
                limit,
                nds[0],
                nds[1],
                st.ctypes.data_as(_DOUBLE_P),
                acc.ctypes.data_as(_UINT8_P),
                starts.ctypes.data_as(_DOUBLE_P),
                fins.ctypes.data_as(_DOUBLE_P),
            )
        else:
            q = single(
                arr.ctypes.data_as(_DOUBLE_P),
                cid.ctypes.data_as(_INT64_P),
                svc[0].ctypes.data_as(_DOUBLE_P),
                arr.size,
                limit,
                nds[0],
                st.ctypes.data_as(_DOUBLE_P),
                acc.ctypes.data_as(_UINT8_P),
                starts.ctypes.data_as(_DOUBLE_P),
                fins.ctypes.data_as(_DOUBLE_P),
            )
        got = list(zip(acc[:q].tolist(), starts[:q].tolist(), fins[:q].tolist()))
        if q != len(expect) or got != expect:
            return False
    return True


def _build():
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    tmp = None
    try:
        tmp = tempfile.mkdtemp(prefix="repro-native-")
        source = os.path.join(tmp, "walk.c")
        lib_path = os.path.join(tmp, "libreprowalk.so")
        with open(source, "w", encoding="utf-8") as handle:
            handle.write(_SOURCE)
        for compiler in ("cc", "gcc", "clang"):
            if shutil.which(compiler) is None:
                continue
            try:
                subprocess.run(
                    [compiler, "-O2", "-fPIC", "-shared", "-o", lib_path, source],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                break
            except (subprocess.SubprocessError, OSError):
                continue
        else:
            return None
        library = ctypes.CDLL(lib_path)
        walk = library.repro_theta_walk
        walk.restype = ctypes.c_int64
        walk.argtypes = [_DOUBLE_P, _DOUBLE_P, ctypes.c_int64, ctypes.c_double, _UINT8_P]
        pair = library.repro_dispatch_pair
        pair.restype = ctypes.c_int64
        pair.argtypes = [
            _DOUBLE_P,
            _INT64_P,
            _DOUBLE_P,
            _DOUBLE_P,
            ctypes.c_int64,
            ctypes.c_double,
            ctypes.c_double,
            ctypes.c_double,
            _DOUBLE_P,
            _UINT8_P,
            _DOUBLE_P,
            _DOUBLE_P,
        ]
        single = library.repro_dispatch_single
        single.restype = ctypes.c_int64
        single.argtypes = [
            _DOUBLE_P,
            _INT64_P,
            _DOUBLE_P,
            ctypes.c_int64,
            ctypes.c_double,
            ctypes.c_double,
            _DOUBLE_P,
            _UINT8_P,
            _DOUBLE_P,
            _DOUBLE_P,
        ]

        # self-check against the reference implementations before
        # trusting the build
        check_u = [0.5, -1.0, 2.0, 0.25, 3.0, 3.0, 0.0]
        check_v = [1.0, 1.0, 0.5, 2.0, 0.5, 0.5, 1.0]
        for theta in (-1.0, 0.0, 0.4, 10.0):
            cu = np.asarray(check_u)
            cv = np.asarray(check_v)
            got = np.empty(cu.size, dtype=np.uint8)
            walk(
                cu.ctypes.data_as(_DOUBLE_P),
                cv.ctypes.data_as(_DOUBLE_P),
                cu.size,
                theta,
                got.ctypes.data_as(_UINT8_P),
            )
            if got.tolist() != _reference_walk(check_u, check_v, theta):
                return None
        if not _check_dispatch(pair, single):
            return None
        return walk, pair, single
    except Exception:
        return None
    finally:
        # the loaded .so stays mapped; the directory entry can go
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


_BUILT = _build()
_WALK, _PAIR, _SINGLE = _BUILT if _BUILT is not None else (None, None, None)


def _theta_walk_native(u: np.ndarray, v: np.ndarray, theta: float) -> np.ndarray:
    """Boolean pick array for the k=2 busy-regime θ-walk, at C speed."""
    u = np.ascontiguousarray(u, dtype=np.float64)
    v = np.ascontiguousarray(v, dtype=np.float64)
    out = np.empty(u.size, dtype=np.uint8)
    _WALK(
        u.ctypes.data_as(_DOUBLE_P),
        v.ctypes.data_as(_DOUBLE_P),
        u.size,
        theta,
        out.ctypes.data_as(_UINT8_P),
    )
    return out.view(np.bool_)


def _dispatch_exact_native(arrivals, class_ids, services, free, limit, nd0, nd1):
    """Exact earliest-finish dispatch over one clean stretch.

    ``services`` is the engine's ``(width, classes)`` float64 matrix
    (width 1 or 2, every entry finite); ``free`` is the mutable
    per-accelerator clock list, updated in place.  Returns
    ``(accepted, accs, starts, fins)`` — the maximal prefix satisfying
    the ``limit`` / next-down constraints, with per-request results
    bit-identical to the scan loop.
    """
    arrivals = np.ascontiguousarray(arrivals, dtype=np.float64)
    class_ids = np.ascontiguousarray(class_ids, dtype=np.int64)
    n = arrivals.size
    acc = np.empty(n, dtype=np.uint8)
    starts = np.empty(n, dtype=np.float64)
    fins = np.empty(n, dtype=np.float64)
    state = np.asarray(free, dtype=np.float64)
    svc0 = np.ascontiguousarray(services[0])
    if services.shape[0] == 2:
        svc1 = np.ascontiguousarray(services[1])
        q = _PAIR(
            arrivals.ctypes.data_as(_DOUBLE_P),
            class_ids.ctypes.data_as(_INT64_P),
            svc0.ctypes.data_as(_DOUBLE_P),
            svc1.ctypes.data_as(_DOUBLE_P),
            n,
            limit,
            nd0,
            nd1,
            state.ctypes.data_as(_DOUBLE_P),
            acc.ctypes.data_as(_UINT8_P),
            starts.ctypes.data_as(_DOUBLE_P),
            fins.ctypes.data_as(_DOUBLE_P),
        )
        free[1] = float(state[1])
    else:
        q = _SINGLE(
            arrivals.ctypes.data_as(_DOUBLE_P),
            class_ids.ctypes.data_as(_INT64_P),
            svc0.ctypes.data_as(_DOUBLE_P),
            n,
            limit,
            nd0,
            state.ctypes.data_as(_DOUBLE_P),
            acc.ctypes.data_as(_UINT8_P),
            starts.ctypes.data_as(_DOUBLE_P),
            fins.ctypes.data_as(_DOUBLE_P),
        )
    free[0] = float(state[0])
    return q, acc[:q], starts[:q], fins[:q]


#: the accelerated kernels, or ``None`` when no compiler is available —
#: callers must keep a pure-Python path behind these checks
theta_walk = _theta_walk_native if _WALK is not None else None
dispatch_exact = _dispatch_exact_native if _PAIR is not None else None
