"""The "HW platform" stand-in: end-to-end execution on the simulated board.

Runs a workload through the full DRAM -> PL -> AIE -> PL -> DRAM
pipeline at DRAM-tile granularity, using the buffered-pipeline engine so
fill/drain and buffering effects appear naturally.  Compared to the
analytical model it additionally charges:

* the 100 us AIE setup (the paper's hardware calibration),
* per-transfer DRAM burst latency (low bandwidth efficiency for small
  transfers),
* the exposed (non-overlapped) PL<->AIE fill per DRAM tile,

which is why — as on the real board — its times come out slightly above
the analytical estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analytical_model import AnalyticalModel
from repro.core.breakdown import Bottleneck
from repro.mapping.charm import CharmDesign
from repro.mapping.tiling import TilePlan
from repro.sim.engine import PipelineSimulator, PipelineStage
from repro.workloads.gemm import GemmShape

#: Fraction of the shorter input transfer exposed by NoC virtual-channel
#: interleaving when A and B loads overlap (absent from the analytical
#: model; one source of its small under-estimation vs hardware).
_NOC_CONTENTION = 0.04


@dataclass(frozen=True)
class HwRunResult:
    """A simulated hardware run."""

    design: CharmDesign
    workload: GemmShape
    plan: TilePlan
    total_seconds: float
    load_seconds: float
    aie_seconds: float
    store_seconds: float
    setup_seconds: float
    bottleneck: Bottleneck

    @property
    def throughput_ops(self) -> float:
        return self.workload.flops / self.total_seconds

    @property
    def efficiency(self) -> float:
        return self.throughput_ops / self.design.peak_ops()


class HwSimulator:
    """Simulates end-to-end execution of a design on the device."""

    def __init__(self, design: CharmDesign):
        design.validate()
        self.design = design
        self.device = design.device
        # the analytical model supplies the per-phase service times; the
        # pipeline engine supplies the scheduling semantics
        self._model = AnalyticalModel(design)

    def _pipeline_result(self, plan: TilePlan):
        level = self._model.dram_level_times(plan)
        _, tk, _ = plan.dram_tile_counts
        slots = 2 if self.design.pl_double_buffered else 1

        def load_service(item: int) -> float:
            # A and B multiplex the read-port pool (sum), plus a small
            # NoC virtual-channel interleaving loss the analytical model
            # omits
            return level.load_inputs * (1.0 + _NOC_CONTENTION)

        def aie_service(item: int) -> float:
            return level.aie

        def store_service(item: int) -> float:
            # C is written back in one burst when its K sweep completes
            # (the analytical model amortises this smoothly instead)
            is_last_k = (item + 1) % tk == 0
            return level.store_c * tk if is_last_k else 0.0

        pipeline = PipelineSimulator(
            [
                PipelineStage("load", load_service, slots=2),
                PipelineStage("aie", aie_service, slots=slots),
                # the C buffer is double buffered per *sweep*: it holds two
                # full K sweeps (2*tk pipeline items) before write-back
                # blocks the AIEs
                PipelineStage("store", store_service, slots=2 * tk),
            ]
        )
        return pipeline.run(plan.num_dram_tiles), level

    def run(self, workload: GemmShape, plan: TilePlan | None = None) -> HwRunResult:
        if plan is None:
            plan = self.design.tile_plan(workload)
        result, level = self._pipeline_result(plan)
        total = result.makespan + self.device.aie_setup_seconds
        return HwRunResult(
            design=self.design,
            workload=workload,
            plan=plan,
            total_seconds=total,
            load_seconds=result.stage_busy_by_name("load"),
            aie_seconds=result.stage_busy_by_name("aie"),
            store_seconds=result.stage_busy_by_name("store"),
            setup_seconds=self.device.aie_setup_seconds,
            bottleneck=level.bottleneck,
        )

    def trace(self, workload: GemmShape, plan: TilePlan | None = None):
        """Run and return the execution timeline (load/AIE/store events).

        Useful for *seeing* buffering behaviour: double buffering shows
        load/AIE overlap, single buffering shows serialisation.
        """
        from repro.sim.trace import ExecutionTrace

        if plan is None:
            plan = self.design.tile_plan(workload)
        result, _ = self._pipeline_result(plan)
        return ExecutionTrace(result)

    def compare_with_model(self, workload: GemmShape) -> tuple[HwRunResult, float]:
        """Run both the simulator and the analytical model; return the
        run plus the model's relative error (the paper reports +/-5%)."""
        plan = self.design.tile_plan(workload)
        run = self.run(workload, plan)
        estimate = self._model.estimate(workload, plan)
        error = (estimate.total_seconds - run.total_seconds) / run.total_seconds
        return run, error
