"""Streaming serving structures: SoA traces and O(1)-memory reports.

Serving a million-request trace through the seed path materializes one
``Request`` and one ``CompletedRequest`` object per request and sorts
every latency on each percentile query — hundreds of MB and seconds of
interpreter time for numbers the operator reads off a dashboard.  This
module provides the scalable counterparts:

* :func:`splitmix_uniforms` — the NumPy uint64 replication of the
  scalar ``_lcg_uniform`` hash; **bit-identical** by construction (the
  integer arithmetic wraps exactly like the scalar mask-and-shift
  chain, and the final float division is the same float64 operation).
* :class:`SoATrace` / :func:`generate_trace_soa` — a structure-of-arrays
  request trace (one float64 arrival and one int shape id per request,
  16 bytes instead of a ~200-byte object graph) whose arrivals are
  bit-identical to ``generate_trace``'s scalar loop.
* :class:`QuantileSketch` — a DDSketch-style log-bucketed quantile
  sketch with a *guaranteed relative error bound*: every reported
  quantile is within ``relative_error`` (default 1%) of the exact
  ranked value, using O(log(dynamic range) / relative_error) memory.
* :class:`StreamingServingReport` — running aggregates plus one sketch
  per accelerator; mirrors ``ServingReport``'s read API with O(1)
  memory in the trace length.

The error bound, precisely: a value ``v > min_value`` lands in bucket
``ceil(log_gamma(v))`` with ``gamma = (1 + e) / (1 - e)``; the bucket's
representative ``2 * gamma**i / (gamma + 1)`` is within a factor
``gamma`` of both bucket edges, so ``|estimate - v| <= e * v``.  Rank
selection is exact (bucket counts are exact), so the reported quantile
is the true ranked value distorted by at most ``e`` relative — the
property tests assert this against the exact report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.workloads.gemm import GemmShape

if TYPE_CHECKING:  # pragma: no cover - serving imports this module
    from repro.sim.serving import Request

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MUL_SEED = 0x9E3779B97F4A7C15
_MUL_INDEX = 0xBF58476D1CE4E5B9
_MUL_MIX = 0x94D049BB133111EB


def derive_seed(seed: int, index: int) -> int:
    """A deterministic 63-bit sub-seed for stream ``index`` of ``seed``.

    Runs the splitmix mixing chain once over ``(seed, index + 1)`` so
    sibling streams (e.g. the points of one load sweep) draw from
    decorrelated uniform sequences while staying fully reproducible —
    the same ``(seed, index)`` always yields the same sub-seed,
    independent of evaluation order or thread count.
    """
    x = (seed * _MUL_SEED + (index + 1) * _MUL_INDEX) & _MASK64
    x ^= x >> 31
    x = (x * _MUL_MIX) & _MASK64
    x ^= x >> 29
    return int(x & 0x7FFFFFFFFFFFFFFF)


def splitmix_uniforms(seed: int, indices: np.ndarray) -> np.ndarray:
    """Vectorized ``_lcg_uniform``: uniforms in (0, 1), bit-identical.

    ``indices`` is an integer array; the return value satisfies
    ``out[j] == _lcg_uniform(seed, int(indices[j]))`` exactly — the
    uint64 multiply/xor/shift chain wraps identically and the final
    ``(x & 0xFFFFFFFF) + 1) / (2**32 + 2)`` is the same float64 divide.

    The chain runs in place on one scratch array: at a million requests
    the naive expression allocates (and page-faults) a fresh 16 MB
    temporary per operator, which costs more than the arithmetic.
    """
    idx = np.asarray(indices, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = idx * np.uint64(_MUL_INDEX)
        x += np.uint64((seed * _MUL_SEED) & _MASK64)
        x ^= x >> np.uint64(31)
        x *= np.uint64(_MUL_MIX)
        x ^= x >> np.uint64(29)
        x &= np.uint64(0xFFFFFFFF)
    out = x.astype(np.float64)
    out += 1.0
    out /= np.float64(2**32 + 2)
    return out


@dataclass
class SoATrace:
    """A structure-of-arrays request trace.

    ``shapes`` holds the shape mix (one entry per *position* in the mix
    handed to :func:`generate_trace_soa`, duplicates preserved);
    ``shape_ids[j]`` indexes into it for request ``j``; ``arrivals`` is
    the nondecreasing float64 arrival clock.  Request ids are implicit:
    request ``j`` has ``request_id == j``.
    """

    shapes: tuple[GemmShape, ...]
    shape_ids: np.ndarray
    arrivals: np.ndarray

    def __post_init__(self) -> None:
        self.shape_ids = np.asarray(self.shape_ids, dtype=np.int64)
        self.arrivals = np.asarray(self.arrivals, dtype=np.float64)
        if self.shape_ids.shape != self.arrivals.shape or self.arrivals.ndim != 1:
            raise ValueError("shape_ids and arrivals must be equal-length 1-D arrays")
        if not self.shapes:
            raise ValueError("need at least one shape")
        if self.shape_ids.size:
            if int(self.shape_ids.min()) < 0 or int(self.shape_ids.max()) >= len(
                self.shapes
            ):
                raise ValueError("shape_ids index outside the shape mix")
            if np.any(np.diff(self.arrivals) < 0):
                raise ValueError("arrivals must be nondecreasing")

    def __len__(self) -> int:
        return int(self.arrivals.size)

    def materialize(self) -> "list[Request]":
        """The equivalent list-of-``Request`` trace (compat path)."""
        from repro.sim.serving import Request

        shapes = self.shapes
        return [
            Request(request_id=index, shape=shapes[sid], arrival=arrival)
            for index, (sid, arrival) in enumerate(
                zip(self.shape_ids.tolist(), self.arrivals.tolist())
            )
        ]


def generate_trace_soa(
    shapes: Sequence[GemmShape],
    num_requests: int,
    mean_interarrival: float,
    seed: int = 0,
) -> SoATrace:
    """Vectorized :func:`repro.sim.serving.generate_trace`.

    Bit-identical to the scalar loop: the uniform stream is the exact
    :func:`splitmix_uniforms` replication, ``np.log`` evaluates each
    element exactly as the scalar path's ``np.log`` call, and
    ``np.cumsum`` accumulates left-to-right exactly like the scalar
    ``clock +=``.  ~50x faster and 16 bytes per request.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if mean_interarrival <= 0:
        raise ValueError("mean inter-arrival must be positive")
    if not shapes:
        raise ValueError("need at least one shape")
    uniforms = splitmix_uniforms(seed, np.arange(2 * num_requests, dtype=np.uint64))
    # contiguous copies of the strided halves: the elementwise log and
    # the multiply run measurably faster than on a stride-2 view, and
    # the in-place scaling avoids two more full-trace temporaries
    inter = np.ascontiguousarray(uniforms[0::2])
    np.log(inter, out=inter)
    inter *= -mean_interarrival
    arrivals = np.cumsum(inter)
    picks = np.ascontiguousarray(uniforms[1::2])
    picks *= np.float64(len(shapes))
    shape_ids = picks.astype(np.int64)
    return SoATrace(shapes=tuple(shapes), shape_ids=shape_ids, arrivals=arrivals)


# ----------------------------------------------------------------------
# Trace sharding: index-addressable sub-trace generation
# ----------------------------------------------------------------------
# Request ``i`` of a trace draws its inter-arrival from uniform index
# ``2 * i`` and its shape pick from ``2 * i + 1`` — pure functions of
# the index through :func:`splitmix_uniforms` — so any contiguous slice
# ``[lo, hi)`` can be regenerated without touching the rest of the
# trace.  Arrivals are a strictly sequential left fold (``np.cumsum``
# accumulates element by element), so a shard additionally needs the
# fold's carry at its boundary: the last arrival of the previous shard.
# Seeding the first inter-arrival with that carry reproduces the full
# trace's arrivals *bitwise* — IEEE-754 addition is commutative, so
# ``inter[lo] + carry`` is the exact operation the full cumsum performs
# at position ``lo``, and every later element folds identically.


def shard_bounds(num_requests: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` request ranges splitting a trace evenly.

    The first ``num_requests % shards`` shards take one extra request.
    Never produces an empty shard: the effective shard count is
    ``min(shards, num_requests)``.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if shards < 1:
        raise ValueError("need at least one shard")
    shards = min(shards, num_requests)
    base, extra = divmod(num_requests, shards)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _shard_interarrivals(
    seed: int, lo: int, hi: int, mean_interarrival: float
) -> np.ndarray:
    """Inter-arrivals for requests ``[lo, hi)`` — the exact elementwise
    values :func:`generate_trace_soa` derives for those positions."""
    inter = splitmix_uniforms(seed, np.arange(2 * lo, 2 * hi, 2, dtype=np.uint64))
    np.log(inter, out=inter)
    inter *= -mean_interarrival
    return inter


def shard_arrival_offsets(
    num_requests: int,
    mean_interarrival: float,
    seed: int,
    bounds: Sequence[tuple[int, int]],
) -> list[float]:
    """The arrival-clock carry entering each shard of ``bounds``.

    ``offsets[j]`` is the last arrival of shard ``j - 1`` (0.0 for the
    first shard) under the full trace's sequential accumulation.  The
    pass is inherently serial — each shard's carry depends on the
    previous one — but costs one vectorized log/cumsum sweep over the
    trace (~2% of a vectorized serving run), and callers cache it per
    ``(num_requests, mean_interarrival, seed, shards)``.
    """
    if mean_interarrival <= 0:
        raise ValueError("mean inter-arrival must be positive")
    offsets = [0.0]
    carry = 0.0
    for lo, hi in list(bounds)[:-1]:
        inter = _shard_interarrivals(seed, lo, hi, mean_interarrival)
        if carry != 0.0:
            inter[0] += carry
        carry = float(np.cumsum(inter)[-1])
        offsets.append(carry)
    return offsets


def generate_trace_shard(
    shapes: Sequence[GemmShape],
    num_requests: int,
    mean_interarrival: float,
    seed: int = 0,
    *,
    lo: int,
    hi: int,
    arrival_offset: float = 0.0,
) -> SoATrace:
    """Requests ``[lo, hi)`` of ``generate_trace_soa(shapes, num_requests,
    mean_interarrival, seed)``, byte-identical to slicing the full trace.

    ``arrival_offset`` is the carry from :func:`shard_arrival_offsets`
    (the last arrival before ``lo``); with it the shard's arrival array
    equals ``full.arrivals[lo:hi]`` bitwise.  Only O(hi - lo) work and
    memory — the rest of the trace is never materialized.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if mean_interarrival <= 0:
        raise ValueError("mean inter-arrival must be positive")
    if not shapes:
        raise ValueError("need at least one shape")
    if not 0 <= lo < hi <= num_requests:
        raise ValueError(
            f"shard [{lo}, {hi}) must be a non-empty slice of [0, {num_requests})"
        )
    inter = _shard_interarrivals(seed, lo, hi, mean_interarrival)
    if arrival_offset != 0.0:
        # the exact add the full cumsum performs at position ``lo``
        # (commutativity makes carry + inter[0] == inter[0] + carry)
        inter[0] += arrival_offset
    arrivals = np.cumsum(inter)
    picks = splitmix_uniforms(seed, np.arange(2 * lo + 1, 2 * hi, 2, dtype=np.uint64))
    picks *= np.float64(len(shapes))
    shape_ids = picks.astype(np.int64)
    return SoATrace(shapes=tuple(shapes), shape_ids=shape_ids, arrivals=arrivals)


class QuantileSketch:
    """Log-bucketed quantile sketch with a relative-error guarantee.

    Values are counted in buckets ``i = ceil(log_gamma(v))`` with
    ``gamma = (1 + relative_error) / (1 - relative_error)``; a reported
    quantile is the exact-rank bucket's representative, which is within
    ``relative_error`` of the true ranked value (see the module
    docstring for the bound).  Memory is O(buckets): ~2100 buckets span
    1e-9 s .. 1e9 s at the default 1% error.

    Values at or below ``min_value`` collapse into one underflow bucket
    reported as ``min_value`` — serving latencies are bounded below by
    a service time, far above the default floor.
    """

    def __init__(self, relative_error: float = 0.01, min_value: float = 1e-9):
        if not 0 < relative_error < 1:
            raise ValueError("relative_error must be in (0, 1)")
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        self.relative_error = relative_error
        self.min_value = min_value
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self._counts: dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0

    def add(self, value: float) -> None:
        self.add_many(np.asarray([value], dtype=np.float64))

    def add_many(self, values: np.ndarray | Iterable[float]) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        if np.any(~np.isfinite(arr)) or np.any(arr < 0):
            raise ValueError("sketch values must be finite and non-negative")
        self.count += int(arr.size)
        self._sum += float(arr.sum())
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        small = arr <= self.min_value
        underflow = int(np.count_nonzero(small))
        if underflow:
            self._underflow += underflow
            arr = arr[~small]
        if arr.size:
            keys = np.ceil(np.log(arr) / self._log_gamma).astype(np.int64)
            uniques, counts = np.unique(keys, return_counts=True)
            bucket = self._counts
            for key, num in zip(uniques.tolist(), counts.tolist()):
                bucket[key] = bucket.get(key, 0) + num

    def prepare_keys(self, values: np.ndarray) -> np.ndarray | None:
        """Bucket keys for :meth:`add_keyed`, validated once for a block.

        Returns ``None`` when the block contains underflow values (at or
        below ``min_value``) — callers must fall back to
        :meth:`add_many` for such blocks.  The keys are exactly the ones
        :meth:`add_many` would derive (same elementwise ``np.log``), so
        they can be shared by every same-resolution sketch folding any
        subset of the block.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return np.empty(0, dtype=np.int64)
        if not np.isfinite(arr).all():
            raise ValueError("sketch values must be finite and non-negative")
        if float(arr.min()) <= self.min_value:
            if np.any(arr < 0):
                raise ValueError("sketch values must be finite and non-negative")
            return None
        keys = np.log(arr)
        keys /= self._log_gamma
        return np.ceil(keys).astype(np.int64)

    def add_keyed(self, values: np.ndarray, keys: np.ndarray) -> None:
        """Fold ``values`` whose bucket keys were precomputed.

        ``keys`` must come from a same-resolution sketch's
        :meth:`prepare_keys` over exactly these ``values`` — the bucket
        counts land precisely where :meth:`add_many` would put them, but
        the expensive per-value log and the sort inside ``np.unique``
        are replaced by one shared key array and an ``np.bincount``.
        """
        size = int(values.size)
        if not size:
            return
        self.count += size
        self._sum += float(values.sum())
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))
        kmin = int(keys.min())
        counts = np.bincount(keys - kmin)
        bucket = self._counts
        for offset in np.flatnonzero(counts).tolist():
            key = kmin + int(offset)
            bucket[key] = bucket.get(key, 0) + int(counts[offset])

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    @property
    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no values recorded")
        return self._sum / self.count

    def quantile(self, percentile: float) -> float:
        return self.quantiles([percentile])[0]

    def quantiles(self, percentiles: Sequence[float]) -> list[float]:
        """Batch quantile query (one bucket walk for all percentiles).

        Rank semantics match ``ServingReport.latency_percentile``: the
        ``min(n, ceil(p / 100 * n))``-th smallest value.
        """
        for percentile in percentiles:
            if not 0 < percentile <= 100:
                raise ValueError("percentile must be in (0, 100]")
        if self.count == 0:
            raise ValueError("no values recorded")
        ranks = [
            min(self.count, math.ceil(percentile / 100 * self.count))
            for percentile in percentiles
        ]
        order = sorted(range(len(ranks)), key=ranks.__getitem__)
        results: list[float] = [0.0] * len(ranks)
        cumulative = self._underflow
        keys = sorted(self._counts)
        key_pos = 0
        gamma = self._gamma
        for rank_index in order:
            rank = ranks[rank_index]
            while cumulative < rank and key_pos < len(keys):
                cumulative += self._counts[keys[key_pos]]
                key_pos += 1
            if rank <= self._underflow:
                value = self.min_value
            else:
                value = 2.0 * gamma ** keys[key_pos - 1] / (gamma + 1.0)
            # clamping to the observed extremes only moves the estimate
            # toward the true ranked value, so the bound is preserved
            results[rank_index] = min(max(value, self._min), self._max)
        return results

    def count_above(self, value: float) -> int:
        """Values recorded in buckets strictly above the one holding ``value``.

        Exact at bucket resolution: every counted value exceeds
        ``value``, and any value in ``value``'s own bucket (within the
        sketch's relative error of it) is excluded.  SLO evaluation uses
        this to turn a latency target into a bad-event count without
        retaining samples.
        """
        if value <= 0:
            raise ValueError("threshold must be positive")
        if value <= self.min_value:
            return sum(self._counts.values())
        key = math.ceil(math.log(value) / self._log_gamma)
        return sum(num for k, num in self._counts.items() if k > key)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Sorted ``(upper_edge, cumulative_count)`` over occupied buckets.

        The upper edge of bucket ``i`` is ``gamma ** i`` (the underflow
        bucket reports ``min_value``); cumulative counts are exact.
        Prometheus exposition renders these as ``_bucket{le="..."}``
        samples.
        """
        out: list[tuple[float, int]] = []
        cumulative = self._underflow
        if self._underflow:
            out.append((self.min_value, cumulative))
        for key in sorted(self._counts):
            cumulative += self._counts[key]
            out.append((self._gamma**key, cumulative))
        return out

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (same resolution required)."""
        if other._gamma != self._gamma or other.min_value != self.min_value:
            raise ValueError("can only merge sketches with identical resolution")
        for key, num in other._counts.items():
            self._counts[key] = self._counts.get(key, 0) + num
        self._underflow += other._underflow
        self.count += other.count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self


class StreamingServingReport:
    """O(1)-memory serving report: running aggregates + quantile sketches.

    Mirrors :class:`repro.sim.serving.ServingReport`'s read API
    (``makespan``, ``throughput_rps``, ``mean_latency``,
    ``latency_percentile``, ``latency_percentiles``,
    ``accelerator_load``) without retaining per-request state.  Means,
    counts, loads and the makespan are exact; percentiles carry the
    sketch's ``quantile_error`` relative bound.
    """

    def __init__(
        self,
        accelerator_names: Sequence[str],
        quantile_error: float = 0.01,
    ):
        if not accelerator_names:
            raise ValueError("need at least one accelerator")
        self.accelerator_names = list(accelerator_names)
        self.quantile_error = quantile_error
        self.count = 0
        self._makespan = 0.0
        self._latency_sum = 0.0
        self._queueing_sum = 0.0
        self._latency = QuantileSketch(quantile_error)
        self._per_accelerator = {
            name: QuantileSketch(quantile_error) for name in self.accelerator_names
        }
        self._loads = {name: 0 for name in self.accelerator_names}
        # fault accounting (zero / empty on fault-free runs)
        self.shed_count = 0
        self.total_retries = 0
        self.kills = 0
        self.requeues = 0
        self.fault_events: list = []
        self.downtime: dict[str, float] = {}
        # fleet accounting (grows through :meth:`merge`)
        self.replicas = 1
        self._merged_horizon = 0.0

    def observe_batch(
        self,
        accelerator_indices: np.ndarray,
        arrivals: np.ndarray,
        starts: np.ndarray,
        finishes: np.ndarray,
    ) -> None:
        """Fold one dispatched chunk (index-aligned arrays) into the report.

        The bucket keys for the block's latencies are computed once and
        shared between the global sketch and the per-accelerator
        sketches (:meth:`QuantileSketch.add_keyed`), so each latency
        pays one ``np.log`` instead of two plus two sorts.  The
        resulting report state is bit-identical to the naive
        ``add_many`` feed — the rare underflow block falls back to it.
        """
        accelerator_indices = np.asarray(accelerator_indices)
        arrivals = np.asarray(arrivals, dtype=np.float64)
        starts = np.asarray(starts, dtype=np.float64)
        finishes = np.asarray(finishes, dtype=np.float64)
        if accelerator_indices.size == 0:
            return
        latencies = finishes - arrivals
        self.count += int(accelerator_indices.size)
        self._makespan = max(self._makespan, float(finishes.max()))
        self._latency_sum += float(latencies.sum())
        self._queueing_sum += float((starts - arrivals).sum())
        names = self.accelerator_names
        keys = self._latency.prepare_keys(latencies)
        if keys is None:
            # underflow values present: take the validated slow path
            self._latency.add_many(latencies)
            for index in np.unique(np.asarray(accelerator_indices, dtype=np.int64)).tolist():
                mask = accelerator_indices == index
                name = names[index]
                self._per_accelerator[name].add_many(latencies[mask])
                self._loads[name] += int(np.count_nonzero(mask))
            return
        self._latency.add_keyed(latencies, keys)
        if len(names) == 1:
            # one accelerator: its sketch sees the whole block
            self._per_accelerator[names[0]].add_keyed(latencies, keys)
            self._loads[names[0]] += int(accelerator_indices.size)
            return
        for index, name in enumerate(names):
            mask = accelerator_indices == index
            num = int(np.count_nonzero(mask))
            if not num:
                continue
            self._per_accelerator[name].add_keyed(latencies[mask], keys[mask])
            self._loads[name] += num

    def observe(
        self, accelerator_index: int, arrival: float, start: float, finish: float
    ) -> None:
        """Scalar feed for incremental (non-batched) producers."""
        self.observe_batch(
            np.asarray([accelerator_index]),
            np.asarray([arrival]),
            np.asarray([start]),
            np.asarray([finish]),
        )

    @property
    def makespan(self) -> float:
        return self._makespan

    @property
    def throughput_rps(self) -> float:
        if self._makespan == 0:
            return 0.0
        return self.count / self._makespan

    def mean_latency(self) -> float:
        if self.count == 0:
            raise ValueError("no completed requests")
        return self._latency_sum / self.count

    def mean_queueing_delay(self) -> float:
        if self.count == 0:
            raise ValueError("no completed requests")
        return self._queueing_sum / self.count

    def latency_percentile(self, percentile: float) -> float:
        return self.latency_percentiles([percentile])[0]

    def latency_percentiles(self, percentiles: Sequence[float]) -> list[float]:
        if self.count == 0:
            raise ValueError("no completed requests")
        return self._latency.quantiles(percentiles)

    def accelerator_percentile(self, accelerator: str, percentile: float) -> float:
        sketch = self._per_accelerator[accelerator]
        if sketch.count == 0:
            raise ValueError(f"no completed requests on {accelerator}")
        return sketch.quantile(percentile)

    def accelerator_load(self) -> dict[str, int]:
        return {name: load for name, load in self._loads.items() if load}

    # -- fault accounting ----------------------------------------------
    def record_fault_metadata(
        self,
        *,
        shed_count: int = 0,
        total_retries: int = 0,
        kills: int = 0,
        requeues: int = 0,
        fault_events: Sequence | None = None,
        downtime: dict[str, float] | None = None,
    ) -> None:
        """Attach a fault run's accounting (mirrors ``ServingReport``)."""
        self.shed_count = shed_count
        self.total_retries = total_retries
        self.kills = kills
        self.requeues = requeues
        self.fault_events = list(fault_events or [])
        self.downtime = dict(downtime or {})

    def availability(self) -> dict[str, float]:
        """Per-accelerator up-fraction of the exposure horizon, in ``[0, 1]``.

        A single report's horizon is its makespan.  A merged fleet
        report's horizon is the *sum* of the merged replicas' makespans
        (fleet-seconds): each replica contributes its own exposure and
        its own downtime, so the fraction is the fleet-wide up time over
        fleet-wide run time.
        """
        horizon = self._makespan if self.replicas == 1 else self._merged_horizon
        if horizon <= 0:
            return {name: 1.0 for name in self.downtime}
        return {
            name: min(1.0, max(0.0, 1.0 - down / horizon))
            for name, down in self.downtime.items()
        }

    @property
    def request_availability(self) -> float:
        """Completed / offered requests (1.0 when nothing was offered)."""
        total = self.count + self.shed_count
        if total == 0:
            return 1.0
        return self.count / total

    def merge(self, other: "StreamingServingReport") -> "StreamingServingReport":
        """Fold a sibling shard's report into this one (fleet union).

        Both reports must cover the same accelerator names at the same
        ``quantile_error``.  Counts, sums and loads add; the makespan is
        the latest finish across replicas; every sketch merges bucket-
        exactly, so merged percentiles keep the documented relative-
        error bound **with respect to the union of the merged latency
        streams**.  Fault accounting adds too — each replica ran the
        schedule over its own exposure window, so merged downtime /
        availability read as fleet-seconds (see :meth:`availability`).
        Returns ``self`` for chaining.
        """
        if other is self:
            raise ValueError("cannot merge a report into itself")
        if other.quantile_error != self.quantile_error:
            raise ValueError("can only merge reports with identical quantile_error")
        if other.accelerator_names != self.accelerator_names:
            raise ValueError(
                "can only merge reports over the same accelerator names "
                f"({self.accelerator_names} vs {other.accelerator_names})"
            )
        self._merged_horizon = (
            self._merged_horizon if self.replicas > 1 else self._makespan
        ) + (other._merged_horizon if other.replicas > 1 else other._makespan)
        self.replicas += other.replicas
        self.count += other.count
        self._makespan = max(self._makespan, other._makespan)
        self._latency_sum += other._latency_sum
        self._queueing_sum += other._queueing_sum
        self._latency.merge(other._latency)
        for name in self.accelerator_names:
            self._per_accelerator[name].merge(other._per_accelerator[name])
            self._loads[name] += other._loads[name]
        self.shed_count += other.shed_count
        self.total_retries += other.total_retries
        self.kills += other.kills
        self.requeues += other.requeues
        self.fault_events = list(self.fault_events) + list(other.fault_events)
        for name, down in other.downtime.items():
            self.downtime[name] = self.downtime.get(name, 0.0) + down
        return self

    def fault_summary(self) -> dict:
        return {
            "completed": self.count,
            "shed": self.shed_count,
            "kills": self.kills,
            "retries": self.total_retries,
            "requeues": self.requeues,
            "fault_events": len(self.fault_events),
            "request_availability": self.request_availability,
            "availability": self.availability(),
        }

    def as_dict(self) -> dict:
        summary = {
            "requests": self.count,
            "makespan": self.makespan,
            "throughput_rps": self.throughput_rps,
            "quantile_error": self.quantile_error,
            "accelerator_load": self.accelerator_load(),
        }
        if self.replicas > 1:
            summary["replicas"] = self.replicas
        if self.fault_events or self.shed_count or self.downtime:
            summary["faults"] = self.fault_summary()
        if self.count:
            p50, p95, p99 = self.latency_percentiles([50, 95, 99])
            summary.update(
                {
                    "mean_latency": self.mean_latency(),
                    "mean_queueing_delay": self.mean_queueing_delay(),
                    "p50": p50,
                    "p95": p95,
                    "p99": p99,
                }
            )
        return summary
