"""The ``aiesimulator`` stand-in: cycle-approximate AIE graph simulation.

AMD's aiesimulator gives cycle-accurate visibility into kernel execution
and PL<->AIE streams without the PL or DRAM (Table I).  This module
reproduces that scope: single-kernel reports (Figs. 5-7) and multi-AIE
graph simulation of a PLIO scheme (Figs. 12-13), both built on the
pipeline engine so overlap and serialization emerge from buffer depths
rather than closed-form assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import DeviceSpec, VCK5000
from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.kernel_timing import KernelTiming
from repro.mapping.plio_schemes import PlioScheme
from repro.sim.engine import PipelineSimulator, PipelineStage


@dataclass(frozen=True)
class KernelSimReport:
    """aiesimulator output for one kernel over several invocations.

    All times in AIE cycles.  ``read``/``write`` are PL<->AIE stream
    busy times; ``compute`` is vector-unit busy time; ``overlap`` is the
    portion of communication hidden under compute.
    """

    kernel: SingleAieGemmKernel
    invocations: int
    read_cycles: float
    write_cycles: float
    compute_cycles: float
    total_cycles: float

    @property
    def per_invocation(self) -> float:
        return self.total_cycles / self.invocations

    @property
    def communication_cycles(self) -> float:
        return self.read_cycles + self.write_cycles

    @property
    def overlap_cycles(self) -> float:
        """Communication hidden under compute (or vice versa)."""
        busy_sum = self.communication_cycles + self.compute_cycles
        return max(0.0, busy_sum - self.total_cycles)

    @property
    def efficiency(self) -> float:
        ideal = self.kernel.shape.macs / self.kernel.precision.macs_per_cycle
        return ideal * self.invocations / self.total_cycles

    @property
    def bound(self) -> str:
        timing: KernelTiming = self.kernel.timing()
        return timing.bound

    def seconds(self, device: DeviceSpec = VCK5000) -> float:
        return device.cycles_to_seconds(self.total_cycles)


def simulate_kernel(
    kernel: SingleAieGemmKernel,
    invocations: int = 8,
    device: DeviceSpec = VCK5000,
) -> KernelSimReport:
    """Run ``invocations`` back-to-back kernel executions through the
    stream-in -> compute -> stream-out pipeline."""
    if invocations < 1:
        raise ValueError("need at least one invocation")
    if not kernel.is_feasible():
        raise ValueError(f"kernel {kernel.shape} violates AIE memory rules")
    timing = kernel.timing()
    read = max(timing.read_a, timing.read_b)  # A and B use separate PLIOs
    slots = 2 if kernel.double_buffered else 1
    pipeline = PipelineSimulator(
        [
            PipelineStage("stream_in", lambda t: read, slots=2),
            PipelineStage("compute", lambda t: timing.compute, slots=slots),
            PipelineStage("stream_out", lambda t: timing.write_c, slots=slots),
        ]
    )
    result = pipeline.run(invocations)
    return KernelSimReport(
        kernel=kernel,
        invocations=invocations,
        read_cycles=result.stage_busy_by_name("stream_in"),
        write_cycles=result.stage_busy_by_name("stream_out"),
        compute_cycles=result.stage_busy_by_name("compute"),
        total_cycles=result.makespan,
    )


@dataclass(frozen=True)
class GraphSimReport:
    """aiesimulator output for a multi-AIE PLIO-scheme graph."""

    scheme: PlioScheme
    invocations: int
    total_cycles: float
    stream_a_cycles: float
    stream_b_cycles: float
    compute_cycles: float
    stream_c_cycles: float
    bottleneck: str

    @property
    def per_invocation(self) -> float:
        return self.total_cycles / self.invocations

    def seconds(self, device: DeviceSpec = VCK5000) -> float:
        return device.cycles_to_seconds(self.total_cycles)


def simulate_graph(
    scheme: PlioScheme,
    invocations: int = 8,
    device: DeviceSpec = VCK5000,
) -> GraphSimReport:
    """Simulate native-tile executions under a PLIO connectivity scheme.

    Inputs stream in (A and B in parallel — the slower binds), the AIE
    array computes, outputs stream back; all double buffered.
    """
    if invocations < 1:
        raise ValueError("need at least one invocation")
    t_a = scheme.transfer_cycles("A")
    t_b = scheme.transfer_cycles("B")
    t_compute = scheme.compute_cycles()
    t_c = scheme.transfer_cycles("C")
    pipeline = PipelineSimulator(
        [
            PipelineStage("stream_in", lambda t: max(t_a, t_b), slots=2),
            PipelineStage("compute", lambda t: t_compute, slots=2),
            PipelineStage("stream_out", lambda t: t_c, slots=2),
        ]
    )
    result = pipeline.run(invocations)
    return GraphSimReport(
        scheme=scheme,
        invocations=invocations,
        total_cycles=result.makespan,
        stream_a_cycles=t_a * invocations,
        stream_b_cycles=t_b * invocations,
        compute_cycles=result.stage_busy_by_name("compute"),
        stream_c_cycles=result.stage_busy_by_name("stream_out"),
        bottleneck=scheme.bottleneck(),
    )
