"""Cluster-scale sharded serving: process-parallel shard simulators.

A single :class:`~repro.sim.serving.ServingSimulator` tops out at one
core; the vectorized engine moves ~8.6M requests/sec through it, so a
100M-request fleet experiment is still double-digit seconds of wall
clock.  This module shards the *trace* instead of the engine: the
request stream is cut into contiguous slices, each slice is served by an
independent replica of the partition in its own worker process, and the
per-shard streaming reports merge into one fleet report.

The determinism story is exact, not approximate:

* **Sub-trace generation is byte-identical.**  Request ``i`` draws its
  randomness from index-addressable :func:`~repro.sim.streaming.splitmix_uniforms`
  streams, so a worker regenerates its slice ``[lo, hi)`` locally —
  O(shard) memory, nothing pickled — and
  :func:`~repro.sim.streaming.generate_trace_shard` guarantees the
  arrays equal ``generate_trace_soa(...)``'s slice bitwise, including
  the arrival clock (the sequential cumsum carry crosses shard
  boundaries through :func:`~repro.sim.streaming.shard_arrival_offsets`).
* **Per-shard dispatch is byte-identical to an unsharded run over the
  same sub-trace.**  Each worker runs the stock engines (scan / table /
  heap / vectorized) on a stock simulator whose service-time cache is a
  copy of the parent's, so its ``StreamingServingReport.as_dict()``
  equals an in-process ``simulator.run(sub_trace)`` exactly.
* **Merged percentiles keep the sketch bound.**  Sketch merges add
  bucket counts exactly, so a merged quantile is within the documented
  relative error of the exact ranked value of the *union* of the
  per-shard latency streams — independent of shard count or merge
  order (shards always merge in shard order anyway).

Semantically a ``shards=k`` run models *k replicas of the partition*,
each serving its slice of the arrival window with fresh queues: queue
state does not carry across shard boundaries, which is exactly what a
load balancer spraying an arrival-time-partitioned stream over k
identical serving cells would do.  It is **not** bit-equal to one
partition serving the whole trace — that contract belongs to the
engines, not the fleet.

Worker-side ``GLOBAL_STATS`` / ``GLOBAL_METRICS`` registries are
invisible to the parent, so each task resets its process-local
registries, runs, and ships ``dump()`` snapshots home; the parent folds
them via ``merge_dump`` so ``--stats`` / ``--metrics-out`` reflect the
whole fleet (the inline path publishes natively and skips the merge).
"""

from __future__ import annotations

import copy
import io
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.metrics import GLOBAL_METRICS
from repro.obs.windows import ServingMonitor
from repro.perf.cache import _CachePickler
from repro.perf.metrics import GLOBAL_STATS, EvalStats, FaultStats
from repro.sim.serving import DISPATCH_CHUNK, ServingSimulator
from repro.sim.streaming import (
    StreamingServingReport,
    generate_trace_shard,
    shard_arrival_offsets,
    shard_bounds,
)
from repro.workloads.gemm import GemmShape

__all__ = [
    "FleetReport",
    "ShardedServingCluster",
    "serve_sharded",
    "resolve_start_method",
]

#: start methods accepted by :class:`ShardedServingCluster`; ``inline``
#: runs every shard in-process (no pool) — the degenerate but fully
#: deterministic reference mode tests compare the pools against
START_METHODS = ("fork", "spawn", "forkserver", "inline")

#: plans (arrival-offset lists) memoized per cluster; serving the same
#: trace repeatedly (benchmark rounds, sweep retries) pays the serial
#: boundary pass once
_PLAN_CACHE_MAX = 16


def resolve_start_method(start_method: str | None) -> str:
    """``None`` picks ``fork`` where available (Linux), else ``spawn``."""
    if start_method is None:
        available = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in available else "spawn"
    if start_method not in START_METHODS:
        raise ValueError(f"start_method must be one of {START_METHODS}")
    return start_method


def _dumps(payload: Any) -> bytes:
    """Pickle through the MappingProxyType-aware cache pickler.

    Device-degraded fault windows and fleet payloads reference
    ``DeviceSpec``'s read-only tables (mapping proxies the stock pickler
    rejects); the cache pickler reduces them faithfully.
    """
    buffer = io.BytesIO()
    _CachePickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(payload)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
# One simulator per worker process, built once by the pool initializer
# and reused across every task the worker drains.  Module-level so both
# fork and spawn pools can reference the functions by qualified name
# (spawn re-imports this module in the child).

_WORKER_STATE: dict[str, Any] | None = None


def _build_worker_simulator(payload: dict[str, Any]) -> ServingSimulator:
    """A stock simulator over a rebuilt partition, cache pre-seeded.

    The partition is reconstructed from config *names* (configs carry
    no state beyond their registry entry) on the payload's device; the
    parent's service-time table and infeasibility set are copied in, so
    the worker never pays a cold model evaluation and dispatches exactly
    like the parent would.
    """
    from repro.core.multi_acc import AcceleratorPartition
    from repro.mapping.configs import config_by_name

    partition = AcceleratorPartition(
        [config_by_name(name) for name in payload["config_names"]],
        device=payload["device"],
    )
    simulator = ServingSimulator(partition)
    simulator._service_cache.update(payload["service_table"])
    simulator._infeasible.update(payload["infeasible"])
    return simulator


def _worker_init(payload_bytes: bytes) -> None:
    """Pool initializer: build this worker's simulator once."""
    global _WORKER_STATE
    payload = pickle.loads(payload_bytes)
    _WORKER_STATE = {
        "payload": payload,
        "simulator": _build_worker_simulator(payload),
    }


def _run_shard_task(task: tuple) -> bytes:
    """Serve one shard in a pool worker; return the pickled result.

    The process-local registries are reset at task start so the shipped
    dumps are exactly this shard's contribution — under ``fork`` the
    child inherits whatever the parent had accumulated, and without the
    reset those counters would be re-merged (double-counted) at home.
    """
    num_requests, mean_interarrival, seed, lo, hi, offset, monitor_window = task
    state = _WORKER_STATE
    payload = state["payload"]
    simulator: ServingSimulator = state["simulator"]
    GLOBAL_STATS.reset()
    GLOBAL_METRICS.reset()
    trace = generate_trace_shard(
        payload["shapes"],
        num_requests,
        mean_interarrival,
        seed,
        lo=lo,
        hi=hi,
        arrival_offset=offset,
    )
    monitor = (
        ServingMonitor(monitor_window, quantile_error=payload["quantile_error"])
        if monitor_window is not None
        else None
    )
    report = simulator.run(
        trace,
        streaming=True,
        dispatch=payload["dispatch"],
        quantile_error=payload["quantile_error"],
        chunk_size=payload["chunk_size"],
        faults=payload["faults"],
        fault_policy=payload["fault_policy"],
        monitor=monitor,
    )
    return _dumps(
        {
            "report": report,
            "stats": GLOBAL_STATS.dump(),
            "metrics": GLOBAL_METRICS.dump(),
            "monitor": monitor,
        }
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class FleetReport:
    """The merged outcome of one sharded serve.

    ``report`` is the fleet-wide :class:`StreamingServingReport` (counts,
    loads and sums exact; percentiles within the sketch bound of the
    union of the shard streams; ``replicas`` set to the shard count).
    ``stats`` / ``fault_stats`` aggregate the workers' evaluation and
    fault counters — the same numbers the parent registries received.
    ``shard_reports`` is populated only when the serve kept them.
    ``monitor`` is the fleet-wide windowed-telemetry series (per-shard
    monitors merged in shard order), present only when the serve
    attached one via ``monitor_window``.
    """

    report: StreamingServingReport
    shards: int
    start_method: str
    bounds: list[tuple[int, int]]
    stats: EvalStats
    fault_stats: FaultStats
    shard_reports: list[StreamingServingReport] | None = None
    monitor: ServingMonitor | None = None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "shards": self.shards,
            "start_method": self.start_method,
            "bounds": [list(pair) for pair in self.bounds],
            "fleet": self.report.as_dict(),
            "stats": self.stats.as_dict(),
            "fault_stats": self.fault_stats.as_dict(),
        }
        if self.shard_reports is not None:
            out["per_shard"] = [shard.as_dict() for shard in self.shard_reports]
        if self.monitor is not None:
            out["monitor"] = self.monitor.as_dict()
        return out


class ShardedServingCluster:
    """A reusable fleet of shard workers bound to one partition + mix.

    Construction captures everything static — config names, device,
    shape mix, dispatch settings, fault schedule, and the (prewarmed)
    service-time table — into one payload; worker processes build their
    simulator from it once, in the pool initializer, and then drain
    shard tasks with nothing but seven scalars crossing the pipe per
    task.
    :meth:`serve` can therefore be called repeatedly (benchmark rounds,
    sweep points) against a warm pool.

    ``start_method='inline'`` serves every shard in-process on a
    dedicated replica simulator — same code path minus the pool — which
    is what the pooled modes are tested byte-identical against.
    """

    def __init__(
        self,
        simulator: ServingSimulator,
        shapes: Sequence[GemmShape],
        *,
        shards: int,
        dispatch: str = "auto",
        quantile_error: float = 0.01,
        chunk_size: int = DISPATCH_CHUNK,
        start_method: str | None = None,
        max_workers: int | None = None,
        faults=None,
        fault_policy=None,
    ):
        if shards < 1:
            raise ValueError("need at least one shard")
        if not shapes:
            raise ValueError("need at least one shape")
        if dispatch == "scan":
            raise ValueError(
                "sharded serving streams its reports; the scan engine is "
                "exact-mode only (pick auto/vectorized/table/heap)"
            )
        self.shards = shards
        self.start_method = resolve_start_method(start_method)
        self.max_workers = max_workers
        self._simulator = simulator
        # the table must be complete before it is frozen into the
        # payload; prewarm is idempotent and skips cached pairs
        simulator.prewarm(shapes)
        self._payload: dict[str, Any] = {
            "config_names": list(simulator.partition.designs),
            "device": simulator.partition.device,
            "shapes": tuple(shapes),
            "dispatch": dispatch,
            "quantile_error": quantile_error,
            "chunk_size": chunk_size,
            "faults": faults,
            "fault_policy": fault_policy,
            "service_table": dict(simulator._service_cache),
            "infeasible": set(simulator._infeasible),
        }
        self._payload_bytes = _dumps(self._payload)
        self._pool: ProcessPoolExecutor | None = None
        self._plan_cache: dict[tuple, list[float]] = {}

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "ShardedServingCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            workers = min(
                self.max_workers or os.cpu_count() or 1, self.shards
            )
            self._pool = ProcessPoolExecutor(
                max_workers=max(workers, 1),
                mp_context=context,
                initializer=_worker_init,
                initargs=(self._payload_bytes,),
            )
        return self._pool

    # -- planning -------------------------------------------------------
    def plan(
        self, num_requests: int, mean_interarrival: float, seed: int
    ) -> tuple[list[tuple[int, int]], list[float]]:
        """Shard bounds + arrival carries for one trace (memoized).

        The offsets pass is the only serial work in a sharded serve;
        memoizing it per ``(num_requests, mean_interarrival, seed)``
        makes repeat serves of the same trace embarrassingly parallel.
        """
        bounds = shard_bounds(num_requests, self.shards)
        key = (num_requests, mean_interarrival, seed, len(bounds))
        offsets = self._plan_cache.get(key)
        if offsets is None:
            offsets = shard_arrival_offsets(
                num_requests, mean_interarrival, seed, bounds
            )
            if len(self._plan_cache) >= _PLAN_CACHE_MAX:
                self._plan_cache.pop(next(iter(self._plan_cache)))
            self._plan_cache[key] = offsets
        return bounds, offsets

    def warm(self, num_requests: int, mean_interarrival: float, seed: int = 0) -> None:
        """Precompute the plan and spin the pool up outside a timed region."""
        self.plan(num_requests, mean_interarrival, seed)
        if self.start_method != "inline":
            self._ensure_pool()

    # -- serving --------------------------------------------------------
    def serve(
        self,
        num_requests: int,
        mean_interarrival: float,
        seed: int = 0,
        *,
        keep_shard_reports: bool = False,
        monitor_window: float | None = None,
    ) -> FleetReport:
        """Partition, serve every shard, and merge one fleet report.

        Results always merge in shard order, so the merged report is a
        deterministic function of ``(num_requests, mean_interarrival,
        seed, shards)`` regardless of worker scheduling.

        ``monitor_window`` attaches a fresh
        :class:`~repro.obs.windows.ServingMonitor` with that window
        width to every shard worker; the per-shard series merge in
        shard order into ``FleetReport.monitor``, equal to the series an
        inline single-process serve of the same tasks would produce.
        """
        bounds, offsets = self.plan(num_requests, mean_interarrival, seed)
        tasks = [
            (
                num_requests,
                mean_interarrival,
                seed,
                lo,
                hi,
                offsets[index],
                monitor_window,
            )
            for index, (lo, hi) in enumerate(bounds)
        ]
        if self.start_method == "inline":
            reports, stats, fault_stats, monitors = self._serve_inline(tasks)
        else:
            reports, stats, fault_stats, monitors = self._serve_pool(tasks)
        merged = copy.deepcopy(reports[0]) if keep_shard_reports else reports[0]
        for shard_report in reports[1:]:
            merged.merge(shard_report)
        fleet_monitor = None
        if monitor_window is not None:
            fleet_monitor = monitors[0]
            for shard_monitor in monitors[1:]:
                fleet_monitor.merge(shard_monitor)
        return FleetReport(
            report=merged,
            shards=len(bounds),
            start_method=self.start_method,
            bounds=bounds,
            stats=stats,
            fault_stats=fault_stats,
            shard_reports=list(reports) if keep_shard_reports else None,
            monitor=fleet_monitor,
        )

    def _serve_pool(
        self, tasks: list[tuple]
    ) -> tuple[
        list[StreamingServingReport],
        EvalStats,
        FaultStats,
        list[ServingMonitor | None],
    ]:
        pool = self._ensure_pool()
        stats = EvalStats()
        fault_stats = FaultStats()
        reports: list[StreamingServingReport] = []
        monitors: list[ServingMonitor | None] = []
        # Executor.map preserves task order regardless of completion order
        for blob in pool.map(_run_shard_task, tasks):
            result = pickle.loads(blob)
            reports.append(result["report"])
            monitors.append(result["monitor"])
            shard_stats = result["stats"]
            stats.merge(shard_stats["total"])
            fault_stats.merge(shard_stats["faults"])
            GLOBAL_STATS.merge_dump(shard_stats)
            GLOBAL_METRICS.merge_dump(result["metrics"])
        return reports, stats, fault_stats, monitors

    def _serve_inline(
        self, tasks: list[tuple]
    ) -> tuple[
        list[StreamingServingReport],
        EvalStats,
        FaultStats,
        list[ServingMonitor | None],
    ]:
        """The no-pool reference path: every shard served in-process.

        Runs on a dedicated replica simulator built exactly like a
        worker's (same payload), so dispatch and cache behaviour match
        the pooled modes; stats publish into the parent registries
        natively (no dump/merge round trip to double-count).
        """
        payload = self._payload
        simulator = _build_worker_simulator(payload)
        eval_before = GLOBAL_STATS.dump()
        reports = []
        monitors: list[ServingMonitor | None] = []
        for task in tasks:
            num_requests, mean_interarrival, seed, lo, hi, offset, window = task
            trace = generate_trace_shard(
                payload["shapes"],
                num_requests,
                mean_interarrival,
                seed,
                lo=lo,
                hi=hi,
                arrival_offset=offset,
            )
            monitor = (
                ServingMonitor(window, quantile_error=payload["quantile_error"])
                if window is not None
                else None
            )
            monitors.append(monitor)
            reports.append(
                simulator.run(
                    trace,
                    streaming=True,
                    dispatch=payload["dispatch"],
                    quantile_error=payload["quantile_error"],
                    chunk_size=payload["chunk_size"],
                    faults=payload["faults"],
                    fault_policy=payload["fault_policy"],
                    monitor=monitor,
                )
            )
        eval_after = GLOBAL_STATS.dump()
        stats = eval_after["total"].delta_since(eval_before["total"])
        before_faults, after_faults = eval_before["faults"], eval_after["faults"]
        fault_stats = FaultStats(
            **{
                key: getattr(after_faults, key) - getattr(before_faults, key)
                for key in after_faults.as_dict()
            }
        )
        return reports, stats, fault_stats, monitors


def serve_sharded(
    simulator: ServingSimulator,
    shapes: Sequence[GemmShape],
    num_requests: int,
    mean_interarrival: float,
    *,
    shards: int,
    seed: int = 0,
    dispatch: str = "auto",
    quantile_error: float = 0.01,
    chunk_size: int = DISPATCH_CHUNK,
    start_method: str | None = None,
    max_workers: int | None = None,
    faults=None,
    fault_policy=None,
    keep_shard_reports: bool = False,
    monitor_window: float | None = None,
) -> FleetReport:
    """One-shot sharded serve: build a cluster, serve, tear it down."""
    with ShardedServingCluster(
        simulator,
        shapes,
        shards=shards,
        dispatch=dispatch,
        quantile_error=quantile_error,
        chunk_size=chunk_size,
        start_method=start_method,
        max_workers=max_workers,
        faults=faults,
        fault_policy=fault_policy,
    ) as cluster:
        return cluster.serve(
            num_requests,
            mean_interarrival,
            seed,
            keep_shard_reports=keep_shard_reports,
            monitor_window=monitor_window,
        )
