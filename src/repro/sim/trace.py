"""Execution traces: turn pipeline results into inspectable timelines.

The paper reads its overlap/serialization stories off aiesimulator
timelines; this module provides the equivalent view for our simulators —
a typed event list extracted from a :class:`PipelineResult` plus a
text-mode Gantt rendering, so a user can *see* double buffering overlap
(or single buffering serialise) instead of trusting a scalar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import PipelineResult


@dataclass(frozen=True)
class TraceEvent:
    """One (stage, item) execution interval."""

    stage: str
    item: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class ExecutionTrace:
    """Typed timeline extracted from a pipeline run."""

    def __init__(self, result: PipelineResult):
        self.result = result
        self.events = [
            TraceEvent(
                stage=result.stage_names[s],
                item=t,
                start=result.start_times[s][t],
                end=result.end_times[s][t],
            )
            for s in range(len(result.stage_names))
            for t in range(result.num_items)
            if result.end_times[s][t] > result.start_times[s][t]
        ]

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        return self.result.makespan

    def events_for(self, stage: str) -> list[TraceEvent]:
        return [e for e in self.events if e.stage == stage]

    def overlap_seconds(self, stage_a: str, stage_b: str) -> float:
        """Total time during which both stages were simultaneously busy.

        Nonzero overlap between a transfer stage and the compute stage is
        the signature of double buffering.
        """
        total = 0.0
        for a in self.events_for(stage_a):
            for b in self.events_for(stage_b):
                total += max(0.0, min(a.end, b.end) - max(a.start, b.start))
        return total

    def stage_utilization(self, stage: str) -> float:
        """Fraction of the makespan the stage spent busy."""
        if self.makespan == 0:
            return 0.0
        return sum(e.duration for e in self.events_for(stage)) / self.makespan

    def idle_seconds(self, stage: str) -> float:
        return self.makespan - sum(e.duration for e in self.events_for(stage))

    # ------------------------------------------------------------------
    def events_json(self) -> list[dict]:
        """The event list as plain records — the single source both the
        text Gantt and the Chrome-trace exporter render from."""
        return [
            {
                "stage": event.stage,
                "item": event.item,
                "start": event.start,
                "end": event.end,
                "duration": event.duration,
            }
            for event in self.events
        ]

    def gantt(self, width: int = 72) -> str:
        """Text-mode Gantt chart: one row per stage, one glyph per slot."""
        if width < 1:
            raise ValueError(f"width must be a positive integer, got {width}")
        if self.makespan <= 0:
            return "(empty trace)"
        scale = width / self.makespan
        by_stage: dict[str, list[dict]] = {
            stage: [] for stage in self.result.stage_names
        }
        for record in self.events_json():
            by_stage[record["stage"]].append(record)
        lines = []
        for stage in self.result.stage_names:
            row = [" "] * width
            for record in by_stage[stage]:
                lo = min(width - 1, int(record["start"] * scale))
                hi = min(width, max(lo + 1, int(record["end"] * scale)))
                glyph = str(record["item"] % 10)
                for i in range(lo, hi):
                    row[i] = glyph
            lines.append(f"{stage:>12} |{''.join(row)}|")
        axis = f"{'':>12} 0{'':{max(width - 2, 0)}}{self.makespan:.3g}"
        return "\n".join(lines + [axis])
