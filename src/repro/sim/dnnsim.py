"""Dependency-aware DNN execution on a composed accelerator partition.

:mod:`repro.core.multi_acc` schedules independent jobs; a real DNN's
layers have precedence (a layer's GEMM waits for its inputs).  This
simulator builds the transformer layer graph — per block: QKV (parallel)
-> attention out -> MLP up -> MLP down, chained across blocks — assigns
each GEMM to an accelerator of the partition, and runs the event
simulator to get the true makespan, per-accelerator utilisation and the
critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.multi_acc import AcceleratorPartition
from repro.sim.events import EventSimulator, SimulationResult, Task
from repro.workloads.transformer import TransformerConfig


@dataclass(frozen=True)
class DnnRunResult:
    """Outcome of simulating one forward pass."""

    model: TransformerConfig
    tokens: int
    simulation: SimulationResult
    assignments: dict[str, str]  # task name -> accelerator

    @property
    def makespan(self) -> float:
        return self.simulation.makespan

    def utilization(self) -> dict[str, float]:
        accelerators = set(self.assignments.values())
        return {
            name: self.simulation.resource_utilization(name) for name in accelerators
        }

    def critical_path(self) -> list[str]:
        return self.simulation.critical_path()


class DnnSimulator:
    """Simulates transformer forward passes over a partition."""

    def __init__(self, partition: AcceleratorPartition):
        self.partition = partition

    def _layer_tasks(
        self, model: TransformerConfig, tokens: int
    ) -> tuple[list[Task], dict[str, str]]:
        tasks: list[Task] = []
        assignments: dict[str, str] = {}
        previous_block_out: str | None = None
        gemms = {g.name: g for g in model.layer_gemms(tokens)}
        projections = [name for name in gemms if name.endswith("_proj")]

        for block in range(model.num_layers):
            def _add(name: str, depends: tuple[str, ...]) -> str:
                gemm = gemms[name]
                accelerator, seconds = self.partition.best_accelerator(gemm.shape)
                task_name = f"b{block}.{name}"
                tasks.append(
                    Task(
                        name=task_name,
                        resource=accelerator,
                        duration=seconds,
                        depends_on=depends,
                    )
                )
                assignments[task_name] = accelerator
                return task_name

            entry = (previous_block_out,) if previous_block_out else ()
            proj_tasks = tuple(_add(name, entry) for name in projections)
            attn = _add("attn_out", proj_tasks)
            up = _add("mlp_up", (attn,))
            down = _add("mlp_down", (up,))
            previous_block_out = down
        return tasks, assignments

    def run(self, model: TransformerConfig, tokens: int) -> DnnRunResult:
        tasks, assignments = self._layer_tasks(model, tokens)
        simulation = EventSimulator(tasks).run()
        return DnnRunResult(
            model=model,
            tokens=tokens,
            simulation=simulation,
            assignments=assignments,
        )
