"""Chaos engineering for the serving simulator: time-varying faults.

:mod:`repro.hw.faults` derives *static* degraded devices (fused-off AIE
columns, lost DDR channels, derated clocks).  This module lifts those
injectors into **time-varying fault schedules** for
:class:`~repro.sim.serving.ServingSimulator`: an accelerator goes down
at ``t`` and comes back at ``t'``, or serves through a degraded
:class:`~repro.hw.specs.DeviceSpec` for a window of the run — the
yield/degradation scenarios a deployed Versal board actually faces.

The pieces:

* :class:`FaultWindow` — one half-open window ``[start, end)`` during
  which an accelerator is ``down`` or ``degraded`` (by a service-time
  ``factor`` or by a replacement ``device`` built with the
  ``repro.hw.faults`` injectors).
* :class:`FaultSchedule` — a validated, ordered set of windows; windows
  for the same accelerator must not overlap, so the accelerator's state
  at any instant is unambiguous.  Schedules compose with ``+``.
* :class:`FaultEvent` / :class:`RecoveryEvent` — the onset/clearance
  records a fault run attaches to its serving report.
* :class:`FaultPolicy` — what happens to a request whose execution a
  fault kills: retry with exponential backoff (bounded by
  ``max_retries``), failing over to surviving accelerators because the
  downed one is unavailable at the retry, and shed with accounting when
  the budget is exhausted or nothing is ever feasible.
* :func:`chaos_schedule` — a **seeded, deterministic** random schedule
  that composes the ``hw.faults`` injectors into outage/degradation
  windows across a partition (the "as many scenarios as you can
  imagine" generator).
* :func:`parse_fault_spec` — the CLI grammar behind
  ``versal-gemm serve --faults SPEC --fault-seed N``.

Determinism guarantee: a schedule is plain data; given the same trace,
schedule, policy, and dispatch engine the fault run is bit-reproducible
(and identical across the scan/table/heap engines — enforced by
``tests/conformance``).  :func:`chaos_schedule` draws from the same
splitmix hash as trace generation, so ``--fault-seed`` reproduces the
schedule exactly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.hw.faults import (
    FaultError,
    derate_clock,
    derate_dram,
    disable_aie_columns,
    disable_dram_channels,
)
from repro.hw.specs import DeviceSpec
from repro.sim.streaming import splitmix_uniforms

_KINDS = ("down", "degraded")


@dataclass(frozen=True)
class FaultEvent:
    """A fault's onset: the accelerator leaves healthy service at ``time``."""

    time: float
    accelerator: str
    kind: str
    detail: str = ""


@dataclass(frozen=True)
class RecoveryEvent:
    """A fault clears: the accelerator returns to healthy service."""

    time: float
    accelerator: str
    kind: str
    detail: str = ""


@dataclass(frozen=True)
class FaultWindow:
    """One accelerator's fault over the half-open window ``[start, end)``.

    ``kind="down"`` makes the accelerator unavailable; ``kind="degraded"``
    keeps it serving but slower — either by a plain service-time
    ``factor`` (>= 1) or through a replacement ``device`` built with the
    :mod:`repro.hw.faults` injectors (the design is re-validated and
    re-estimated on it; a design that does not survive the degraded
    device is treated as down for the window).
    """

    accelerator: str
    start: float
    end: float
    kind: str
    factor: float | None = None
    device: DeviceSpec | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise FaultError(f"fault kind must be one of {_KINDS}, got {self.kind!r}")
        if not (self.start >= 0 and self.end > self.start):
            raise FaultError(
                f"fault window needs 0 <= start < end, got [{self.start}, {self.end})"
            )
        if self.kind == "down":
            if self.factor is not None or self.device is not None:
                raise FaultError("down windows take neither factor nor device")
        else:
            if (self.factor is None) == (self.device is None):
                raise FaultError(
                    "degraded windows take exactly one of factor= or device="
                )
            if self.factor is not None and not self.factor >= 1.0:
                raise FaultError(
                    f"degradation factor must be >= 1, got {self.factor!r}"
                )

    @property
    def detail(self) -> str:
        if self.label:
            return self.label
        if self.kind == "down":
            return "down"
        if self.factor is not None:
            return f"{self.factor:g}x slower"
        return self.device.name

    def duration(self) -> float:
        return self.end - self.start


class FaultSchedule:
    """A validated, time-ordered set of fault windows.

    Windows belonging to the same accelerator must not overlap (the
    accelerator's state at any instant must be unambiguous); windows of
    different accelerators may.  Schedules are immutable plain data and
    compose with ``+``.
    """

    def __init__(self, windows: Sequence[FaultWindow] = ()):
        ordered = sorted(windows, key=lambda w: (w.start, w.end, w.accelerator))
        last_end: dict[str, float] = {}
        for window in ordered:
            previous = last_end.get(window.accelerator)
            if previous is not None and window.start < previous:
                raise FaultError(
                    f"overlapping fault windows for {window.accelerator!r} "
                    f"(window starting at {window.start} overlaps one ending "
                    f"at {previous})"
                )
            last_end[window.accelerator] = window.end
        self.windows: tuple[FaultWindow, ...] = tuple(ordered)

    # -- construction helpers ------------------------------------------
    @staticmethod
    def down(accelerator: str, start: float, end: float) -> "FaultSchedule":
        return FaultSchedule([FaultWindow(accelerator, start, end, "down")])

    @staticmethod
    def degraded(
        accelerator: str,
        start: float,
        end: float,
        *,
        factor: float | None = None,
        device: DeviceSpec | None = None,
        label: str = "",
    ) -> "FaultSchedule":
        return FaultSchedule(
            [
                FaultWindow(
                    accelerator, start, end, "degraded",
                    factor=factor, device=device, label=label,
                )
            ]
        )

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self.windows + other.windows)

    def __len__(self) -> int:
        return len(self.windows)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.windows == other.windows

    # -- queries --------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.windows

    def accelerators(self) -> tuple[str, ...]:
        return tuple(sorted({w.accelerator for w in self.windows}))

    def for_accelerator(self, name: str) -> tuple[FaultWindow, ...]:
        return tuple(w for w in self.windows if w.accelerator == name)

    def events(self) -> list[FaultEvent | RecoveryEvent]:
        """Onset/clearance records, ordered by (time, accelerator)."""
        records: list[FaultEvent | RecoveryEvent] = []
        for window in self.windows:
            records.append(
                FaultEvent(window.start, window.accelerator, window.kind, window.detail)
            )
            records.append(
                RecoveryEvent(window.end, window.accelerator, window.kind, window.detail)
            )
        records.sort(key=lambda e: (e.time, e.accelerator, isinstance(e, RecoveryEvent)))
        return records

    def transitions(self) -> tuple[float, ...]:
        """Every instant the schedule changes some accelerator's state."""
        times = {w.start for w in self.windows} | {w.end for w in self.windows}
        return tuple(sorted(times))

    def windows_overlapping(self, start: float, end: float) -> tuple[FaultWindow, ...]:
        """Fault windows intersecting the half-open span ``[start, end)``.

        The windowed-timeline renderers use this to mark which telemetry
        windows had a fault active (a window touching only the span's
        ``end`` instant does not count, matching half-open semantics).
        """
        if not end > start:
            raise FaultError(f"need start < end, got [{start}, {end})")
        return tuple(
            window
            for window in self.windows
            if window.start < end and window.end > start
        )

    def downtime(self, horizon: float) -> dict[str, float]:
        """Seconds each faulted accelerator spends *down* within
        ``[0, horizon]`` (degraded windows keep the accelerator serving,
        so they do not count)."""
        out: dict[str, float] = {}
        for window in self.windows:
            if window.kind != "down":
                continue
            overlap = max(0.0, min(window.end, horizon) - min(window.start, horizon))
            out[window.accelerator] = out.get(window.accelerator, 0.0) + overlap
        return out


@dataclass(frozen=True)
class FaultPolicy:
    """What happens to requests a fault interrupts.

    A killed request retries after an exponential backoff
    ``min(backoff_base * backoff_factor**(attempt-1), backoff_cap)``
    measured from the kill instant; the downed accelerator is
    unavailable at the retry, so the request *fails over* to whatever
    survives.  After ``max_retries`` kills the request is **shed** with
    accounting (it appears in the report's shed list, never as
    completed).
    """

    max_retries: int = 3
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    backoff_cap: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0:
            raise ValueError("backoff_base must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")

    def backoff(self, attempt: int) -> float:
        """Backoff before re-attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_cap,
        )


DEFAULT_FAULT_POLICY = FaultPolicy()


# ----------------------------------------------------------------------
# seeded chaos composition
# ----------------------------------------------------------------------

#: device injectors a chaos schedule composes for degraded windows, in
#: the order the seeded draw indexes them
_CHAOS_INJECTORS = (
    ("clock derate 0.8", lambda device: derate_clock(device, 0.8)),
    ("dram derate 0.5", lambda device: derate_dram(device, 0.5)),
    ("1 dram channel down", lambda device: disable_dram_channels(device, 1)),
    ("1 aie column fused", lambda device: disable_aie_columns(device, 1)),
)


def chaos_schedule(
    accelerators: Sequence[str],
    horizon: float,
    seed: int = 0,
    *,
    device: DeviceSpec | None = None,
    outages_per_accelerator: int = 2,
    mean_outage_fraction: float = 0.08,
    down_fraction: float = 0.5,
) -> FaultSchedule:
    """A seeded, deterministic random fault schedule over a partition.

    Each accelerator gets ``outages_per_accelerator`` windows spread
    over ``[0, horizon)``: one per equal time slot, with seeded start,
    duration (around ``mean_outage_fraction`` of the horizon, clamped
    inside the slot so windows never overlap), and kind — ``down`` with
    probability ``down_fraction``, otherwise ``degraded`` through one of
    the :mod:`repro.hw.faults` injectors when ``device`` is given (a
    plain service-time factor in ``[1.5, 3.5)`` otherwise).

    The draw comes from the same splitmix hash as trace generation, so
    a ``(accelerators, horizon, seed)`` triple always produces the same
    schedule — chaos runs are replayable.
    """
    if horizon <= 0:
        raise FaultError("chaos horizon must be positive")
    if outages_per_accelerator < 1:
        raise FaultError("need at least one outage per accelerator")
    if not accelerators:
        raise FaultError("need at least one accelerator")
    windows: list[FaultWindow] = []
    draws_per_window = 4
    for acc_index, name in enumerate(sorted(accelerators)):
        base = acc_index * outages_per_accelerator * draws_per_window
        uniforms = splitmix_uniforms(
            seed,
            np.arange(
                base, base + outages_per_accelerator * draws_per_window,
                dtype=np.uint64,
            ),
        )
        slot = horizon / outages_per_accelerator
        for outage in range(outages_per_accelerator):
            u_start, u_len, u_kind, u_pick = uniforms[
                outage * draws_per_window : (outage + 1) * draws_per_window
            ]
            slot_begin = outage * slot
            start = slot_begin + float(u_start) * slot * 0.5
            duration = min(
                horizon * mean_outage_fraction * (0.5 + float(u_len)),
                slot_begin + slot - start,
            )
            end = start + duration
            if end <= start:
                continue
            if float(u_kind) < down_fraction:
                windows.append(FaultWindow(name, start, end, "down"))
            elif device is not None:
                label, injector = _CHAOS_INJECTORS[
                    int(float(u_pick) * len(_CHAOS_INJECTORS))
                ]
                windows.append(
                    FaultWindow(
                        name, start, end, "degraded",
                        device=injector(device), label=label,
                    )
                )
            else:
                factor = 1.5 + 2.0 * float(u_pick)
                windows.append(
                    FaultWindow(name, start, end, "degraded", factor=factor)
                )
    return FaultSchedule(windows)


# ----------------------------------------------------------------------
# CLI spec grammar
# ----------------------------------------------------------------------

_SPEC_HELP = (
    "fault spec: 'chaos' (seeded random schedule) or comma-separated "
    "windows ACC:down:T0:T1, ACC:slow:FACTOR:T0:T1, ACC:clock:FRACTION:T0:T1, "
    "ACC:dram:CHANNELS:T0:T1, ACC:drambw:FRACTION:T0:T1, ACC:cols:N:T0:T1"
)


def parse_fault_spec(
    spec: str,
    accelerators: Sequence[str],
    *,
    device: DeviceSpec | None = None,
    seed: int = 0,
    horizon: float = 1.0,
) -> FaultSchedule:
    """Parse the CLI's ``--faults`` grammar into a :class:`FaultSchedule`.

    ``spec`` is either ``chaos`` / ``chaos:K`` (a seeded random schedule
    with ``K`` outages per accelerator over ``horizon``) or a
    comma-separated list of explicit windows::

        C5:down:0.05:0.10          accelerator C5 down in [0.05, 0.10)
        C3:slow:2.5:0.10:0.30      C3 serves 2.5x slower
        C5:clock:0.8:0.0:0.2       C5 on a derate_clock(0.8) device
        C3:dram:2:0.1:0.4          C3 with 2 DRAM channels disabled
        C5:drambw:0.5:0.1:0.4      C5 with DRAM bandwidth derated to 50%
        C3:cols:1:0.2:0.5          C3 with one AIE column fused off
    """
    spec = spec.strip()
    if not spec:
        raise FaultError("empty fault spec; " + _SPEC_HELP)
    if spec == "chaos" or spec.startswith("chaos:"):
        outages = 2
        if spec.startswith("chaos:"):
            try:
                outages = int(spec.split(":", 1)[1])
            except ValueError:
                raise FaultError(f"bad chaos outage count in {spec!r}") from None
        return chaos_schedule(
            accelerators, horizon, seed,
            device=device, outages_per_accelerator=outages,
        )
    known = set(accelerators)
    schedule = FaultSchedule()
    for item in (token.strip() for token in spec.split(",") if token.strip()):
        parts = item.split(":")
        name = parts[0]
        if name not in known:
            raise FaultError(
                f"unknown accelerator {name!r} in fault spec "
                f"(partition has {sorted(known)})"
            )
        try:
            if len(parts) == 4 and parts[1] == "down":
                start, end = float(parts[2]), float(parts[3])
                schedule = schedule + FaultSchedule.down(name, start, end)
                continue
            if len(parts) == 5:
                kind, value = parts[1], parts[2]
                start, end = float(parts[3]), float(parts[4])
                if kind == "slow":
                    schedule = schedule + FaultSchedule.degraded(
                        name, start, end,
                        factor=float(value), label=f"{float(value):g}x slower",
                    )
                    continue
                if kind in ("clock", "dram", "drambw", "cols"):
                    if device is None:
                        raise FaultError(
                            f"{kind!r} windows need a device to degrade"
                        )
                    injected = {
                        "clock": lambda: derate_clock(device, float(value)),
                        "drambw": lambda: derate_dram(device, float(value)),
                        "dram": lambda: disable_dram_channels(device, int(value)),
                        "cols": lambda: disable_aie_columns(device, int(value)),
                    }[kind]()
                    schedule = schedule + FaultSchedule.degraded(
                        name, start, end,
                        device=injected, label=f"{kind} {value}",
                    )
                    continue
        except FaultError:
            raise
        except ValueError:
            raise FaultError(f"bad fault window {item!r}; " + _SPEC_HELP) from None
        raise FaultError(f"bad fault window {item!r}; " + _SPEC_HELP)
    if schedule.is_empty:
        raise FaultError("fault spec produced no windows; " + _SPEC_HELP)
    return schedule
