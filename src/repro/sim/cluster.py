"""Chunk-level cluster simulation: PLIO deliveries feeding a 16-AIE design.

Fig. 12 reasons about *when each AIE can start*: with 3 packet-switched
PLIOs "the 16th AIE has to wait 16 time steps".  The scheme-level model
(:mod:`repro.mapping.plio_schemes`) captures the aggregate period; this
simulator reproduces the statement literally — it enumerates every chunk
delivery, serialises them on their PLIOs, starts each AIE when both of
its input chunks have arrived, pipes partial sums down the cascade
chains, and queues the C outputs on the output PLIOs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.kernel_timing import PLIO_BYTES_PER_CYCLE, compute_cycles
from repro.mapping.plio_schemes import PlioScheme
from repro.mapping.switching import SwitchingKind

#: Cycles to hand a partial sum across one cascade link.
CASCADE_HOP_CYCLES = 8.0


@dataclass(frozen=True)
class Delivery:
    """One serialized PLIO transmission."""

    plio: str
    chunk: tuple[int, int]
    targets: tuple[tuple[int, int, int], ...]  # (im, lk, jn) kernel coords
    start: float
    end: float


@dataclass
class ClusterSimReport:
    """Timeline of one native-tile execution on the cluster."""

    scheme: PlioScheme
    deliveries: list[Delivery]
    #: cycle at which each kernel (im, lk, jn) starts computing
    start_times: dict[tuple[int, int, int], float]
    #: cycle at which each pack's final partial reaches its tail
    pack_done: dict[tuple[int, int], float]
    #: cycle at which the last C chunk has streamed out
    completion: float

    @property
    def first_start(self) -> float:
        return min(self.start_times.values())

    @property
    def last_start(self) -> float:
        return max(self.start_times.values())

    def start_wait_steps(self, chunk_cycles: float) -> float:
        """The Fig. 12(a) statement: how many chunk-times the last AIE
        waits before it can begin."""
        return self.last_start / chunk_cycles


def _schedule_matrix(
    scheme: PlioScheme, matrix: str
) -> tuple[list[Delivery], dict[tuple[int, int, int], float]]:
    """Serialise one input matrix's deliveries over its PLIOs."""
    g = scheme.config.grouping
    eb = scheme.config.precision.element_bytes
    kernel = scheme.config.kernel
    conn = scheme.conn_a if matrix == "A" else scheme.conn_b
    chunk_bytes = kernel.bytes_a(eb) if matrix == "A" else kernel.bytes_b(eb)
    chunk_cycles = chunk_bytes / PLIO_BYTES_PER_CYCLE

    if matrix == "A":
        chunks = [(im, lk) for im in range(g.gm) for lk in range(g.gk)]
        consumers = {
            (im, lk): tuple((im, lk, jn) for jn in range(g.gn)) for im, lk in chunks
        }
    else:
        chunks = [(lk, jn) for lk in range(g.gk) for jn in range(g.gn)]
        consumers = {
            (lk, jn): tuple((im, lk, jn) for im in range(g.gm)) for lk, jn in chunks
        }

    # expand to serialized transmissions according to the switching kind
    transmissions: list[tuple[tuple[int, int], tuple[tuple[int, int, int], ...]]] = []
    if conn.kind is SwitchingKind.PACKET:
        for chunk in chunks:
            for target in consumers[chunk]:
                transmissions.append((chunk, (target,)))
    else:  # HYBRID / CIRCUIT: one multicast per distinct chunk
        for chunk in chunks:
            transmissions.append((chunk, consumers[chunk]))

    deliveries: list[Delivery] = []
    arrivals: dict[tuple[int, int, int], float] = {}
    plio_free = [0.0] * conn.num_plios
    for index, (chunk, targets) in enumerate(transmissions):
        plio = index % conn.num_plios
        start = plio_free[plio]
        end = start + chunk_cycles
        plio_free[plio] = end
        deliveries.append(
            Delivery(f"{matrix}{plio}", chunk, targets, start, end)
        )
        for target in targets:
            arrivals[target] = max(arrivals.get(target, 0.0), end)
    return deliveries, arrivals


def simulate_cluster(scheme: PlioScheme) -> ClusterSimReport:
    """Simulate one native-tile execution at chunk granularity."""
    g = scheme.config.grouping
    kernel_cycles = compute_cycles(scheme.config.kernel, scheme.config.precision)

    deliveries_a, arrivals_a = _schedule_matrix(scheme, "A")
    deliveries_b, arrivals_b = _schedule_matrix(scheme, "B")

    start_times: dict[tuple[int, int, int], float] = {}
    for im in range(g.gm):
        for lk in range(g.gk):
            for jn in range(g.gn):
                key = (im, lk, jn)
                start_times[key] = max(arrivals_a[key], arrivals_b[key])

    # cascade chains: partial sums flow lk = 0 .. gk-1; the chain's tail
    # finishes once every member has computed and forwarded
    pack_done: dict[tuple[int, int], float] = {}
    for im in range(g.gm):
        for jn in range(g.gn):
            ready = 0.0
            for lk in range(g.gk):
                begin = max(start_times[(im, lk, jn)], ready)
                ready = begin + kernel_cycles + CASCADE_HOP_CYCLES
            pack_done[(im, jn)] = ready

    # C chunks queue on the output PLIOs in pack-completion order
    eb = scheme.config.precision.element_bytes
    c_cycles = scheme.config.kernel.bytes_c(eb) / PLIO_BYTES_PER_CYCLE
    out_free = [0.0] * scheme.conn_c.num_plios
    completion = 0.0
    for index, (pack, done) in enumerate(sorted(pack_done.items(), key=lambda kv: kv[1])):
        plio = index % scheme.conn_c.num_plios
        start = max(done, out_free[plio])
        out_free[plio] = start + c_cycles
        completion = max(completion, out_free[plio])

    return ClusterSimReport(
        scheme=scheme,
        deliveries=deliveries_a + deliveries_b,
        start_times=start_times,
        pack_done=pack_done,
        completion=completion,
    )
