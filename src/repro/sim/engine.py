"""Discrete-event core: a buffered-pipeline simulator.

Every dataflow in the paper's design is a linear pipeline of stages
connected by single or double buffers: DRAM tiles flow through
``load -> AIE -> store``, native tiles through ``stream-in -> compute ->
stream-out``.  Buffer depth is the knob the paper studies (double vs
single buffering, Sections IV-A and V-G): a double buffer (2 slots) lets
adjacent stages overlap; a single buffer (1 slot) serialises them.

:class:`PipelineSimulator` computes exact start/end times for every
(item, stage) pair under those constraints:

* a stage starts an item when the item has left the previous stage,
* a stage processes one item at a time, in order,
* a stage cannot *finish* handing an item downstream until the
  downstream buffer has a free slot (``slots`` releases happen when the
  downstream stage finishes the item ``slots`` positions earlier).

This reproduces pipeline fill/drain and blocking effects the closed-form
``#tiles * max(...)`` analytical model abstracts away — exactly the gap
the paper observes between its model and hardware runs.

Constant-service stages (``service`` given as a number rather than a
callable) additionally unlock a vectorized solver: after a scalar
warm-up it detects which constraint binds each stage in steady state
(its own previous item, the upstream hand-off, or downstream
backpressure), replays the remaining items as NumPy recurrences, and
*verifies* the replay elementwise against every constraint — any
violation falls back to the exact loop at the first bad item, so the
result is always bit-identical to the scalar simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, Union

import numpy as np

from repro.obs.spans import span

#: ``run(vectorize=None)`` auto-enables the vectorized solver at this size
VECTORIZE_MIN_ITEMS = 512


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage.

    ``service`` maps an item index to its processing time; a plain
    number means every item takes that constant time (and makes the
    stage eligible for the vectorized solver).  ``slots`` is the
    capacity of the buffer *feeding* this stage (2 = double buffered,
    1 = single buffered); the first stage's value is ignored (its input
    is always available).
    """

    name: str
    service: Union[Callable[[int], float], float, int]
    slots: int = 2

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("buffer needs at least one slot")
        if not callable(self.service) and float(self.service) < 0:
            raise ValueError("service time must be non-negative")

    def service_fn(self) -> Callable[[int], float]:
        """The per-item service callable (constants are wrapped)."""
        if callable(self.service):
            return self.service
        value = float(self.service)
        return lambda _item: value

    @property
    def constant_service(self) -> float | None:
        """The constant service time, or None for callable services."""
        if callable(self.service):
            return None
        return float(self.service)


@dataclass
class PipelineResult:
    """Timing of a pipeline run."""

    stage_names: list[str]
    num_items: int
    #: end[s][t]: when stage s finished item t
    end_times: list[list[float]]
    #: start[s][t]: when stage s began item t
    start_times: list[list[float]]

    @property
    def makespan(self) -> float:
        if self.num_items == 0:
            return 0.0
        return self.end_times[-1][-1]

    def stage_busy(self, stage: int) -> float:
        """Total service time stage ``stage`` spent processing."""
        return sum(
            e - s for s, e in zip(self.start_times[stage], self.end_times[stage])
        )

    def stage_busy_by_name(self, name: str) -> float:
        return self.stage_busy(self.stage_names.index(name))

    def bottleneck_stage(self) -> str:
        """Name of the stage with the largest total busy time."""
        busiest = max(range(len(self.stage_names)), key=self.stage_busy)
        return self.stage_names[busiest]


class PipelineSimulator:
    """Simulates items flowing through buffered stages."""

    def __init__(self, stages: Sequence[PipelineStage]):
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = list(stages)

    def derated(self, factors: Mapping[str, float]) -> "PipelineSimulator":
        """A new simulator with named stages' service times scaled.

        ``factors`` maps stage names to multiplicative slowdowns (> 0);
        unnamed stages keep their services.  Constant services stay
        constants (so the derated pipeline remains eligible for the
        vectorized solver); callable services are wrapped.  This is the
        pipeline-level counterpart of the serving layer's degraded
        windows: "what does this dataflow's fill/drain look like with
        the store stage at half bandwidth?"
        """
        names = {stage.name for stage in self.stages}
        unknown = set(factors) - names
        if unknown:
            raise ValueError(
                f"unknown pipeline stages {sorted(unknown)}; have {sorted(names)}"
            )
        for name, factor in factors.items():
            if not factor > 0:
                raise ValueError(f"derate factor for {name!r} must be positive")
        derated_stages = []
        for stage in self.stages:
            factor = factors.get(stage.name)
            if factor is None:
                derated_stages.append(stage)
            elif callable(stage.service):
                inner = stage.service
                derated_stages.append(
                    PipelineStage(
                        name=stage.name,
                        service=lambda item, _fn=inner, _f=factor: _fn(item) * _f,
                        slots=stage.slots,
                    )
                )
            else:
                derated_stages.append(
                    PipelineStage(
                        name=stage.name,
                        service=float(stage.service) * factor,
                        slots=stage.slots,
                    )
                )
        return PipelineSimulator(derated_stages)

    def run(self, num_items: int, vectorize: bool | None = None) -> PipelineResult:
        """Simulate ``num_items`` items through the pipeline.

        ``vectorize=None`` (default) picks the vectorized solver
        automatically when every stage has a constant service time and
        the run is long enough to amortize the warm-up; ``True`` opts in
        for any size (callable services still fall back to the exact
        loop); ``False`` forces the exact loop.  Both paths produce
        bit-identical timings.
        """
        if num_items < 0:
            raise ValueError("num_items must be non-negative")
        constants = [stage.constant_service for stage in self.stages]
        eligible = all(value is not None for value in constants)
        if vectorize is None:
            vectorize = eligible and num_items >= VECTORIZE_MIN_ITEMS
        with span(
            "pipeline.run",
            track="pipeline",
            items=num_items,
            stages=len(self.stages),
            vectorize=bool(vectorize and eligible),
        ):
            if vectorize and eligible and num_items > 0:
                return self._run_vectorized(num_items, constants)
            return self._run_exact(num_items)

    def _run_exact(self, num_items: int) -> PipelineResult:
        n_stages = len(self.stages)
        services = [stage.service_fn() for stage in self.stages]
        start = [[0.0] * num_items for _ in range(n_stages)]
        end = [[0.0] * num_items for _ in range(n_stages)]
        for t in range(num_items):
            for s in range(n_stages):
                ready = end[s - 1][t] if s > 0 else 0.0
                stage_free = end[s][t - 1] if t > 0 else 0.0
                begin = max(ready, stage_free)
                # blocking: the buffer between s and s+1 must have a free
                # slot before this stage can write item t into it; a slot
                # frees when the downstream stage finishes the item
                # `slots` positions earlier.
                if s + 1 < n_stages:
                    slots = self.stages[s + 1].slots
                    if t - slots >= 0:
                        begin = max(begin, end[s + 1][t - slots])
                start[s][t] = begin
                end[s][t] = begin + services[s](t)
        return PipelineResult(
            stage_names=[stage.name for stage in self.stages],
            num_items=num_items,
            end_times=end,
            start_times=start,
        )

    # -- vectorized constant-service solver ----------------------------

    def _run_vectorized(
        self, num_items: int, constants: Sequence[float]
    ) -> PipelineResult:
        """Steady-state replay with exact verification.

        The recurrence ``begin[s][t] = max(end[s-1][t], end[s][t-1],
        end[s+1][t-slots])`` cannot be vectorized directly, but in
        steady state each stage's max is won by the *same* constraint
        every item.  So: run the exact loop for a warm-up prefix, detect
        the winning constraint per stage over a trailing window, replay
        the rest of the run as per-stage NumPy recurrences (in an order
        that respects which rows feed which), then verify elementwise
        that every replayed begin really dominates all of its
        constraints.  Verification failure keeps the verified prefix and
        resumes the exact loop — the output is bit-identical to
        :meth:`_run_exact` in every case, which the test suite asserts.
        """
        n_stages = len(self.stages)
        max_slots = max((stage.slots for stage in self.stages[1:]), default=1)
        end = np.zeros((n_stages, num_items))
        start = np.zeros((n_stages, num_items))
        cursor = self._fill_exact(
            end, start, 0, min(num_items, max(32, 4 * (n_stages + max_slots)))
        )
        attempts = 0
        window = 8 + max_slots
        while cursor < num_items:
            attempts += 1
            if attempts > 8:
                self._fill_exact(end, start, cursor, num_items)
                break
            plan = self._detect_pattern(end, start, cursor, min(window, cursor - 1))
            if plan is None:
                cursor = self._fill_exact(
                    end, start, cursor, min(num_items, cursor + max(64, 2 * window))
                )
                continue
            self._replay(end, start, cursor, plan, constants)
            good = self._verify(end, start, cursor)
            if good == num_items - cursor:
                break
            if good == 0:
                cursor = self._fill_exact(
                    end, start, cursor, min(num_items, cursor + max(64, 2 * window))
                )
            else:
                cursor += good
        return PipelineResult(
            stage_names=[stage.name for stage in self.stages],
            num_items=num_items,
            end_times=[row.tolist() for row in end],
            start_times=[row.tolist() for row in start],
        )

    def _fill_exact(
        self, end: np.ndarray, start: np.ndarray, lo: int, hi: int
    ) -> int:
        """Run the exact recurrence for items ``[lo, hi)`` in-place."""
        n_stages = len(self.stages)
        constants = [stage.constant_service for stage in self.stages]
        for t in range(lo, hi):
            for s in range(n_stages):
                ready = end[s - 1, t] if s > 0 else 0.0
                stage_free = end[s, t - 1] if t > 0 else 0.0
                begin = max(ready, stage_free)
                if s + 1 < n_stages:
                    slots = self.stages[s + 1].slots
                    if t - slots >= 0:
                        begin = max(begin, end[s + 1, t - slots])
                start[s, t] = begin
                end[s, t] = begin + constants[s]
        return hi

    def _detect_pattern(
        self, end: np.ndarray, start: np.ndarray, cursor: int, window: int
    ) -> list[tuple[int, str]] | None:
        """Which constraint won each stage's max over the last ``window``
        items — and an evaluation order whose data dependencies (fwd
        needs the upstream row, blk the downstream row) are acyclic.
        Returns ``[(stage, branch), ...]`` or None when no consistent
        acyclic assignment exists (e.g. a single-buffered ping-pong where
        adjacent stages alternate winners)."""
        if window < 2:
            return None
        n_stages = len(self.stages)
        lo = cursor - window
        matches: list[list[str]] = []
        for s in range(n_stages):
            begin_w = start[s, lo:cursor]
            branches = []
            if np.array_equal(begin_w, end[s, lo - 1 : cursor - 1]):
                branches.append("self")
            if s > 0 and np.array_equal(begin_w, end[s - 1, lo:cursor]):
                branches.append("fwd")
            if s + 1 < n_stages:
                k = self.stages[s + 1].slots
                if lo - k >= 0 and np.array_equal(
                    begin_w, end[s + 1, lo - k : cursor - k]
                ):
                    branches.append("blk")
            if not branches:
                return None
            matches.append(branches)
        plan: list[tuple[int, str]] = []
        scheduled: set[int] = set()
        progress = True
        while progress and len(plan) < n_stages:
            progress = False
            for s in range(n_stages):
                if s in scheduled:
                    continue
                for branch in matches[s]:
                    dep = {"self": None, "fwd": s - 1, "blk": s + 1}[branch]
                    if dep is None or dep in scheduled:
                        plan.append((s, branch))
                        scheduled.add(s)
                        progress = True
                        break
        return plan if len(plan) == n_stages else None

    def _replay(
        self,
        end: np.ndarray,
        start: np.ndarray,
        cursor: int,
        plan: Sequence[tuple[int, str]],
        constants: Sequence[float],
    ) -> None:
        """Extend each stage's row over ``[cursor, n)`` assuming its
        detected constraint keeps winning (verified afterwards)."""
        n = end.shape[1]
        for s, branch in plan:
            c = constants[s]
            if branch == "self":
                # chained additions via accumulate: bit-identical to the
                # scalar loop's sequential `begin + c` chain
                seeded = np.empty(n - cursor + 1)
                seeded[0] = end[s, cursor - 1]
                seeded[1:] = c
                acc = np.add.accumulate(seeded)
                start[s, cursor:] = acc[:-1]
                end[s, cursor:] = acc[1:]
            elif branch == "fwd":
                src = end[s - 1, cursor:]
                start[s, cursor:] = src
                end[s, cursor:] = src + c
            else:  # blk
                k = self.stages[s + 1].slots
                src = end[s + 1, cursor - k : n - k]
                start[s, cursor:] = src
                end[s, cursor:] = src + c

    def _verify(self, end: np.ndarray, start: np.ndarray, cursor: int) -> int:
        """Items from ``cursor`` whose replayed begins dominate *every*
        constraint (the replay is exact up to the first violation)."""
        n_stages, n = end.shape
        bad = np.zeros(n - cursor, dtype=bool)
        for s in range(n_stages):
            begin = start[s, cursor:]
            bad |= begin < np.concatenate(([end[s, cursor - 1]], end[s, cursor:-1]))
            if s > 0:
                bad |= begin < end[s - 1, cursor:]
            if s + 1 < n_stages:
                k = self.stages[s + 1].slots
                if cursor - k >= 0:
                    bad |= begin < end[s + 1, cursor - k : n - k]
                else:
                    tail = begin[k - cursor :]
                    bad[k - cursor :] |= tail < end[s + 1, : n - k]
        if not bad.any():
            return n - cursor
        return int(np.argmax(bad))
