"""Discrete-event core: a buffered-pipeline simulator.

Every dataflow in the paper's design is a linear pipeline of stages
connected by single or double buffers: DRAM tiles flow through
``load -> AIE -> store``, native tiles through ``stream-in -> compute ->
stream-out``.  Buffer depth is the knob the paper studies (double vs
single buffering, Sections IV-A and V-G): a double buffer (2 slots) lets
adjacent stages overlap; a single buffer (1 slot) serialises them.

:class:`PipelineSimulator` computes exact start/end times for every
(item, stage) pair under those constraints:

* a stage starts an item when the item has left the previous stage,
* a stage processes one item at a time, in order,
* a stage cannot *finish* handing an item downstream until the
  downstream buffer has a free slot (``slots`` releases happen when the
  downstream stage finishes the item ``slots`` positions earlier).

This reproduces pipeline fill/drain and blocking effects the closed-form
``#tiles * max(...)`` analytical model abstracts away — exactly the gap
the paper observes between its model and hardware runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage.

    ``service`` maps an item index to its processing time.  ``slots`` is
    the capacity of the buffer *feeding* this stage (2 = double buffered,
    1 = single buffered); the first stage's value is ignored (its input
    is always available).
    """

    name: str
    service: Callable[[int], float]
    slots: int = 2

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("buffer needs at least one slot")


@dataclass
class PipelineResult:
    """Timing of a pipeline run."""

    stage_names: list[str]
    num_items: int
    #: end[s][t]: when stage s finished item t
    end_times: list[list[float]]
    #: start[s][t]: when stage s began item t
    start_times: list[list[float]]

    @property
    def makespan(self) -> float:
        if self.num_items == 0:
            return 0.0
        return self.end_times[-1][-1]

    def stage_busy(self, stage: int) -> float:
        """Total service time stage ``stage`` spent processing."""
        return sum(
            e - s for s, e in zip(self.start_times[stage], self.end_times[stage])
        )

    def stage_busy_by_name(self, name: str) -> float:
        return self.stage_busy(self.stage_names.index(name))

    def bottleneck_stage(self) -> str:
        """Name of the stage with the largest total busy time."""
        busiest = max(range(len(self.stage_names)), key=self.stage_busy)
        return self.stage_names[busiest]


class PipelineSimulator:
    """Simulates items flowing through buffered stages."""

    def __init__(self, stages: Sequence[PipelineStage]):
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = list(stages)

    def run(self, num_items: int) -> PipelineResult:
        if num_items < 0:
            raise ValueError("num_items must be non-negative")
        n_stages = len(self.stages)
        start = [[0.0] * num_items for _ in range(n_stages)]
        end = [[0.0] * num_items for _ in range(n_stages)]
        for t in range(num_items):
            for s, stage in enumerate(self.stages):
                ready = end[s - 1][t] if s > 0 else 0.0
                stage_free = end[s][t - 1] if t > 0 else 0.0
                begin = max(ready, stage_free)
                # blocking: the buffer between s and s+1 must have a free
                # slot before this stage can write item t into it; a slot
                # frees when the downstream stage finishes the item
                # `slots` positions earlier.
                if s + 1 < n_stages:
                    slots = self.stages[s + 1].slots
                    if t - slots >= 0:
                        begin = max(begin, end[s + 1][t - slots])
                start[s][t] = begin
                end[s][t] = begin + stage.service(t)
        return PipelineResult(
            stage_names=[stage.name for stage in self.stages],
            num_items=num_items,
            end_times=end,
            start_times=start,
        )
