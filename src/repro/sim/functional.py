"""Functional simulation: the tiled dataflow computing real numbers.

The timing models elsewhere answer "how fast"; this module answers "is
the mapping correct".  It executes the *same* decomposition the design
describes — DRAM tiles, native tiles, kernel-sized chunks, cascade
partial-sum chains, PL-side accumulation across K — with numpy doing the
chunk-level multiplies, and checks the result against a plain matmul.
This is the ``sw_emu`` functional-verification role of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.tiling import TilePlan
from repro.workloads.gemm import GemmShape

_DTYPES = {
    Precision.FP32: (np.float32, np.float32),
    Precision.INT16: (np.int16, np.int64),
    Precision.INT8: (np.int8, np.int64),
}


@dataclass(frozen=True)
class FunctionalResult:
    """Outcome of a functional run."""

    workload: GemmShape
    max_abs_error: float
    kernel_invocations: int
    cascade_adds: int

    @property
    def correct(self) -> bool:
        return self.max_abs_error <= 1e-3


class FunctionalGemm:
    """Executes a design's tiled dataflow on concrete matrices."""

    def __init__(self, design: CharmDesign, seed: int = 0):
        design.validate()
        self.design = design
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def make_inputs(self, workload: GemmShape) -> tuple[np.ndarray, np.ndarray]:
        in_dtype, _ = _DTYPES[self.design.precision]
        if self.design.precision is Precision.FP32:
            a = self.rng.standard_normal((workload.m, workload.k)).astype(in_dtype)
            b = self.rng.standard_normal((workload.k, workload.n)).astype(in_dtype)
        else:
            a = self.rng.integers(-8, 8, size=(workload.m, workload.k), dtype=in_dtype)
            b = self.rng.integers(-8, 8, size=(workload.k, workload.n), dtype=in_dtype)
        return a, b

    def run(
        self,
        workload: GemmShape,
        a: np.ndarray | None = None,
        b: np.ndarray | None = None,
        plan: TilePlan | None = None,
    ) -> FunctionalResult:
        """Execute the tiled dataflow and compare against ``a @ b``."""
        if a is None or b is None:
            a, b = self.make_inputs(workload)
        if a.shape != (workload.m, workload.k) or b.shape != (workload.k, workload.n):
            raise ValueError("input shapes do not match the workload")
        if plan is None:
            plan = self.design.tile_plan(workload)

        _, acc_dtype = _DTYPES[self.design.precision]
        padded = plan.padded
        a_pad = np.zeros((padded.m, padded.k), dtype=a.dtype)
        b_pad = np.zeros((padded.k, padded.n), dtype=b.dtype)
        a_pad[: workload.m, : workload.k] = a
        b_pad[: workload.k, : workload.n] = b
        c_pad = np.zeros((padded.m, padded.n), dtype=acc_dtype)

        invocations, cascade_adds = self._execute(plan, a_pad, b_pad, c_pad)

        reference = a.astype(acc_dtype) @ b.astype(acc_dtype)
        produced = c_pad[: workload.m, : workload.n]
        if self.design.precision is Precision.FP32:
            denom = np.maximum(np.abs(reference), 1.0)
            error = float(np.max(np.abs(produced - reference) / denom))
        else:
            error = float(np.max(np.abs(produced - reference)))
        return FunctionalResult(
            workload=workload,
            max_abs_error=error,
            kernel_invocations=invocations,
            cascade_adds=cascade_adds,
        )

    # ------------------------------------------------------------------
    def _execute(
        self,
        plan: TilePlan,
        a_pad: np.ndarray,
        b_pad: np.ndarray,
        c_pad: np.ndarray,
    ) -> tuple[int, int]:
        """The three-level tiled loop nest of Fig. 2."""
        native = plan.native
        pl_tile = plan.pl_tile
        tm, tk, tn = plan.dram_tile_counts
        am, ak, an = plan.multiples
        invocations = 0
        cascade_adds = 0
        for mt in range(tm):
            for nt in range(tn):
                # the C PL-buffer accumulates across the K sweep
                for kt in range(tk):
                    a_tile = _slice2(a_pad, mt, kt, pl_tile.m, pl_tile.k)
                    b_tile = _slice2(b_pad, kt, nt, pl_tile.k, pl_tile.n)
                    for pm in range(am):
                        for pn in range(an):
                            for pk in range(ak):
                                a_nat = _slice2(a_tile, pm, pk, native.m, native.k)
                                b_nat = _slice2(b_tile, pk, pn, native.k, native.n)
                                c_nat = self._native_tile_gemm(a_nat, b_nat)
                                cascade_adds += self._cascade_add_count()
                                invocations += 1
                                row = mt * pl_tile.m + pm * native.m
                                col = nt * pl_tile.n + pn * native.n
                                c_pad[row : row + native.m, col : col + native.n] += c_nat
        return invocations, cascade_adds

    def _native_tile_gemm(self, a_nat: np.ndarray, b_nat: np.ndarray) -> np.ndarray:
        """One native-tile execution: kernel chunks over (gm, gk, gn)
        with cascade accumulation along gk."""
        g = self.design.config.grouping
        kernel = g.kernel
        _, acc_dtype = _DTYPES[self.design.precision]
        c_nat = np.zeros((g.gm * kernel.m, g.gn * kernel.n), dtype=acc_dtype)
        for im in range(g.gm):
            for jn in range(g.gn):
                # the cascade chain: each engine multiplies its K slice and
                # adds the incoming partial sum
                partial = np.zeros((kernel.m, kernel.n), dtype=acc_dtype)
                for lk in range(g.gk):
                    a_chunk = _slice2(a_nat, im, lk, kernel.m, kernel.k).astype(acc_dtype)
                    b_chunk = _slice2(b_nat, lk, jn, kernel.k, kernel.n).astype(acc_dtype)
                    partial = partial + a_chunk @ b_chunk
                c_nat[
                    im * kernel.m : (im + 1) * kernel.m,
                    jn * kernel.n : (jn + 1) * kernel.n,
                ] = partial
        return c_nat

    def _cascade_add_count(self) -> int:
        g = self.design.config.grouping
        return g.gm * g.gn * (g.gk - 1)


def _slice2(array: np.ndarray, i: int, j: int, rows: int, cols: int) -> np.ndarray:
    return array[i * rows : (i + 1) * rows, j * cols : (j + 1) * cols]
