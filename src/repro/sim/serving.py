"""Serving simulation: GEMM request streams over a partition.

A deployed Versal board serves a *stream* of inference requests, not one
workload; what matters operationally is tail latency versus offered
load.  This module generates deterministic pseudo-random request traces
(exponential-ish inter-arrivals from a hash-based LCG — no global RNG,
fully reproducible), dispatches each request to the partition
accelerator that finishes it earliest, and reports throughput and
latency percentiles.

The dispatch engines all produce **byte-identical** decisions:

* the seed scan (``dispatch="scan"``) — the original O(requests x
  accelerators) loop, kept as the ground truth and benchmark baseline;
* the fast path (default) — per-shape-class service tables resolved
  once per ``(accelerator, shape)`` pair, a dense earliest-finish scan
  for small partitions and a per-class lazy earliest-finish heap
  (O(n log k)) for larger ones;
* the vectorized engine (``dispatch="vectorized"``, auto-selected for
  one- and two-wide partitions on fault-free runs) — NumPy
  speculate-and-verify batches over the SoA trace
  (:mod:`repro.sim.dispatch_batch`), retiring tens of thousands of
  requests per interpreter round-trip.

``run(..., streaming=True)`` feeds dispatched chunks straight into a
:class:`~repro.sim.streaming.StreamingServingReport` — O(1) memory in
the trace length, with the sketch's documented percentile error bound —
and :func:`load_sweep` drives the offered-load -> tail-latency curve
the paper's serving discussion is about, with saturation-knee detection
and an early exit once throughput plateaus.

``run(..., faults=...)`` injects a time-varying
:class:`~repro.sim.chaos.FaultSchedule` (accelerators go down and come
back, or serve through degraded :class:`~repro.hw.specs.DeviceSpec`
variants mid-run) under a :class:`~repro.sim.chaos.FaultPolicy`:
executions a ``down`` window interrupts are killed and retried with
exponential backoff, failing over to surviving accelerators, and shed
with accounting once the retry budget is exhausted or nothing feasible
remains.  All three engines implement **identical** fault semantics
(enforced by ``tests/conformance``); ``faults=None`` or an empty
schedule takes the untouched fault-free paths, byte for byte.

Fault-run semantics, precisely:

* A dispatch *attempt* at time ``t`` considers each feasible
  accelerator with ``start = max(t, free)``; the accelerator is skipped
  when ``start`` falls in a ``down`` window or its degraded service is
  unresolvable.  Service is resolved **at admission**: the window the
  start instant falls in fixes the service time, even if the execution
  outlives the window.  The winner minimizes ``(finish, scan order)`` —
  the same tie-break as fault-free dispatch.
* Dispatch is not prescient: if the chosen accelerator's next ``down``
  window opens strictly between start and finish, the execution is
  *killed* at the window start, the accelerator's clock advances to it,
  and the request retries after ``policy.backoff(retries)`` — or is
  shed (``retry_budget_exhausted``) past ``policy.max_retries``.
* An attempt with no usable accelerator *requeues* (no retry consumed)
  to the schedule's next state transition; when no transition remains
  the request is shed (``no_feasible_accelerator``).  A shape no
  accelerator can serve even fault-free raises ``ValueError`` exactly
  like the fault-free path.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Sequence, Union

import numpy as np

from repro.core.multi_acc import AcceleratorPartition
from repro.obs.spans import GLOBAL_TRACER, span
from repro.perf.metrics import GLOBAL_STATS, EvalStats, FaultStats, track
from repro.perf.parallel import parallel_map, resolve_jobs
from repro.sim.chaos import (
    DEFAULT_FAULT_POLICY,
    FaultError,
    FaultPolicy,
    FaultSchedule,
)
from repro.sim.dispatch_batch import (
    dispatch_segment,
    dispatch_vectorized,
    native_available,
)
from repro.sim.streaming import (
    SoATrace,
    StreamingServingReport,
    derive_seed,
    generate_trace_soa,
)
from repro.workloads.gemm import GemmShape

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.slo import SloSpec
    from repro.obs.windows import ServingMonitor

#: partitions at least this large dispatch through the per-class heap
#: (below it, the dense table scan's constant factors win)
HEAP_MIN_ACCELERATORS = 7

#: requests buffered between streaming-report flushes (bounds memory)
DISPATCH_CHUNK = 65536

_DISPATCH_MODES = ("auto", "vectorized", "heap", "table", "scan")

#: widths where ``auto`` still prefers the vectorized engine when only
#: the NumPy speculate-and-verify fallback is available (no C
#: compiler).  With the native kernel present the vectorized engine
#: wins at every width — the measured crossover vs the heap is far
#: beyond realistic fleets (see docs/performance.md) — so this
#: constant only gates the fallback, whose guess quality drops on wide
#: fleets.  ``dispatch="vectorized"`` is explicit and legal at any
#: width either way.
VECTORIZED_MAX_ACCELERATORS = 2


@dataclass(frozen=True)
class Request:
    """One GEMM request with its arrival time."""

    request_id: int
    shape: GemmShape
    arrival: float


@dataclass(frozen=True)
class CompletedRequest:
    request: Request
    accelerator: str
    start: float
    finish: float
    #: executions killed by down windows before this one completed
    retries: int = 0

    @property
    def latency(self) -> float:
        return self.finish - self.request.arrival

    @property
    def queueing_delay(self) -> float:
        return self.start - self.request.arrival


def _feed_monitor_completed(
    monitor: "ServingMonitor",
    completed: Sequence["CompletedRequest"],
    chunk_size: int,
) -> None:
    """Feed already-materialized completions to a monitor.

    Used by engines without a flush hook (scan, the fault loop): the
    arrival-ordered ``chunk_size`` blocks match the boundaries the fast
    engines flush at, so the folded series are chunk-for-chunk the same.
    """
    for lo in range(0, len(completed), chunk_size):
        batch = completed[lo : lo + chunk_size]
        monitor.observe_chunk(
            np.asarray([entry.request.arrival for entry in batch]),
            np.asarray([entry.start for entry in batch]),
            np.asarray([entry.finish for entry in batch]),
        )


@dataclass(frozen=True)
class ShedRequest:
    """A request dropped with accounting instead of completed."""

    request: Request
    retries: int
    #: ``retry_budget_exhausted`` or ``no_feasible_accelerator``
    reason: str
    #: when the shedding decision was made
    time: float


@dataclass
class ServingReport:
    completed: list[CompletedRequest]
    #: requests dropped under the fault policy (empty on fault-free runs)
    shed: list[ShedRequest] = field(default_factory=list)
    #: fault onset/clearance records, ordered by time
    fault_events: list = field(default_factory=list)
    #: per-accelerator seconds spent down within the makespan
    downtime: dict[str, float] = field(default_factory=dict)
    #: executions killed mid-flight by a down window
    kills: int = 0
    #: attempts deferred because no accelerator was usable
    requeues: int = 0
    #: chaos-loop decision log, ``(time, kind, request_id, retries)`` with
    #: kind in {"kill", "requeue"}, time-ordered — the trace exporter
    #: renders these as instant markers (sheds carry their own records)
    fault_timeline: list = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max((c.finish for c in self.completed), default=0.0)

    @property
    def shed_count(self) -> int:
        return len(self.shed)

    @property
    def total_retries(self) -> int:
        return sum(c.retries for c in self.completed) + sum(
            s.retries for s in self.shed
        )

    def availability(self) -> dict[str, float]:
        """Per-accelerator up-fraction of the makespan, in ``[0, 1]``."""
        horizon = self.makespan
        if horizon <= 0:
            return {name: 1.0 for name in self.downtime}
        return {
            name: min(1.0, max(0.0, 1.0 - down / horizon))
            for name, down in self.downtime.items()
        }

    @property
    def request_availability(self) -> float:
        """Completed / offered requests (1.0 when nothing was offered)."""
        total = len(self.completed) + len(self.shed)
        if total == 0:
            return 1.0
        return len(self.completed) / total

    def fault_summary(self) -> dict:
        """The fault-accounting block the CLI and experiments print."""
        return {
            "completed": len(self.completed),
            "shed": self.shed_count,
            "kills": self.kills,
            "retries": self.total_retries,
            "requeues": self.requeues,
            "fault_events": len(self.fault_events),
            "request_availability": self.request_availability,
            "availability": self.availability(),
        }

    @property
    def throughput_rps(self) -> float:
        if self.makespan == 0:
            return 0.0
        return len(self.completed) / self.makespan

    @cached_property
    def _sorted_latencies(self) -> list[float]:
        # `completed` is effectively frozen after construction, so the
        # sort is cached instead of being redone on every percentile
        return sorted(c.latency for c in self.completed)

    def latency_percentile(self, percentile: float) -> float:
        return self.latency_percentiles([percentile])[0]

    def latency_percentiles(self, percentiles: Sequence[float]) -> list[float]:
        """Batch percentile accessor over the cached sorted latencies."""
        for percentile in percentiles:
            if not 0 < percentile <= 100:
                raise ValueError("percentile must be in (0, 100]")
        if not self.completed:
            raise ValueError("no completed requests")
        latencies = self._sorted_latencies
        count = len(latencies)
        return [
            latencies[min(count - 1, math.ceil(percentile / 100 * count) - 1)]
            for percentile in percentiles
        ]

    def mean_latency(self) -> float:
        if not self.completed:
            raise ValueError("no completed requests")
        return sum(c.latency for c in self.completed) / len(self.completed)

    def accelerator_load(self) -> dict[str, int]:
        load: dict[str, int] = {}
        for request in self.completed:
            load[request.accelerator] = load.get(request.accelerator, 0) + 1
        return load


def _lcg_uniform(seed: int, index: int) -> float:
    """Deterministic uniform in (0, 1) from a splitmix-style hash."""
    x = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return ((x & 0xFFFFFFFF) + 1) / (2**32 + 2)


def generate_trace(
    shapes: Sequence[GemmShape],
    num_requests: int,
    mean_interarrival: float,
    seed: int = 0,
) -> list[Request]:
    """An exponential-interarrival request trace over a shape mix.

    The scalar reference: :func:`~repro.sim.streaming.generate_trace_soa`
    produces the same trace bit-identically as a structure-of-arrays
    (the log is evaluated through ``np.log`` here precisely so both
    paths share one float64 log implementation).
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if mean_interarrival <= 0:
        raise ValueError("mean inter-arrival must be positive")
    if not shapes:
        raise ValueError("need at least one shape")
    requests = []
    clock = 0.0
    for index in range(num_requests):
        clock += -mean_interarrival * float(np.log(_lcg_uniform(seed, 2 * index)))
        shape = shapes[int(_lcg_uniform(seed, 2 * index + 1) * len(shapes))]
        requests.append(Request(request_id=index, shape=shape, arrival=clock))
    return requests


def _dispatch_pair(arrivals, class_ids, svc0, svc1, free, flush, chunk_size):
    """Two-accelerator earliest-finish dispatch, fully unrolled.

    The hot loop of the common case (a two-way partition where every
    class is feasible on both accelerators): the scheduler state lives
    in two locals, the per-class service times in two flat lists, and
    iteration runs over chunk slices so the loop body carries no bounds
    checks.  Decisions are byte-identical to the seed scan (strictly
    earlier finish wins; ties go to the first accelerator).
    """
    n = len(arrivals)
    free0, free1 = free
    for lo in range(0, n, chunk_size):
        hi = lo + chunk_size
        out_acc: list[int] = []
        out_start: list[float] = []
        out_fin: list[float] = []
        acc_append = out_acc.append
        start_append = out_start.append
        fin_append = out_fin.append
        for arrival, cid in zip(arrivals[lo:hi], class_ids[lo:hi]):
            start0 = arrival if arrival > free0 else free0
            finish0 = start0 + svc0[cid]
            start1 = arrival if arrival > free1 else free1
            finish1 = start1 + svc1[cid]
            if finish1 < finish0:
                free1 = finish1
                acc_append(1)
                start_append(start1)
                fin_append(finish1)
            else:
                free0 = finish0
                acc_append(0)
                start_append(start0)
                fin_append(finish0)
        flush(lo, out_acc, out_start, out_fin)
    free[0] = free0
    free[1] = free1


def _dispatch_table(arrivals, class_ids, specs, free, flush, chunk_size):
    """Dense earliest-finish dispatch (byte-identical to the seed scan).

    ``specs[c]`` is a flat ``(acc, service, acc, service, ...)`` tuple in
    the scan's accelerator iteration order; single- and dual-accelerator
    classes (the common partitions) are unrolled.
    """
    used = {spec for spec in specs if spec}
    if len(free) == 2 and all(len(spec) == 4 for spec in used):
        svc0 = [spec[1] if spec else math.inf for spec in specs]
        svc1 = [spec[3] if spec else math.inf for spec in specs]
        _dispatch_pair(arrivals, class_ids, svc0, svc1, free, flush, chunk_size)
        return
    infinity = math.inf
    n = len(arrivals)
    for lo in range(0, n, chunk_size):
        hi = lo + chunk_size
        out_acc: list[int] = []
        out_start: list[float] = []
        out_fin: list[float] = []
        acc_append = out_acc.append
        start_append = out_start.append
        fin_append = out_fin.append
        for arrival, cid in zip(arrivals[lo:hi], class_ids[lo:hi]):
            spec = specs[cid]
            width = len(spec)
            if width == 4:
                acc = spec[0]
                idle = free[acc]
                start0 = arrival if arrival > idle else idle
                finish0 = start0 + spec[1]
                acc1 = spec[2]
                idle = free[acc1]
                start1 = arrival if arrival > idle else idle
                finish1 = start1 + spec[3]
                if finish1 < finish0:
                    best_acc, best_start, best_finish = acc1, start1, finish1
                else:
                    best_acc, best_start, best_finish = acc, start0, finish0
            elif width == 2:
                best_acc = spec[0]
                idle = free[best_acc]
                best_start = arrival if arrival > idle else idle
                best_finish = best_start + spec[1]
            else:
                best_finish = infinity
                best_acc = -1
                best_start = 0.0
                for offset in range(0, width, 2):
                    acc = spec[offset]
                    idle = free[acc]
                    start = arrival if arrival > idle else idle
                    finish = start + spec[offset + 1]
                    if finish < best_finish:
                        best_finish, best_acc, best_start = finish, acc, start
            free[best_acc] = best_finish
            acc_append(best_acc)
            start_append(best_start)
            fin_append(best_finish)
        flush(lo, out_acc, out_start, out_fin)


def _dispatch_heap(arrivals, class_ids, heap_tables, free, flush, chunk_size):
    """Per-class lazy earliest-finish heaps: O(n log k) dispatch.

    Each class keeps one heap entry per feasible accelerator keyed by
    ``(free + service, order)``; entries go stale when another class
    dispatches the accelerator and are re-keyed lazily on pop.  Idle
    accelerators (``free <= arrival``) are resolved through the class's
    static ``(service, order)`` ranking, because their finish is
    ``arrival + service``, not ``free + service``.  Decisions stay
    byte-identical to the scan: both minimize ``(finish, scan order)``.
    """
    infinity = math.inf
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    n = len(arrivals)
    out_acc: list[int] = []
    out_start: list[float] = []
    out_fin: list[float] = []
    base = 0
    for index in range(n):
        arrival = arrivals[index]
        heap, services, idle_rank = heap_tables[class_ids[index]]
        busy_key = infinity
        busy_order = -1
        busy_acc = -1
        stash = None
        while heap:
            key, order, acc, snapshot = heap[0]
            current = free[acc]
            if snapshot != current:
                heapreplace(heap, (current + services[acc], order, acc, current))
                continue
            if current <= arrival:
                if stash is None:
                    stash = []
                stash.append(heappop(heap))
                continue
            busy_key, busy_order, busy_acc = key, order, acc
            break
        if stash is not None:
            for entry in stash:
                heappush(heap, entry)
        idle_finish = infinity
        idle_order = -1
        idle_acc = -1
        for service, order, acc in idle_rank:
            if free[acc] <= arrival:
                idle_finish = arrival + service
                idle_order = order
                idle_acc = acc
                break
        if idle_acc >= 0 and (
            busy_acc < 0
            or idle_finish < busy_key
            or (idle_finish == busy_key and idle_order < busy_order)
        ):
            best_acc, best_start, best_finish = idle_acc, arrival, idle_finish
        else:
            best_acc, best_start, best_finish = busy_acc, free[busy_acc], busy_key
        free[best_acc] = best_finish
        out_acc.append(best_acc)
        out_start.append(best_start)
        out_fin.append(best_finish)
        if len(out_acc) >= chunk_size:
            flush(base, out_acc, out_start, out_fin)
            base = index + 1
            out_acc, out_start, out_fin = [], [], []
    if out_acc:
        flush(base, out_acc, out_start, out_fin)


class _FaultView:
    """Fast time-indexed queries over a fault schedule for one partition.

    Window lookups are bisections over per-accelerator sorted arrays;
    degraded service times are resolved once per ``(accelerator, window,
    shape class)`` and cached — ``DeviceSpec`` is unhashable, so the
    cache keys on positions, not objects.  Accelerators whose *healthy*
    device cannot serve a shape class stay infeasible for it in every
    window (degraded hardware never unlocks new shapes), which keeps the
    three selectors' candidate sets identical by construction.
    """

    def __init__(self, simulator, schedule, names, classes, specs):
        self.names = names
        self.classes = classes
        self.partition = simulator.partition
        width = len(names)
        # base (healthy) service per [order][class]; None = infeasible
        self.base: list[list[float | None]] = [
            [None] * len(classes) for _ in range(width)
        ]
        for cid, spec in enumerate(specs):
            for offset in range(0, len(spec), 2):
                self.base[spec[offset]][cid] = spec[offset + 1]
        self.windows = []
        self._window_starts = []
        self._window_ends = []
        self._down_starts = []
        for name in names:
            windows = schedule.for_accelerator(name)
            self.windows.append(windows)
            self._window_starts.append([w.start for w in windows])
            self._window_ends.append([w.end for w in windows])
            self._down_starts.append([w.start for w in windows if w.kind == "down"])
        self._transitions = schedule.transitions()
        self._degraded_cache: dict[tuple[int, int, int], float | None] = {}
        self._min_cache: dict[tuple[int, int], float | None] = {}

    def window_index_at(self, order: int, time: float) -> int | None:
        index = bisect.bisect_right(self._window_starts[order], time) - 1
        if index >= 0 and time < self._window_ends[order][index]:
            return index
        return None

    def next_down_after(self, order: int, time: float) -> float | None:
        """Earliest down-window start strictly after ``time`` (kill check)."""
        starts = self._down_starts[order]
        index = bisect.bisect_right(starts, time)
        return starts[index] if index < len(starts) else None

    def next_transition_after(self, time: float) -> float | None:
        transitions = self._transitions
        index = bisect.bisect_right(transitions, time)
        return transitions[index] if index < len(transitions) else None

    def service_at(self, order: int, cid: int, time: float) -> float | None:
        """Admission-time service, or None when the accelerator is
        unusable at ``time`` (down, infeasible, or degraded-invalid)."""
        base = self.base[order][cid]
        if base is None:
            return None
        index = self.window_index_at(order, time)
        if index is None:
            return base
        window = self.windows[order][index]
        if window.kind == "down":
            return None
        return self._degraded(order, index, cid, base)

    def min_service(self, order: int, cid: int) -> float | None:
        """Minimum service across every state — the heap's lower bound."""
        key = (order, cid)
        if key in self._min_cache:
            return self._min_cache[key]
        base = self.base[order][cid]
        if base is None:
            value = None
        else:
            value = base
            for index, window in enumerate(self.windows[order]):
                if window.kind != "degraded":
                    continue
                degraded = self._degraded(order, index, cid, base)
                if degraded is not None and degraded < value:
                    value = degraded
        self._min_cache[key] = value
        return value

    def _degraded(
        self, order: int, index: int, cid: int, base: float
    ) -> float | None:
        key = (order, index, cid)
        if key in self._degraded_cache:
            return self._degraded_cache[key]
        window = self.windows[order][index]
        if window.factor is not None:
            value = base * window.factor
        else:
            design = self.partition.designs[self.names[order]]
            config = getattr(design, "config", None)
            if config is None:
                raise ValueError(
                    "device-degraded fault windows need partition designs "
                    "with a .config (stub partitions should use factor= "
                    "windows instead)"
                )
            from repro.core.analytical_model import AnalyticalModel
            from repro.mapping.charm import CharmDesign

            candidate = CharmDesign(config, window.device)
            if not candidate.is_valid():
                value = None  # design does not survive: down for the window
            else:
                try:
                    value = AnalyticalModel(candidate).estimate(
                        self.classes[cid]
                    ).total_seconds
                except ValueError:
                    value = None
        self._degraded_cache[key] = value
        return value


class _ScanFaultSelector:
    """The seed loop under faults: scan every accelerator per attempt."""

    def __init__(self, view: _FaultView, free: list[float], width: int):
        self.view = view
        self.free = free
        self.width = width

    def select(self, t: float, cid: int):
        view = self.view
        free = self.free
        best_finish = math.inf
        best_order = -1
        best_start = 0.0
        for order in range(self.width):
            current = free[order]
            start = current if current > t else t
            service = view.service_at(order, cid, start)
            if service is None:
                continue
            finish = start + service
            if finish < best_finish:
                best_finish, best_order, best_start = finish, order, start
        if best_order < 0:
            return None
        return best_order, best_start, best_finish


class _TableFaultSelector:
    """Dense fault dispatch over the per-class feasible-accelerator specs."""

    def __init__(self, specs: list[tuple], view: _FaultView, free: list[float]):
        self.specs = specs
        self.view = view
        self.free = free

    def select(self, t: float, cid: int):
        view = self.view
        free = self.free
        spec = self.specs[cid]
        best_finish = math.inf
        best_order = -1
        best_start = 0.0
        for offset in range(0, len(spec), 2):
            order = spec[offset]
            current = free[order]
            start = current if current > t else t
            service = view.service_at(order, cid, start)
            if service is None:
                continue
            finish = start + service
            if finish < best_finish:
                best_finish, best_order, best_start = finish, order, start
        if best_order < 0:
            return None
        return best_order, best_start, best_finish


class _HeapFaultSelector:
    """Lazy per-class heaps under faults, keyed by a true lower bound.

    A fault-free heap entry's key ``free + service`` is exact; under
    faults the service depends on the admission instant, so entries are
    keyed ``free + min_service`` (the minimum across the healthy device
    and every degraded window — a lower bound on any admission's
    finish).  Popped entries get their exact finish resolved at the
    attempt time; the pop loop stops as soon as the best exact candidate
    beats the heap top's lower bound, so no candidate is ever missed.
    Entries are stashed and pushed back because availability is
    time-varying — an accelerator unusable now may win later.
    """

    def __init__(self, specs: list[tuple], view: _FaultView, free: list[float]):
        self.view = view
        self.free = free
        self.heaps: list[list | None] = []
        self.min_svc: list[dict[int, float] | None] = []
        for cid, spec in enumerate(specs):
            if not spec:
                self.heaps.append(None)
                self.min_svc.append(None)
                continue
            heap = []
            mins: dict[int, float] = {}
            for offset in range(0, len(spec), 2):
                order = spec[offset]
                lower = view.min_service(order, cid)
                if lower is None:  # pragma: no cover - base implies a bound
                    continue
                mins[order] = lower
                heap.append((0.0 + lower, order, order, 0.0))
            heapq.heapify(heap)
            self.heaps.append(heap)
            self.min_svc.append(mins)

    def select(self, t: float, cid: int):
        heap = self.heaps[cid]
        mins = self.min_svc[cid]
        view = self.view
        free = self.free
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        best_finish = math.inf
        best_order = -1
        best_start = 0.0
        stash = []
        while heap:
            key, order, acc, snapshot = heap[0]
            current = free[acc]
            if snapshot != current:
                heapreplace(heap, (current + mins[acc], order, acc, current))
                continue
            if best_order >= 0 and (
                best_finish < key or (best_finish == key and best_order < order)
            ):
                break
            stash.append(heappop(heap))
            start = current if current > t else t
            service = view.service_at(acc, cid, start)
            if service is None:
                continue
            finish = start + service
            if finish < best_finish or (
                finish == best_finish and order < best_order
            ):
                best_finish, best_order, best_start = finish, order, start
        for entry in stash:
            heapq.heappush(heap, entry)
        if best_order < 0:
            return None
        return best_order, best_start, best_finish


class ServingSimulator:
    """Earliest-finish dispatch of a request trace over a partition.

    Service times are memoized per ``(accelerator, shape)`` pair;
    :meth:`prewarm` fills that cache in parallel before serving starts
    so no request pays a cold model evaluation, and :attr:`stats`
    reports the hit/miss balance after a run.  Every :meth:`run`
    records its evaluation counters into ``GLOBAL_STATS`` so the CLI's
    ``--stats`` reflects serving end to end.
    """

    def __init__(self, partition: AcceleratorPartition):
        self.partition = partition
        # per-shape service times are reused across requests
        self._service_cache: dict[tuple[str, GemmShape], float] = {}
        self._infeasible: set[tuple[str, GemmShape]] = set()
        self.stats = EvalStats()

    def _service(self, accelerator: str, shape: GemmShape) -> float:
        key = (accelerator, shape)
        if key not in self._service_cache:
            self.stats.cache_misses += 1
            self.stats.evaluations += 1
            self._service_cache[key] = self.partition.estimate_on(accelerator, shape)
        else:
            self.stats.cache_hits += 1
        return self._service_cache[key]

    def _service_or_none(self, accelerator: str, shape: GemmShape) -> float | None:
        """Like :meth:`_service`, but resolves infeasible pairs to None
        (counted as skipped, cached so the model is never re-walked)."""
        key = (accelerator, shape)
        cached = self._service_cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        if key in self._infeasible:
            self.stats.skipped += 1
            return None
        try:
            value = self.partition.estimate_on(accelerator, shape)
        except ValueError:
            self._infeasible.add(key)
            self.stats.skipped += 1
            return None
        self.stats.cache_misses += 1
        self.stats.evaluations += 1
        self._service_cache[key] = value
        return value

    def perturbed(
        self, factor: Callable[[str, GemmShape], float]
    ) -> "ServingSimulator":
        """A new simulator whose cached service times are scaled.

        The noise hook for repeated-run benchmarking
        (``repro.bench``): ``factor(accelerator, shape)`` returns a
        finite positive multiplier per cached service time.  The
        perturbed table is materialised up front from this simulator's
        cache, so the copy serves noisy services through every
        dispatch engine — and through ``ShardedServingCluster``, whose
        worker payload ships the cache — byte-identically, with no
        per-request draw.  Requires a resolved cache
        (:meth:`prewarm` first); infeasible pairs stay infeasible.
        """
        if not self._service_cache:
            raise ValueError(
                "perturbed() requires resolved service times; call "
                "prewarm(shapes) before perturbing"
            )
        clone = ServingSimulator(self.partition)
        for (name, shape), service in self._service_cache.items():
            scale = factor(name, shape)
            if not math.isfinite(scale) or scale <= 0:
                raise ValueError(
                    f"service factor for ({name}, {shape}) must be a finite "
                    f"positive number, got {scale}"
                )
            clone._service_cache[(name, shape)] = service * scale
        clone._infeasible = set(self._infeasible)
        return clone

    def prewarm(
        self, shapes: Sequence[GemmShape], jobs: int = 1, vectorize: bool = False
    ) -> int:
        """Precompute service times for ``shapes`` on every accelerator.

        Infeasible pairs are skipped (dispatch skips them too).  Returns
        the number of pairs resolved; with ``jobs > 1`` the model
        evaluations run concurrently.  ``vectorize`` resolves all pairs
        through one batch evaluation per (precision, kernel style)
        family instead of per-pair model walks; the cached service times
        are bit-identical either way.
        """

        def resolve(pair: tuple[str, GemmShape]) -> tuple[tuple[str, GemmShape], float] | None:
            name, shape = pair
            try:
                return pair, self.partition.estimate_on(name, shape)
            except ValueError:
                return None

        pairs = [
            (name, shape)
            for shape in dict.fromkeys(shapes)
            for name in self.partition.designs
            if (name, shape) not in self._service_cache
        ]
        with span(
            "serve.prewarm",
            track="serving",
            pairs=len(pairs),
            jobs=jobs,
            vectorize=vectorize,
        ), track(self.stats):
            if vectorize and pairs:
                warmed = self._prewarm_vectorized(pairs)
            else:
                resolved = parallel_map(resolve, pairs, jobs=jobs)
                warmed = [entry for entry in resolved if entry is not None]
        for key, service in warmed:
            self._service_cache[key] = service
        warmed_keys = {key for key, _ in warmed}
        self._infeasible.update(pair for pair in pairs if pair not in warmed_keys)
        self.stats.evaluations += len(warmed)
        self.stats.skipped += len(pairs) - len(warmed)
        GLOBAL_STATS.record(EvalStats(evaluations=len(warmed), jobs=jobs))
        return len(warmed)

    def _prewarm_vectorized(
        self, pairs: Sequence[tuple[str, GemmShape]]
    ) -> list[tuple[tuple[str, GemmShape], float]]:
        """Resolve pairs through the batch evaluation kernel.

        A grid evaluates one (precision, kernel style) family at a time,
        so mixed partitions are grouped; within a group every pair
        carries its own workload shape.
        """
        from repro.perf.vectorized import batch_estimate_designs

        groups: dict[tuple, list[tuple[str, GemmShape]]] = {}
        for pair in pairs:
            design = self.partition.designs[pair[0]]
            groups.setdefault((design.precision, design.kernel_style), []).append(pair)
        warmed = []
        for group in groups.values():
            designs = [self.partition.designs[name] for name, _ in group]
            shapes = [shape for _, shape in group]
            batch = batch_estimate_designs(designs, shapes)
            for index, pair in enumerate(group):
                if batch.feasible[index]:
                    warmed.append((pair, float(batch.total_seconds[index])))
        return warmed

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Union[Sequence[Request], SoATrace],
        *,
        streaming: bool = False,
        dispatch: str = "auto",
        quantile_error: float = 0.01,
        chunk_size: int = DISPATCH_CHUNK,
        faults: FaultSchedule | None = None,
        fault_policy: FaultPolicy | None = None,
        monitor: "ServingMonitor | None" = None,
    ) -> ServingReport | StreamingServingReport:
        """Serve ``trace``; return an exact or streaming report.

        ``dispatch`` selects the engine: ``auto``, ``vectorized``,
        ``table``, ``heap``, or ``scan`` (the seed loop, exact mode
        only).  The vectorized engine — the native k-wide exact loop
        when a C compiler is present, the NumPy speculate-and-verify
        fallback otherwise — is legal at **any** partition width.  On
        fault-free runs ``auto`` picks it at every width when the
        native kernel is available and up to
        :data:`VECTORIZED_MAX_ACCELERATORS` otherwise, then falls back
        to the table below :data:`HEAP_MIN_ACCELERATORS` and the heap
        at or above it; under a fault schedule ``auto`` keeps the
        scalar selectors and explicit ``vectorized`` batches the clean
        segments between fault transitions.  All engines make
        byte-identical dispatch decisions — engine choice is purely a
        throughput knob (see the engine-selection matrix in
        ``docs/performance.md``).
        ``streaming=True`` returns a :class:`StreamingServingReport`
        with O(1) memory and ``quantile_error``-bounded percentiles;
        the default exact mode materializes every completed request.

        ``faults`` injects a time-varying fault schedule under
        ``fault_policy`` (default :data:`~repro.sim.chaos.DEFAULT_FAULT_POLICY`)
        — see the module docstring for the exact semantics.  ``None`` or
        an empty schedule takes the fault-free paths untouched.

        ``monitor`` attaches a :class:`repro.obs.windows.ServingMonitor`
        fed at the existing dispatch-chunk boundaries, *after* every
        decision in a chunk is final — so an attached monitor cannot
        change a single dispatch decision (a conformance-tested
        byte-identity contract).  Sheds and kills under a fault schedule
        are reported to the monitor at their simulated decision times.
        """
        if dispatch not in _DISPATCH_MODES:
            raise ValueError(f"dispatch must be one of {_DISPATCH_MODES}")
        if streaming and dispatch == "scan":
            raise ValueError("streaming mode requires a fast dispatch engine")
        if len(trace) == 0:
            # one uniform contract across all four engines: an empty
            # trace has no dispatch semantics (generate_trace* likewise
            # reject num_requests < 1)
            raise ValueError(
                "cannot serve an empty trace: num_requests must be positive"
            )
        before = self.stats.snapshot()
        try:
            with span(
                "serve.run",
                track="serving",
                requests=len(trace),
                dispatch=dispatch,
                streaming=streaming,
                faulted=faults is not None and not faults.is_empty,
            ), track(self.stats):
                if faults is not None and not faults.is_empty:
                    return self._run_faulted(
                        trace,
                        streaming=streaming,
                        dispatch=dispatch,
                        quantile_error=quantile_error,
                        chunk_size=chunk_size,
                        faults=faults,
                        policy=fault_policy or DEFAULT_FAULT_POLICY,
                        monitor=monitor,
                    )
                if dispatch == "scan":
                    report = self._run_scan(trace)
                    if monitor is not None:
                        # scan has no flush hook; feed the monitor
                        # post-hoc in the same arrival-ordered
                        # chunk_size blocks the fast engines flush
                        _feed_monitor_completed(monitor, report.completed, chunk_size)
                    return report
                return self._run_fast(
                    trace,
                    streaming=streaming,
                    dispatch=dispatch,
                    quantile_error=quantile_error,
                    chunk_size=chunk_size,
                    monitor=monitor,
                )
        finally:
            GLOBAL_STATS.record(self.stats.delta_since(before))

    def _run_faulted(
        self,
        trace: Union[Sequence[Request], SoATrace],
        *,
        streaming: bool,
        dispatch: str,
        quantile_error: float,
        chunk_size: int,
        faults: FaultSchedule,
        policy: FaultPolicy,
        monitor: "ServingMonitor | None" = None,
    ) -> ServingReport | StreamingServingReport:
        """The fault-aware event loop, shared by all three engines.

        Attempts live in a heap of ``(time, arrival position, retries)``
        — time-ordered, position-tied — so re-attempts interleave with
        later arrivals deterministically.  The engines differ only in
        candidate *selection*; the loop (kills, backoff, requeues,
        shedding) is one code path, which is what makes the three
        engines' fault semantics identical by construction.
        """
        names = list(self.partition.designs)
        unknown = set(faults.accelerators()) - set(names)
        if unknown:
            raise FaultError(
                f"fault schedule names accelerators not in the partition: "
                f"{sorted(unknown)} (partition has {names})"
            )
        arrivals, class_ids, classes, requests = self._normalize(
            trace, need_requests=not streaming
        )
        n = len(arrivals)
        if streaming:
            report = StreamingServingReport(names, quantile_error=quantile_error)
        specs = self._class_specs(classes, set(class_ids))
        self.stats.cache_hits += len(class_ids)
        view = _FaultView(self, faults, names, classes, specs)
        free = [0.0] * len(names)
        use_heap = dispatch == "heap" or (
            dispatch == "auto" and len(names) >= HEAP_MIN_ACCELERATORS
        )
        if use_heap:
            selector = _HeapFaultSelector(specs, view, free)
        elif dispatch == "scan":
            selector = _ScanFaultSelector(view, free, len(names))
        else:
            selector = _TableFaultSelector(specs, view, free)

        arrival_list = arrivals.tolist()
        queue = [(arrival_list[pos], pos, 0) for pos in range(n)]
        heapq.heapify(queue)
        completions: list[tuple | None] = [None] * n
        shed_records: list[tuple[int, int, str, float]] = []
        # decision log for the trace exporter; streaming mode keeps its
        # O(1)-memory promise by not collecting one
        timeline: list[tuple[float, str, int, int]] | None = (
            None if streaming else []
        )
        kills = 0
        requeues = 0
        # kill timestamps are only retained when a monitor wants them
        kill_times: list[float] | None = [] if monitor is not None else None
        select = selector.select
        backoff = policy.backoff
        max_retries = policy.max_retries
        # the vectorized engine batches clean segments — stretches where
        # no fault window is active on any accelerator — through the
        # speculate-and-verify rounds; the scalar loop below keeps sole
        # ownership of kills, requeues and shedding, so anything the
        # batch cannot prove safe (an admission crossing the next
        # transition or down window) is simply handed back to it
        use_batch = dispatch == "vectorized"
        services = self._service_matrix(names, specs) if use_batch else None
        if use_batch:
            self._require_finite_services(names, services, classes)
        width = len(names)
        min_batch = 64
        batch_paused = False
        no_batch_before = -math.inf
        loop_span = span("serve.fault_loop", track="serving", requests=n)
        with loop_span:
            while queue:
                if (
                    use_batch
                    and not batch_paused
                    and len(queue) >= min_batch
                    and queue[0][0] >= no_batch_before
                ):
                    t0 = queue[0][0]
                    if all(
                        view.window_index_at(order, t0) is None
                        for order in range(width)
                    ):
                        nxt = view.next_transition_after(t0)
                        limit = math.inf if nxt is None else nxt
                        batch = []
                        while queue and queue[0][0] < limit:
                            batch.append(heapq.heappop(queue))
                        if len(batch) >= min_batch:
                            times = np.asarray([item[0] for item in batch])
                            cids = np.asarray(
                                [class_ids[item[1]] for item in batch],
                                dtype=np.int64,
                            )
                            next_downs = tuple(
                                nd if (nd := view.next_down_after(order, t0))
                                is not None
                                else math.inf
                                for order in range(width)
                            )
                            accepted, segments = dispatch_segment(
                                times, cids, services, free, limit, next_downs
                            )
                            for seg_base, accs, starts, fins in segments:
                                for off, (acc, start, fin) in enumerate(
                                    zip(
                                        accs.tolist(),
                                        starts.tolist(),
                                        fins.tolist(),
                                    )
                                ):
                                    item = batch[seg_base + off]
                                    completions[item[1]] = (
                                        acc,
                                        start,
                                        fin,
                                        item[2],
                                    )
                            for item in batch[accepted:]:
                                heapq.heappush(queue, item)
                            if accepted == 0:
                                # boundary-blocked segment: the scalar
                                # loop finishes it without re-draining
                                no_batch_before = limit
                            elif accepted < len(batch):
                                batch_paused = True
                            continue
                        for item in batch:
                            heapq.heappush(queue, item)
                        no_batch_before = limit
                t, pos, retries = heapq.heappop(queue)
                batch_paused = False
                best = select(t, class_ids[pos])
                if best is None:
                    nxt = view.next_transition_after(t)
                    if nxt is None:
                        shed_records.append(
                            (pos, retries, "no_feasible_accelerator", t)
                        )
                        continue
                    requeues += 1
                    if timeline is not None:
                        timeline.append((nxt, "requeue", pos, retries))
                    heapq.heappush(queue, (nxt, pos, retries))
                    continue
                order, start, finish = best
                next_down = view.next_down_after(order, start)
                if next_down is not None and next_down < finish:
                    # killed: the down window opened mid-execution
                    kills += 1
                    if kill_times is not None:
                        kill_times.append(next_down)
                    if timeline is not None:
                        timeline.append((next_down, "kill", pos, retries + 1))
                    free[order] = next_down
                    if retries + 1 > max_retries:
                        shed_records.append(
                            (pos, retries + 1, "retry_budget_exhausted", next_down)
                        )
                        continue
                    heapq.heappush(
                        queue, (next_down + backoff(retries + 1), pos, retries + 1)
                    )
                    continue
                free[order] = finish
                completions[pos] = (order, start, finish, retries)
            loop_span.set(
                kills=kills, requeues=requeues, shed=len(shed_records)
            )

        shed_records.sort()
        makespan = max(
            (entry[2] for entry in completions if entry is not None), default=0.0
        )
        downtime = {name: 0.0 for name in names}
        downtime.update(faults.downtime(makespan))
        GLOBAL_STATS.record_faults(
            FaultStats(
                windows=len(faults),
                kills=kills,
                retries=sum(entry[3] for entry in completions if entry is not None)
                + sum(record[1] for record in shed_records),
                requeues=requeues,
                shed=len(shed_records),
                completed=sum(1 for entry in completions if entry is not None),
            )
        )

        if streaming or monitor is not None:
            positions = [pos for pos in range(n) if completions[pos] is not None]
        if monitor is not None:
            # the fault loop has no flush hook; feed the monitor the
            # final outcomes in the same arrival-ordered chunk_size
            # blocks the streaming report consumes below
            for lo in range(0, len(positions), chunk_size):
                batch = positions[lo : lo + chunk_size]
                monitor.observe_chunk(
                    arrivals[batch],
                    np.asarray([completions[pos][1] for pos in batch]),
                    np.asarray([completions[pos][2] for pos in batch]),
                )
            if shed_records:
                monitor.observe_sheds(
                    np.asarray([record[3] for record in shed_records])
                )
            if kill_times:
                monitor.observe_kills(np.asarray(kill_times))
        if streaming:
            for lo in range(0, len(positions), chunk_size):
                batch = positions[lo : lo + chunk_size]
                report.observe_batch(
                    np.asarray([completions[pos][0] for pos in batch], dtype=np.int64),
                    arrivals[batch],
                    np.asarray([completions[pos][1] for pos in batch]),
                    np.asarray([completions[pos][2] for pos in batch]),
                )
            report.record_fault_metadata(
                shed_count=len(shed_records),
                total_retries=sum(
                    entry[3] for entry in completions if entry is not None
                )
                + sum(record[1] for record in shed_records),
                kills=kills,
                requeues=requeues,
                fault_events=faults.events(),
                downtime=downtime,
            )
            return report

        completed = [
            CompletedRequest(
                request=requests[pos],
                accelerator=names[entry[0]],
                start=entry[1],
                finish=entry[2],
                retries=entry[3],
            )
            for pos, entry in enumerate(completions)
            if entry is not None
        ]
        shed = [
            ShedRequest(request=requests[pos], retries=r, reason=reason, time=when)
            for pos, r, reason, when in shed_records
        ]
        fault_timeline = sorted(
            (when, kind, requests[pos].request_id, retries)
            for when, kind, pos, retries in (timeline or [])
        )
        return ServingReport(
            completed=completed,
            shed=shed,
            fault_events=faults.events(),
            downtime=downtime,
            kills=kills,
            requeues=requeues,
            fault_timeline=fault_timeline,
        )

    def _run_scan(self, trace: Union[Sequence[Request], SoATrace]) -> ServingReport:
        """The seed dispatch loop: linear scan, one object per request."""
        if isinstance(trace, SoATrace):
            trace = trace.materialize()
        free_at = {name: 0.0 for name in self.partition.designs}
        completed = []
        for request in sorted(trace, key=lambda r: r.arrival):
            best_name, best_finish, best_start = None, float("inf"), 0.0
            for name in free_at:
                try:
                    service = self._service(name, request.shape)
                except ValueError:
                    continue
                start = max(request.arrival, free_at[name])
                finish = start + service
                if finish < best_finish:
                    best_name, best_finish, best_start = name, finish, start
            if best_name is None:
                raise ValueError(f"no accelerator can serve {request.shape}")
            free_at[best_name] = best_finish
            completed.append(
                CompletedRequest(
                    request=request,
                    accelerator=best_name,
                    start=best_start,
                    finish=best_finish,
                )
            )
        return ServingReport(completed=completed)

    def _normalize(
        self,
        trace: Union[Sequence[Request], SoATrace],
        need_requests: bool,
        as_arrays: bool = False,
    ) -> tuple[np.ndarray, Sequence[int], list[GemmShape], list[Request] | None]:
        """Arrival-sorted SoA view of ``trace`` (+ Request list if needed).

        ``as_arrays=True`` keeps the class ids as an int64 array (the
        vectorized engine's native form — an ``SoATrace`` passes through
        without a single element being boxed); the default returns the
        list the scalar engines index fastest.
        """
        if isinstance(trace, SoATrace):
            requests = trace.materialize() if need_requests else None
            class_ids = trace.shape_ids if as_arrays else trace.shape_ids.tolist()
            return trace.arrivals, class_ids, list(trace.shapes), requests
        ordered = sorted(trace, key=lambda r: r.arrival)
        class_index: dict[GemmShape, int] = {}
        class_ids = [
            class_index.setdefault(request.shape, len(class_index))
            for request in ordered
        ]
        arrivals = np.asarray([request.arrival for request in ordered])
        if as_arrays:
            class_ids = np.asarray(class_ids, dtype=np.int64)
        return arrivals, class_ids, list(class_index), ordered

    def _class_specs(
        self, classes: Sequence[GemmShape], used: set[int]
    ) -> list[tuple]:
        """Flat ``(acc, service, ...)`` dispatch spec per shape class."""
        names = list(self.partition.designs)
        specs: list[tuple] = []
        for class_id, shape in enumerate(classes):
            if class_id not in used:
                specs.append(())
                continue
            flat: list = []
            for order, name in enumerate(names):
                service = self._service_or_none(name, shape)
                if service is not None:
                    flat.append(order)
                    flat.append(service)
            if not flat:
                raise ValueError(f"no accelerator can serve {shape}")
            specs.append(tuple(flat))
        return specs

    @staticmethod
    def _service_matrix(names: Sequence[str], specs: Sequence[tuple]) -> np.ndarray:
        """Dense ``(width, classes)`` service matrix; ``inf`` = infeasible."""
        services = np.full((len(names), len(specs)), np.inf)
        for cid, spec in enumerate(specs):
            for offset in range(0, len(spec), 2):
                services[spec[offset], cid] = spec[offset + 1]
        return services

    @staticmethod
    def _require_finite_services(
        names: Sequence[str], services: np.ndarray, classes: Sequence[GemmShape]
    ) -> None:
        """Reject NaN service entries for explicit ``dispatch="vectorized"``.

        ``inf`` legitimately marks infeasible pairs (it can never win a
        strict-less earliest-finish comparison), but NaN poisons every
        comparison and would silently desynchronize the engines — so an
        explicit vectorized request fails loudly, naming the offending
        accelerator and shape class, instead of falling back.
        """
        bad = np.argwhere(np.isnan(services))
        if bad.size:
            order, cid = (int(value) for value in bad[0])
            raise ValueError(
                f"dispatch='vectorized' requires finite service times: "
                f"accelerator {names[order]!r} reports NaN for shape class "
                f"{classes[cid]}"
            )

    def _run_fast(
        self,
        trace: Union[Sequence[Request], SoATrace],
        *,
        streaming: bool,
        dispatch: str,
        quantile_error: float,
        chunk_size: int,
        monitor: "ServingMonitor | None" = None,
    ) -> ServingReport | StreamingServingReport:
        names = list(self.partition.designs)
        # the vectorized engine is legal at any width; ``auto`` picks it
        # whenever the native exact loop is compiled (it beats both the
        # table and the heap at every measured width) and keeps the
        # NumPy speculative fallback to the narrow partitions where its
        # guesses stay accurate
        use_vectorized = dispatch == "vectorized" or (
            dispatch == "auto"
            and (native_available() or len(names) <= VECTORIZED_MAX_ACCELERATORS)
        )
        arrivals, class_ids, classes, requests = self._normalize(
            trace, need_requests=not streaming, as_arrays=use_vectorized
        )
        if streaming:
            report = StreamingServingReport(names, quantile_error=quantile_error)
        used = (
            # bincount instead of np.unique: no million-element sort
            set(
                np.flatnonzero(
                    np.bincount(class_ids, minlength=len(classes))
                ).tolist()
            )
            if use_vectorized
            else set(class_ids)
        )
        specs = self._class_specs(classes, used)
        # dispatched service lookups are cache hits by construction
        self.stats.cache_hits += len(class_ids)
        free = [0.0] * len(names)
        arrival_list = None if use_vectorized else arrivals.tolist()

        if streaming:
            def flush(base: int, accs: list, starts: list, finishes: list) -> None:
                report.observe_batch(
                    np.asarray(accs, dtype=np.int64),
                    arrivals[base : base + len(accs)],
                    np.asarray(starts),
                    np.asarray(finishes),
                )
        else:
            completed: list[CompletedRequest] = []

            def flush(base: int, accs: list, starts: list, finishes: list) -> None:
                for offset in range(len(accs)):
                    completed.append(
                        CompletedRequest(
                            request=requests[base + offset],
                            accelerator=names[accs[offset]],
                            start=starts[offset],
                            finish=finishes[offset],
                        )
                    )

        if GLOBAL_TRACER.enabled:
            # wrap only when tracing: the disabled path keeps the raw
            # flush callback with zero indirection
            inner_flush = flush

            def flush(base: int, accs: list, starts: list, finishes: list) -> None:
                with span(
                    "serve.dispatch_chunk",
                    track="serving",
                    base=base,
                    size=len(accs),
                ):
                    inner_flush(base, accs, starts, finishes)

        if monitor is not None:
            # outermost wrap: the monitor reads the chunk's final
            # decisions after the report consumed them — it can observe,
            # never influence (byte-identity is conformance-gated)
            pre_monitor_flush = flush

            def flush(base: int, accs: list, starts: list, finishes: list) -> None:
                pre_monitor_flush(base, accs, starts, finishes)
                monitor.observe_chunk(
                    arrivals[base : base + len(accs)],
                    np.asarray(starts, dtype=np.float64),
                    np.asarray(finishes, dtype=np.float64),
                )

        if use_vectorized:
            if streaming:
                # The streaming report's running float sums depend on
                # flush boundaries, so the variable-length accepted
                # segments are buffered and re-emitted as exact
                # ``chunk_size`` blocks — the same boundaries the scalar
                # engines use — keeping ``as_dict()`` bit-identical.
                pend_accs: list[np.ndarray] = []
                pend_starts: list[np.ndarray] = []
                pend_fins: list[np.ndarray] = []
                pend = {"count": 0, "base": 0}

                def vflush(base, accs, starts, finishes):
                    if pend["count"] == 0:
                        pend["base"] = base
                    accs = np.asarray(accs, dtype=np.int64)
                    pend_accs.append(accs)
                    pend_starts.append(np.asarray(starts))
                    pend_fins.append(np.asarray(finishes))
                    pend["count"] += len(accs)
                    while pend["count"] >= chunk_size:
                        accs_all = np.concatenate(pend_accs)
                        starts_all = np.concatenate(pend_starts)
                        fins_all = np.concatenate(pend_fins)
                        flush(
                            pend["base"],
                            accs_all[:chunk_size],
                            starts_all[:chunk_size],
                            fins_all[:chunk_size],
                        )
                        del pend_accs[:], pend_starts[:], pend_fins[:]
                        pend["base"] += chunk_size
                        pend["count"] -= chunk_size
                        if pend["count"]:
                            pend_accs.append(accs_all[chunk_size:])
                            pend_starts.append(starts_all[chunk_size:])
                            pend_fins.append(fins_all[chunk_size:])

                def vfinish() -> None:
                    if pend["count"]:
                        flush(
                            pend["base"],
                            np.concatenate(pend_accs),
                            np.concatenate(pend_starts),
                            np.concatenate(pend_fins),
                        )
                        del pend_accs[:], pend_starts[:], pend_fins[:]
                        pend["count"] = 0

                seg_flush = vflush
            else:
                inner = flush

                def vflush(base, accs, starts, finishes):
                    inner(base, accs.tolist(), starts.tolist(), finishes.tolist())

                vfinish = None
                seg_flush = flush

            services = self._service_matrix(names, specs)
            if dispatch == "vectorized":
                self._require_finite_services(names, services, classes)

            def fallback(lo: int, hi: int) -> None:
                # scalar burst over a stretch speculation keeps
                # mispredicting; same engine state, same decisions
                def burst_flush(base, accs, starts, finishes):
                    seg_flush(lo + base, accs, starts, finishes)

                _dispatch_table(
                    arrivals[lo:hi].tolist(),
                    class_ids[lo:hi].tolist(),
                    specs,
                    free,
                    burst_flush,
                    chunk_size,
                )

            dispatch_vectorized(
                arrivals,
                class_ids,
                services,
                free,
                vflush,
                chunk_size,
                fallback=fallback,
            )
            if vfinish is not None:
                vfinish()
            return report if streaming else ServingReport(completed=completed)

        use_heap = dispatch == "heap" or (
            dispatch == "auto" and len(names) >= HEAP_MIN_ACCELERATORS
        )
        if use_heap:
            heap_tables = []
            for spec in specs:
                if not spec:
                    heap_tables.append(None)
                    continue
                services = [math.inf] * len(names)
                heap = []
                idle_rank = []
                for offset in range(0, len(spec), 2):
                    order = spec[offset]
                    service = spec[offset + 1]
                    services[order] = service
                    heap.append((0.0 + service, order, order, 0.0))
                    idle_rank.append((service, order, order))
                heapq.heapify(heap)
                idle_rank.sort()
                heap_tables.append((heap, services, idle_rank))
            _dispatch_heap(
                arrival_list, class_ids, heap_tables, free, flush, chunk_size
            )
        else:
            _dispatch_table(arrival_list, class_ids, specs, free, flush, chunk_size)
        return report if streaming else ServingReport(completed=completed)


@dataclass(frozen=True)
class LoadSweepPoint:
    """One offered-load measurement on the throughput/latency curve."""

    offered_rps: float
    achieved_rps: float
    p50: float
    p99: float
    mean_latency: float
    num_requests: int
    #: SLO verdict for this point (None when the sweep ran without one)
    slo_ok: bool | None = None
    #: burn-rate alerts fired while serving this point
    slo_alerts: int = 0

    @property
    def saturation(self) -> float:
        """Achieved / offered throughput (1.0 = keeping up)."""
        if self.offered_rps == 0:
            return 0.0
        return self.achieved_rps / self.offered_rps


@dataclass
class LoadSweepResult:
    """An offered-load sweep: points, saturation knee, plateau exit."""

    points: list[LoadSweepPoint]
    #: first offered load the partition could not keep up with
    knee_rps: float | None
    #: throughput ceiling observed when the sweep exited early
    plateau_rps: float | None
    early_exit: bool
    #: first offered load that breached the SLO (None without a spec,
    #: or when every point stayed within budget)
    slo_breach_rps: float | None = None

    def rows(self) -> list[dict]:
        rows = []
        for point in self.points:
            row = {
                "offered_rps": round(point.offered_rps, 1),
                "achieved_rps": round(point.achieved_rps, 1),
                "saturation": round(point.saturation, 3),
                "p50_ms": round(point.p50 * 1e3, 3),
                "p99_ms": round(point.p99 * 1e3, 3),
                "mean_ms": round(point.mean_latency * 1e3, 3),
            }
            if point.slo_ok is not None:
                row["slo"] = "ok" if point.slo_ok else f"BREACH({point.slo_alerts})"
            rows.append(row)
        return rows


def default_load_ramp(
    simulator: ServingSimulator, shapes: Sequence[GemmShape], points: int = 10
) -> list[float]:
    """A geometric offered-load ramp bracketing the partition's capacity.

    Capacity is approximated as every accelerator draining its mean
    feasible service time concurrently; the ramp spans 0.1x to ~3x of
    it so the saturation knee lands inside the sweep.
    """
    capacity = 0.0
    for name in simulator.partition.designs:
        services = [
            service
            for shape in dict.fromkeys(shapes)
            if (service := simulator._service_or_none(name, shape)) is not None
        ]
        if services:
            capacity += len(services) / sum(services)
    if capacity <= 0:
        raise ValueError("no accelerator can serve any of the shapes")
    factor = (3.0 / 0.1) ** (1.0 / max(points - 1, 1))
    return [0.1 * capacity * factor**index for index in range(points)]


def load_sweep(
    simulator: ServingSimulator,
    shapes: Sequence[GemmShape],
    offered_loads: Sequence[float] | None = None,
    *,
    num_requests: int = 2000,
    seed: int = 0,
    streaming: bool = True,
    quantile_error: float = 0.01,
    knee_tol: float = 0.05,
    plateau_rtol: float = 0.02,
    jobs: int = 1,
    shards: int = 1,
    start_method: str | None = None,
    faults: FaultSchedule | None = None,
    fault_policy: FaultPolicy | None = None,
    slo: "SloSpec | str | None" = None,
    slo_windows: int = 50,
) -> LoadSweepResult:
    """Sweep offered load, collecting throughput and tail-latency curves.

    For each offered load (requests/sec) a fresh SoA trace is generated
    and served (``streaming=True`` keeps the sweep O(1) in memory).
    Every point draws its trace from :func:`~repro.sim.streaming.derive_seed`
    ``(seed, point index)``, so the points are decorrelated yet fully
    determined by ``seed`` alone.  The *saturation knee* is the first
    load whose achieved throughput falls below ``offered * (1 -
    knee_tol)``; once achieved throughput stops growing by more than
    ``plateau_rtol`` between consecutive points the sweep exits early —
    past saturation every extra point costs a full simulation and
    reports the same ceiling.

    ``jobs > 1`` evaluates points in waves of ``jobs`` through
    :func:`~repro.perf.parallel.parallel_map` — thread-based, so the
    simulator's SoA traces and service tables are shared, never pickled
    — while the knee/plateau fold still walks the results in offered-
    load order and truncates at the same point, making the returned
    sweep byte-equal to a ``jobs=1`` run (``jobs=0`` uses every core).

    ``faults`` applies the same fault schedule to every point of the
    sweep (the schedule is in absolute trace time), so the curve shows
    degraded-capacity behaviour; latency percentiles cover completed
    requests only, with shedding reflected in achieved throughput.

    ``shards > 1`` serves each point through a shared
    :class:`~repro.sim.cluster_serving.ShardedServingCluster` (one
    process pool reused across points, ``start_method`` selecting
    fork/spawn/forkserver/inline): every point's trace is partitioned
    into ``shards`` replicas whose per-shard dispatch is byte-identical
    to unsharded runs over the same sub-traces.  Points then evaluate
    sequentially — the parallelism budget lives in the shard pool, so
    ``jobs`` bounds the pool's worker processes instead of sweep
    threads.  Sharded points imply ``streaming=True``.

    ``slo`` (a spec string like ``"p99<50ms,avail>0.999"`` or a
    compiled :class:`repro.obs.slo.SloSpec`) attaches a windowed
    :class:`~repro.obs.windows.ServingMonitor` to every point — each
    point's horizon cut into ``slo_windows`` windows — and stamps the
    point with its burn-rate verdict, so the saturation knee carries an
    SLO-breach annotation (``slo_breach_rps`` is the first offered load
    whose point fired an alert).
    """
    if offered_loads is None:
        offered_loads = default_load_ramp(simulator, shapes)
    offered_loads = list(offered_loads)
    if not offered_loads:
        raise ValueError("need at least one offered load")
    if any(load <= 0 for load in offered_loads):
        raise ValueError("offered loads must be positive")
    if shards < 1:
        raise ValueError("need at least one shard")

    cluster = None
    if shards > 1:
        from repro.sim.cluster_serving import ShardedServingCluster

        cluster = ShardedServingCluster(
            simulator,
            shapes,
            shards=shards,
            quantile_error=quantile_error,
            start_method=start_method,
            max_workers=resolve_jobs(jobs) if jobs != 1 else None,
            faults=faults,
            fault_policy=fault_policy,
        )

    slo_spec = None
    if slo is not None:
        from repro.obs.slo import SloSpec

        slo_spec = SloSpec.parse(slo) if isinstance(slo, str) else slo

    def evaluate(task: tuple[int, float]) -> LoadSweepPoint:
        index, offered = task
        monitor = None
        if slo_spec is not None:
            from repro.obs.windows import ServingMonitor

            # each point's trace spans ~num_requests/offered seconds of
            # simulated time; cut that horizon into slo_windows windows
            monitor = ServingMonitor.for_horizon(
                num_requests / offered,
                slo_windows,
                quantile_error=quantile_error,
            )
        if cluster is not None:
            fleet = cluster.serve(
                num_requests,
                1.0 / offered,
                seed=derive_seed(seed, index),
                monitor_window=(
                    monitor.window_seconds if monitor is not None else None
                ),
            )
            report = fleet.report
            if monitor is not None:
                monitor = fleet.monitor
        else:
            trace = generate_trace_soa(
                shapes, num_requests, 1.0 / offered, seed=derive_seed(seed, index)
            )
            report = simulator.run(
                trace,
                streaming=streaming,
                quantile_error=quantile_error,
                faults=faults,
                fault_policy=fault_policy,
                monitor=monitor,
            )
        p50, p99 = report.latency_percentiles([50, 99])
        slo_ok = None
        slo_alerts = 0
        if monitor is not None:
            from repro.obs.slo import evaluate_slo

            verdict = evaluate_slo(monitor, slo_spec)
            slo_ok = verdict.ok
            slo_alerts = len(verdict.alerts)
        return LoadSweepPoint(
            offered_rps=offered,
            achieved_rps=report.throughput_rps,
            p50=p50,
            p99=p99,
            mean_latency=report.mean_latency(),
            num_requests=num_requests,
            slo_ok=slo_ok,
            slo_alerts=slo_alerts,
        )

    # one pool submission pipeline at a time: sharded sweeps keep their
    # parallelism inside the cluster, so points go through in order
    wave = 1 if cluster is not None else resolve_jobs(jobs)
    points: list[LoadSweepPoint] = []
    knee_rps: float | None = None
    plateau_rps: float | None = None
    slo_breach_rps: float | None = None
    early_exit = False
    position = 0
    try:
        while position < len(offered_loads) and not early_exit:
            tasks = [
                (index, offered_loads[index])
                for index in range(position, min(position + wave, len(offered_loads)))
            ]
            position += len(tasks)
            for point in parallel_map(evaluate, tasks, jobs=wave, chunksize=1):
                points.append(point)
                if knee_rps is None and point.saturation < 1.0 - knee_tol:
                    knee_rps = point.offered_rps
                if slo_breach_rps is None and point.slo_ok is False:
                    slo_breach_rps = point.offered_rps
                if len(points) >= 2 and knee_rps is not None:
                    previous = points[-2].achieved_rps
                    if (
                        previous > 0
                        and abs(point.achieved_rps - previous)
                        <= plateau_rtol * previous
                    ):
                        plateau_rps = point.achieved_rps
                        early_exit = True
                        break
    finally:
        if cluster is not None:
            cluster.close()
    return LoadSweepResult(
        points=points,
        knee_rps=knee_rps,
        plateau_rps=plateau_rps,
        early_exit=early_exit,
        slo_breach_rps=slo_breach_rps,
    )
