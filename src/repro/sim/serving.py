"""Serving simulation: GEMM request streams over a partition.

A deployed Versal board serves a *stream* of inference requests, not one
workload; what matters operationally is tail latency versus offered
load.  This module generates deterministic pseudo-random request traces
(exponential-ish inter-arrivals from a hash-based LCG — no global RNG,
fully reproducible), dispatches each request to the partition
accelerator that finishes it earliest, and reports throughput and
latency percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.multi_acc import AcceleratorPartition
from repro.perf.metrics import GLOBAL_STATS, EvalStats, track
from repro.perf.parallel import parallel_map
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class Request:
    """One GEMM request with its arrival time."""

    request_id: int
    shape: GemmShape
    arrival: float


@dataclass(frozen=True)
class CompletedRequest:
    request: Request
    accelerator: str
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.request.arrival

    @property
    def queueing_delay(self) -> float:
        return self.start - self.request.arrival


@dataclass
class ServingReport:
    completed: list[CompletedRequest]

    @property
    def makespan(self) -> float:
        return max((c.finish for c in self.completed), default=0.0)

    @property
    def throughput_rps(self) -> float:
        if self.makespan == 0:
            return 0.0
        return len(self.completed) / self.makespan

    def latency_percentile(self, percentile: float) -> float:
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if not self.completed:
            raise ValueError("no completed requests")
        latencies = sorted(c.latency for c in self.completed)
        index = min(len(latencies) - 1, math.ceil(percentile / 100 * len(latencies)) - 1)
        return latencies[index]

    def mean_latency(self) -> float:
        return sum(c.latency for c in self.completed) / len(self.completed)

    def accelerator_load(self) -> dict[str, int]:
        load: dict[str, int] = {}
        for request in self.completed:
            load[request.accelerator] = load.get(request.accelerator, 0) + 1
        return load


def _lcg_uniform(seed: int, index: int) -> float:
    """Deterministic uniform in (0, 1) from a splitmix-style hash."""
    x = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return ((x & 0xFFFFFFFF) + 1) / (2**32 + 2)


def generate_trace(
    shapes: Sequence[GemmShape],
    num_requests: int,
    mean_interarrival: float,
    seed: int = 0,
) -> list[Request]:
    """An exponential-interarrival request trace over a shape mix."""
    if num_requests < 1:
        raise ValueError("need at least one request")
    if mean_interarrival <= 0:
        raise ValueError("mean inter-arrival must be positive")
    if not shapes:
        raise ValueError("need at least one shape")
    requests = []
    clock = 0.0
    for index in range(num_requests):
        clock += -mean_interarrival * math.log(_lcg_uniform(seed, 2 * index))
        shape = shapes[int(_lcg_uniform(seed, 2 * index + 1) * len(shapes))]
        requests.append(Request(request_id=index, shape=shape, arrival=clock))
    return requests


class ServingSimulator:
    """Earliest-finish dispatch of a request trace over a partition.

    Service times are memoized per ``(accelerator, shape)`` pair;
    :meth:`prewarm` fills that cache in parallel before serving starts
    so no request pays a cold model evaluation, and :attr:`stats`
    reports the hit/miss balance after a run.
    """

    def __init__(self, partition: AcceleratorPartition):
        self.partition = partition
        # per-shape service times are reused across requests
        self._service_cache: dict[tuple[str, GemmShape], float] = {}
        self.stats = EvalStats()

    def _service(self, accelerator: str, shape: GemmShape) -> float:
        key = (accelerator, shape)
        if key not in self._service_cache:
            self.stats.cache_misses += 1
            self.stats.evaluations += 1
            self._service_cache[key] = self.partition.estimate_on(accelerator, shape)
        else:
            self.stats.cache_hits += 1
        return self._service_cache[key]

    def prewarm(
        self, shapes: Sequence[GemmShape], jobs: int = 1, vectorize: bool = False
    ) -> int:
        """Precompute service times for ``shapes`` on every accelerator.

        Infeasible pairs are skipped (dispatch skips them too).  Returns
        the number of pairs resolved; with ``jobs > 1`` the model
        evaluations run concurrently.  ``vectorize`` resolves all pairs
        through one batch evaluation per (precision, kernel style)
        family instead of per-pair model walks; the cached service times
        are bit-identical either way.
        """

        def resolve(pair: tuple[str, GemmShape]) -> tuple[tuple[str, GemmShape], float] | None:
            name, shape = pair
            try:
                return pair, self.partition.estimate_on(name, shape)
            except ValueError:
                return None

        pairs = [
            (name, shape)
            for shape in dict.fromkeys(shapes)
            for name in self.partition.designs
            if (name, shape) not in self._service_cache
        ]
        with track(self.stats):
            if vectorize and pairs:
                warmed = self._prewarm_vectorized(pairs)
            else:
                resolved = parallel_map(resolve, pairs, jobs=jobs)
                warmed = [entry for entry in resolved if entry is not None]
        for key, service in warmed:
            self._service_cache[key] = service
        self.stats.evaluations += len(warmed)
        self.stats.skipped += len(pairs) - len(warmed)
        GLOBAL_STATS.record(EvalStats(evaluations=len(warmed), jobs=jobs))
        return len(warmed)

    def _prewarm_vectorized(
        self, pairs: Sequence[tuple[str, GemmShape]]
    ) -> list[tuple[tuple[str, GemmShape], float]]:
        """Resolve pairs through the batch evaluation kernel.

        A grid evaluates one (precision, kernel style) family at a time,
        so mixed partitions are grouped; within a group every pair
        carries its own workload shape.
        """
        from repro.perf.vectorized import batch_estimate_designs

        groups: dict[tuple, list[tuple[str, GemmShape]]] = {}
        for pair in pairs:
            design = self.partition.designs[pair[0]]
            groups.setdefault((design.precision, design.kernel_style), []).append(pair)
        warmed = []
        for group in groups.values():
            designs = [self.partition.designs[name] for name, _ in group]
            shapes = [shape for _, shape in group]
            batch = batch_estimate_designs(designs, shapes)
            for index, pair in enumerate(group):
                if batch.feasible[index]:
                    warmed.append((pair, float(batch.total_seconds[index])))
        return warmed

    def run(self, trace: Sequence[Request]) -> ServingReport:
        free_at = {name: 0.0 for name in self.partition.designs}
        completed = []
        for request in sorted(trace, key=lambda r: r.arrival):
            best_name, best_finish, best_start = None, float("inf"), 0.0
            for name in free_at:
                try:
                    service = self._service(name, request.shape)
                except ValueError:
                    continue
                start = max(request.arrival, free_at[name])
                finish = start + service
                if finish < best_finish:
                    best_name, best_finish, best_start = name, finish, start
            if best_name is None:
                raise ValueError(f"no accelerator can serve {request.shape}")
            free_at[best_name] = best_finish
            completed.append(
                CompletedRequest(
                    request=request,
                    accelerator=best_name,
                    start=best_start,
                    finish=best_finish,
                )
            )
        return ServingReport(completed=completed)
