"""Simulators: the stand-ins for AMD's execution platforms (Table I)."""

from repro.sim.engine import PipelineStage, PipelineSimulator, PipelineResult
from repro.sim.aiesim import KernelSimReport, simulate_kernel, GraphSimReport, simulate_graph
from repro.sim.hwsim import HwSimulator, HwRunResult
from repro.sim.functional import FunctionalGemm, FunctionalResult
from repro.sim.platforms import Platform, PLATFORMS, platform_by_name, run_on_platform
from repro.sim.chaos import (
    DEFAULT_FAULT_POLICY,
    FaultEvent,
    FaultPolicy,
    FaultSchedule,
    FaultWindow,
    RecoveryEvent,
    chaos_schedule,
    parse_fault_spec,
)
from repro.sim.serving import (
    LoadSweepPoint,
    LoadSweepResult,
    Request,
    CompletedRequest,
    ServingReport,
    ServingSimulator,
    ShedRequest,
    generate_trace,
    load_sweep,
)
from repro.sim.streaming import (
    QuantileSketch,
    SoATrace,
    StreamingServingReport,
    generate_trace_soa,
    generate_trace_shard,
    shard_arrival_offsets,
    shard_bounds,
    splitmix_uniforms,
)
from repro.sim.cluster_serving import (
    FleetReport,
    ShardedServingCluster,
    serve_sharded,
)

__all__ = [
    "PipelineStage",
    "PipelineSimulator",
    "PipelineResult",
    "KernelSimReport",
    "simulate_kernel",
    "GraphSimReport",
    "simulate_graph",
    "HwSimulator",
    "HwRunResult",
    "FunctionalGemm",
    "FunctionalResult",
    "Platform",
    "PLATFORMS",
    "platform_by_name",
    "run_on_platform",
    "Request",
    "CompletedRequest",
    "ServingReport",
    "ServingSimulator",
    "ShedRequest",
    "DEFAULT_FAULT_POLICY",
    "FaultEvent",
    "FaultPolicy",
    "FaultSchedule",
    "FaultWindow",
    "RecoveryEvent",
    "chaos_schedule",
    "parse_fault_spec",
    "generate_trace",
    "load_sweep",
    "LoadSweepPoint",
    "LoadSweepResult",
    "QuantileSketch",
    "SoATrace",
    "StreamingServingReport",
    "generate_trace_soa",
    "generate_trace_shard",
    "shard_arrival_offsets",
    "shard_bounds",
    "splitmix_uniforms",
    "FleetReport",
    "ShardedServingCluster",
    "serve_sharded",
]
