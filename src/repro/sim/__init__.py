"""Simulators: the stand-ins for AMD's execution platforms (Table I)."""

from repro.sim.engine import PipelineStage, PipelineSimulator, PipelineResult
from repro.sim.aiesim import KernelSimReport, simulate_kernel, GraphSimReport, simulate_graph
from repro.sim.hwsim import HwSimulator, HwRunResult
from repro.sim.functional import FunctionalGemm, FunctionalResult
from repro.sim.platforms import Platform, PLATFORMS, platform_by_name, run_on_platform

__all__ = [
    "PipelineStage",
    "PipelineSimulator",
    "PipelineResult",
    "KernelSimReport",
    "simulate_kernel",
    "GraphSimReport",
    "simulate_graph",
    "HwSimulator",
    "HwRunResult",
    "FunctionalGemm",
    "FunctionalResult",
    "Platform",
    "PLATFORMS",
    "platform_by_name",
    "run_on_platform",
]
