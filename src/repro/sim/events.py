"""A minimal event-driven resource simulator.

The buffered-pipeline engine covers linear dataflows; scheduling a DNN's
layer graph over a multi-accelerator partition needs general resources
and dependencies.  :class:`EventSimulator` provides exactly that: tasks
with precedence edges compete for named single-server resources; the
simulator advances an event queue and records per-task start/finish and
per-resource busy intervals.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``release`` is the earliest start time (e.g. a request's arrival in
    a serving trace); dependencies can push the actual start later.
    """

    name: str
    resource: str
    duration: float
    depends_on: tuple[str, ...] = ()
    release: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name}: negative duration")
        if self.release < 0:
            raise ValueError(f"task {self.name}: negative release time")


@dataclass
class TaskRecord:
    """When a task actually ran."""

    task: Task
    start: float
    finish: float


@dataclass
class SimulationResult:
    records: dict[str, TaskRecord] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        if not self.records:
            return 0.0
        return max(r.finish for r in self.records.values())

    def resource_busy(self, resource: str) -> float:
        return sum(
            r.finish - r.start
            for r in self.records.values()
            if r.task.resource == resource
        )

    def resource_utilization(self, resource: str) -> float:
        if self.makespan == 0:
            return 0.0
        return self.resource_busy(resource) / self.makespan

    def critical_path(self) -> list[str]:
        """Chase finish times backwards through the dependency edges."""
        if not self.records:
            return []
        current = max(self.records.values(), key=lambda r: r.finish)
        path = [current.task.name]
        while current.task.depends_on:
            predecessors = [self.records[d] for d in current.task.depends_on]
            current = max(predecessors, key=lambda r: r.finish)
            path.append(current.task.name)
        return list(reversed(path))


class EventSimulator:
    """Schedules dependent tasks on single-server resources."""

    def __init__(self, tasks: list[Task]):
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")
        known = set(names)
        for task in tasks:
            missing = set(task.depends_on) - known
            if missing:
                raise ValueError(f"task {task.name} depends on unknown tasks {missing}")
        self.tasks = {t.name: t for t in tasks}

    def run(self) -> SimulationResult:
        result = SimulationResult()
        resource_free: dict[str, float] = {}
        remaining_deps = {
            name: set(task.depends_on) for name, task in self.tasks.items()
        }
        dependents: dict[str, list[str]] = {name: [] for name in self.tasks}
        for name, task in self.tasks.items():
            for dep in task.depends_on:
                dependents[dep].append(name)

        ready_at = {
            name: self.tasks[name].release
            for name, deps in remaining_deps.items()
            if not deps
        }
        # (ready time, insertion order, name) — FIFO per ready time
        queue: list[tuple[float, int, str]] = []
        counter = 0
        for name, when in sorted(ready_at.items()):
            heapq.heappush(queue, (when, counter, name))
            counter += 1

        scheduled = 0
        while queue:
            ready_time, _, name = heapq.heappop(queue)
            task = self.tasks[name]
            start = max(ready_time, resource_free.get(task.resource, 0.0))
            finish = start + task.duration
            resource_free[task.resource] = finish
            result.records[name] = TaskRecord(task=task, start=start, finish=finish)
            scheduled += 1
            for dependent in dependents[name]:
                remaining_deps[dependent].discard(name)
                if not remaining_deps[dependent]:
                    deps_done = max(
                        result.records[d].finish
                        for d in self.tasks[dependent].depends_on
                    )
                    ready = max(deps_done, self.tasks[dependent].release)
                    heapq.heappush(queue, (ready, counter, dependent))
                    counter += 1
        if scheduled != len(self.tasks):
            unscheduled = set(self.tasks) - set(result.records)
            raise ValueError(f"dependency cycle involving {sorted(unscheduled)}")
        return result
