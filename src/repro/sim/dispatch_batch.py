"""Speculative NumPy batch engine for earliest-finish dispatch.

The scalar engines in :mod:`repro.sim.serving` retire one request per
loop iteration; at a million requests the interpreter overhead dwarfs
the arithmetic.  This module dispatches the same trace in vectorized
*speculate-and-verify* rounds while staying **byte-identical** to the
seed scan:

1. **Guess** the per-request accelerator assignment with cheap
   approximate math — a θ-walk over cumulative service sums when the
   partition is saturated (every start is a busy handoff), or an
   elementwise ``arrival + service`` argmin when it is idle.
2. **Reconstruct** the per-accelerator finish trajectories the guess
   implies, exactly: each accelerator's busy chain is a sequential
   ``np.cumsum`` (NumPy's ``add.accumulate`` adds left to right, the
   same float64 additions the scalar loop performs one at a time).
3. **Verify** every decision against the true earliest-finish rule on
   the reconstructed state: candidate finishes are
   ``max(arrival, free) + service`` — the scan's exact expression —
   and a position is valid only when the guessed winner matches and the
   winner's start semantics (busy vs idle) match the reconstruction.
4. **Accept** the longest valid prefix.  By induction the scheduler
   state at the first mismatch is exact, so one scalar *corrected step*
   is computed from the already-verified candidates and the round
   always makes progress.

Why byte-identity holds: the scan computes ``start = max(arrival,
free)`` (a comparison, no rounding) and ``finish = start + service``
(one float64 add).  Every accepted value here is produced by that same
single add — either inside a sequential cumsum over the accelerator's
busy chain or as ``arrival + service`` for an idle admission — on
bit-equal operands.  The θ-walk's rearranged arithmetic is only ever a
*guess*; nothing it computes reaches the output.

Widths 1 and 2 are handled natively (the common partitions); wider
partitions are the caller's job (``serving.py`` delegates them to the
table/heap engines, which are byte-identical anyway).  The entry points
report how far they got so callers can fall back mid-trace:
persistent low acceptance (an adversarial arrival pattern) bails out
rather than degrading quadratically.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim._native import dispatch_exact as _native_dispatch
from repro.sim._native import theta_walk as _native_walk

#: speculation window right after a cut (kept small: a failed round's
#: cost is proportional to the window it speculated over)
MIN_WINDOW = 512

#: a round accepting fewer than this many requests counts as stalled
STALL_ACCEPT = 256

#: consecutive stalled rounds before handing a burst to the scalar
#: fallback — regime-transition churn (idle<->busy warmup) is skipped
#: at scalar speed instead of being speculated over and over
MAX_STALLS = 2

#: first scalar-fallback burst length; doubles while stalls persist, so
#: adversarial traces degrade to scalar throughput plus a vanishing
#: fraction of failed speculation rounds
MIN_BURST = 256

_INF = math.inf


def _finite_or(values: np.ndarray, fill: float) -> np.ndarray:
    if np.isfinite(values).all():
        return values
    return np.where(np.isfinite(values), values, fill)


def _theta_walk(u_list, v_list, theta: float) -> list:
    """Indices the θ-walk guesses for accelerator 1 (k=2 busy regime).

    Position ``j`` is an acc-1 pick iff ``U[j] > θ``, where θ starts at
    ``free1 - free0`` folded into the cumulative-sum frame and grows by
    ``V[j]`` at each pick.  Pure guess — accuracy only affects speed.

    This is the pure-Python fallback; when a C compiler is available the
    walk runs natively (:mod:`repro.sim._native`) — same decision chain,
    two orders of magnitude cheaper per element.
    """
    enders = []
    append = enders.append
    for j, u in enumerate(u_list):
        if u > theta:
            append(j)
            theta += v_list[j]
    return enders


def _walk_picks(u: np.ndarray, v: np.ndarray, theta: float) -> np.ndarray:
    """Boolean θ-walk pick array, native when possible."""
    if _native_walk is not None:
        return _native_walk(u, v, theta)
    d = np.zeros(u.size, dtype=bool)
    enders = _theta_walk(u.tolist(), v.tolist(), theta)
    if enders:
        d[enders] = True
    return d


_ARANGE = np.empty(0, dtype=np.int64)


def _arange(n: int) -> np.ndarray:
    """A cached ``0..n-1`` view (the busy round needs it every call)."""
    global _ARANGE
    if _ARANGE.size < n:
        _ARANGE = np.arange(max(n, 2 * _ARANGE.size), dtype=np.int64)
    return _ARANGE[:n]


def _round_k2_busy(
    a, c, s0, s1, free, limit=_INF, nd0=_INF, nd1=_INF, corrected=True
):
    """One saturated-regime speculation round over a two-wide partition.

    Returns ``(accepted, accs, starts, fins, reason)`` where ``reason``
    is ``None`` (full window), ``"idle"`` (the cut position needs an
    idle admission — the caller should try the idle guesser), or
    ``"boundary"`` (a ``limit``/``nd`` fault-segment constraint cut).
    """
    f0, f1 = free
    B = a.size
    s0f = _finite_or(s0, 0.0)
    u = np.cumsum(s0f)
    u -= s1
    if s0f is not s0:
        u[~np.isfinite(s0)] = _INF
    v = s0f + _finite_or(s1, 0.0)
    d = _walk_picks(u, v, f1 - f0)
    keep0 = ~d
    traj0 = np.cumsum(np.concatenate(((f0,), s0[keep0])))
    traj1 = np.cumsum(np.concatenate(((f1,), s1[d])))
    excl0 = np.cumsum(keep0)
    excl0 -= keep0
    excl1 = _arange(B) - excl0
    f0b = traj0[excl0]
    f1b = traj1[excl1]
    # the selected accelerator's free-before must not exceed the
    # arrival (busy-handoff semantics); test before the in-place max
    # below clobbers the free-before arrays
    ok = np.where(d, f1b, f0b) >= a
    st0 = np.maximum(a, f0b, out=f0b)
    st1 = np.maximum(a, f1b, out=f1b)
    fin0 = st0 + s0
    fin1 = st1 + s1
    w = fin1 < fin0
    ok &= w == d
    if limit != _INF:
        ok &= (st0 < limit) & (st1 < limit)
    if nd0 != _INF or nd1 != _INF:
        ok &= np.where(d, fin1 <= nd1, fin0 <= nd0)
    if ok.all():
        free[0] = float(traj0[-1])
        free[1] = float(traj1[-1])
        return (
            B,
            d,
            np.where(d, st1, st0),
            np.where(d, fin1, fin0),
            None,
        )
    q = int(np.argmin(ok))
    n0 = int(excl0[q])
    free[0] = float(traj0[n0])
    free[1] = float(traj1[q - n0])
    accs = d[:q]
    starts = np.where(d[:q], st1[:q], st0[:q])
    fins = np.where(d[:q], fin1[:q], fin0[:q])
    sel_free_q = float(traj1[q - n0]) if d[q] else float(traj0[n0])
    reason = None if sel_free_q >= float(a[q]) else "idle"
    if not corrected:
        return q, accs, starts, fins, reason or "boundary"
    step = _corrected_step(
        float(a[q]),
        float(s0[q]),
        float(s1[q]),
        free,
        limit,
        nd0,
        nd1,
    )
    if step is None:
        return q, accs, starts, fins, "boundary"
    return (
        q + 1,
        np.concatenate((accs, (step[0],))),
        np.concatenate((starts, (step[1],))),
        np.concatenate((fins, (step[2],))),
        reason,
    )


def _round_k2_idle(
    a, c, s0, s1, free, limit=_INF, nd0=_INF, nd1=_INF, corrected=True
):
    """One idle-regime round: every admission guessed as ``arrival + service``."""
    f0, f1 = free
    B = a.size
    fin0c = a + s0
    fin1c = a + s1
    d = fin1c < fin0c
    fins_full = np.where(d, fin1c, fin0c)
    idx = np.arange(B)
    last0 = np.maximum.accumulate(np.where(d, -1, idx))
    last1 = np.maximum.accumulate(np.where(d, idx, -1))
    prev0 = np.empty(B, dtype=np.int64)
    prev0[0] = -1
    prev0[1:] = last0[:-1]
    prev1 = np.empty(B, dtype=np.int64)
    prev1[0] = -1
    prev1[1:] = last1[:-1]
    f0b = np.where(prev0 >= 0, fins_full[np.maximum(prev0, 0)], f0)
    f1b = np.where(prev1 >= 0, fins_full[np.maximum(prev1, 0)], f1)
    ok = (a >= f0b) & (a >= f1b)
    if nd0 != _INF or nd1 != _INF:
        ok &= np.where(d, fin1c <= nd1, fin0c <= nd0)
    # starts equal arrivals wherever ``ok`` holds, so a finite ``limit``
    # is already satisfied: segment batches only contain times < limit
    if ok.all():
        i0 = int(last0[-1])
        i1 = int(last1[-1])
        free[0] = float(fins_full[i0]) if i0 >= 0 else f0
        free[1] = float(fins_full[i1]) if i1 >= 0 else f1
        return B, d, a.copy(), fins_full, None
    q = int(np.argmin(ok))
    if q:
        i0 = int(last0[q - 1])
        i1 = int(last1[q - 1])
        free[0] = float(fins_full[i0]) if i0 >= 0 else f0
        free[1] = float(fins_full[i1]) if i1 >= 0 else f1
    accs = d[:q]
    starts = a[:q].copy()
    fins = fins_full[:q]
    busy_cut = bool(a[q] < f0b[q]) or bool(a[q] < f1b[q])
    reason = "busy" if busy_cut else None
    if not corrected:
        return q, accs, starts, fins, reason or "boundary"
    step = _corrected_step(
        float(a[q]),
        float(s0[q]),
        float(s1[q]),
        free,
        limit,
        nd0,
        nd1,
    )
    if step is None:
        return q, accs, starts, fins, "boundary"
    return (
        q + 1,
        np.concatenate((accs, (step[0],))),
        np.concatenate((starts, (step[1],))),
        np.concatenate((fins, (step[2],))),
        reason,
    )


def _corrected_step(arrival, s0, s1, free, limit, nd0, nd1):
    """One exact scalar dispatch step from verified state.

    Mirrors the scan body bit for bit: ``start = arrival if arrival >
    free else free``, ``finish = start + service``, acc 1 wins only on
    a strictly earlier finish.  Updates ``free`` in place and returns
    ``(acc, start, finish)``, or ``None`` when a fault-segment
    constraint (start beyond ``limit``, finish past the accelerator's
    next down window) means the scalar fault loop must take over.
    """
    f0, f1 = free
    st0 = arrival if arrival > f0 else f0
    st1 = arrival if arrival > f1 else f1
    if st0 >= limit or st1 >= limit:
        return None
    fin0 = st0 + s0
    fin1 = st1 + s1
    if fin1 < fin0:
        if fin1 > nd1:
            return None
        free[1] = fin1
        return 1, st1, fin1
    if fin0 > nd0:
        return None
    free[0] = fin0
    return 0, st0, fin0


def _corrected_step_k1(arrival, s0, free, limit, nd0):
    f0 = free[0]
    st0 = arrival if arrival > f0 else f0
    if st0 >= limit:
        return None
    fin0 = st0 + s0
    if fin0 > nd0:
        return None
    free[0] = fin0
    return 0, st0, fin0


def _round_k1_busy(a, c, s0, free, limit=_INF, nd0=_INF, corrected=True):
    f0 = free[0]
    B = a.size
    traj = np.cumsum(np.concatenate(((f0,), s0)))
    f0b = traj[:-1]
    st = np.maximum(a, f0b)
    fin = st + s0
    ok = f0b >= a
    if limit != _INF:
        ok &= st < limit
    if nd0 != _INF:
        ok &= fin <= nd0
    if ok.all():
        free[0] = float(traj[-1])
        return B, np.zeros(B, dtype=np.int64), st, fin, None
    q = int(np.argmin(ok))
    free[0] = float(traj[q])
    reason = None if bool(f0b[q] >= a[q]) else "idle"
    accs = np.zeros(q, dtype=np.int64)
    if not corrected:
        return q, accs, st[:q], fin[:q], reason or "boundary"
    step = _corrected_step_k1(float(a[q]), float(s0[q]), free, limit, nd0)
    if step is None:
        return q, accs, st[:q], fin[:q], "boundary"
    return (
        q + 1,
        np.zeros(q + 1, dtype=np.int64),
        np.concatenate((st[:q], (step[1],))),
        np.concatenate((fin[:q], (step[2],))),
        reason,
    )


def _round_k1_idle(a, c, s0, free, limit=_INF, nd0=_INF, corrected=True):
    f0 = free[0]
    B = a.size
    fin = a + s0
    f0b = np.empty(B)
    f0b[0] = f0
    f0b[1:] = fin[:-1]
    ok = a >= f0b
    if nd0 != _INF:
        ok &= fin <= nd0
    if ok.all():
        free[0] = float(fin[-1])
        return B, np.zeros(B, dtype=np.int64), a.copy(), fin, None
    q = int(np.argmin(ok))
    if q:
        free[0] = float(fin[q - 1])
    reason = "busy" if bool(a[q] < f0b[q]) else None
    accs = np.zeros(q, dtype=np.int64)
    if not corrected:
        return q, accs, a[:q].copy(), fin[:q], reason or "boundary"
    step = _corrected_step_k1(float(a[q]), float(s0[q]), free, limit, nd0)
    if step is None:
        return q, accs, a[:q].copy(), fin[:q], "boundary"
    return (
        q + 1,
        np.zeros(q + 1, dtype=np.int64),
        np.concatenate((a[:q], (step[1],))),
        np.concatenate((fin[:q], (step[2],))),
        reason,
    )


def _one_round(a, c, services, free, busy, limit=_INF, next_downs=None, corrected=True):
    nd = next_downs or ()
    if services.shape[0] == 1:
        nd0 = nd[0] if nd else _INF
        row = services[0][c]
        if busy:
            return _round_k1_busy(a, c, row, free, limit, nd0, corrected)
        return _round_k1_idle(a, c, row, free, limit, nd0, corrected)
    nd0 = nd[0] if nd else _INF
    nd1 = nd[1] if nd else _INF
    s0 = services[0][c]
    s1 = services[1][c]
    if busy:
        return _round_k2_busy(a, c, s0, s1, free, limit, nd0, nd1, corrected)
    return _round_k2_idle(a, c, s0, s1, free, limit, nd0, nd1, corrected)


def dispatch_vectorized(
    arrivals, class_ids, services, free, flush, chunk_size, fallback=None
):
    """Dispatch a fault-free trace in speculate-and-verify rounds.

    ``services`` is a ``(width, classes)`` float64 matrix with ``inf``
    marking infeasible pairs; ``free`` is the mutable per-accelerator
    clock list shared with the scalar engines.  ``fallback(lo, hi)``
    dispatches ``arrivals[lo:hi]`` through a scalar engine from the
    current ``free`` state: it absorbs the stretches speculation keeps
    mispredicting (regime transitions, adversarial arrival patterns) in
    escalating bursts.  Without a fallback the function returns early
    instead; the return value is how many requests were dispatched from
    the front of the trace (``arrivals.size`` when a fallback is given).
    """
    n = int(arrivals.size)
    if services.shape[0] > 2:
        return 0
    if _native_dispatch is not None and np.isfinite(services).all():
        # exact native loop: no speculation to verify, no constraints to
        # hit — every chunk is fully dispatched in one C pass, and the
        # chunk-sized flushes keep streaming summation boundaries
        # identical to the scalar engines
        pos = 0
        while pos < n:
            hi = min(pos + chunk_size, n)
            _, accs, starts, fins = _native_dispatch(
                arrivals[pos:hi], class_ids[pos:hi], services, free,
                _INF, _INF, _INF,
            )
            flush(pos, accs, starts, fins)
            pos = hi
        return n
    pos = 0
    max_window = max(chunk_size, MIN_WINDOW)
    window = MIN_WINDOW
    busy = max(free) > float(arrivals[0]) if n else False
    stalls = 0
    burst = MIN_BURST
    while pos < n:
        hi = min(pos + window, n)
        span = hi - pos
        q, accs, starts, fins, reason = _one_round(
            arrivals[pos:hi], class_ids[pos:hi], services, free, busy
        )
        if q:
            flush(pos, accs, starts, fins)
            pos += q
        if reason == "idle":
            busy = False
        elif reason == "busy":
            busy = True
        if q >= span:
            window = min(window * 4, max_window)
            stalls = 0
            burst = MIN_BURST
        elif q >= STALL_ACCEPT:
            window = min(max(2 * q, MIN_WINDOW), max_window)
            stalls = 0
            burst = MIN_BURST
        else:
            window = MIN_WINDOW
            stalls += 1
            if stalls >= MAX_STALLS:
                if fallback is None:
                    return pos
                end = min(pos + burst, n)
                fallback(pos, end)
                pos = end
                burst = min(burst * 2, max_window)
                stalls = 0
                if pos < n:
                    busy = max(free) > float(arrivals[pos])
    return n


def dispatch_segment(times, class_ids, services, free, limit, next_downs):
    """Dispatch one clean fault segment (no window active, all times
    below ``limit``); used by the fault loop between transitions.

    ``next_downs[order]`` is the first down-window start after the
    segment opens (``inf`` when none): any admission whose start would
    reach ``limit`` or whose finish would cross its accelerator's next
    down window is left to the scalar fault loop, which owns the kill
    and requeue bookkeeping.  Returns ``(accepted, accs, starts,
    fins)`` for the verified prefix.
    """
    n = int(times.size)
    if n and _native_dispatch is not None and np.isfinite(services).all():
        nd = next_downs or ()
        nd0 = nd[0] if nd else _INF
        nd1 = nd[1] if len(nd) > 1 else _INF
        q, accs, starts, fins = _native_dispatch(
            times, class_ids, services, free, limit, nd0, nd1
        )
        return q, ([(0, accs, starts, fins)] if q else [])
    busy = max(free) > float(times[0]) if n else False
    pos = 0
    out = []
    while pos < n:
        q, accs, starts, fins, reason = _one_round(
            times[pos:n],
            class_ids[pos:n],
            services,
            free,
            busy,
            limit=limit,
            next_downs=next_downs,
        )
        if q:
            out.append((pos, accs, starts, fins))
            pos += q
        if reason == "boundary":
            break
        if reason == "idle":
            busy = False
        elif reason == "busy":
            busy = True
        if not q:
            break
    return pos, out
