"""Speculative NumPy batch engine for earliest-finish dispatch.

The scalar engines in :mod:`repro.sim.serving` retire one request per
loop iteration; at a million requests the interpreter overhead dwarfs
the arithmetic.  This module dispatches the same trace in vectorized
*speculate-and-verify* rounds while staying **byte-identical** to the
seed scan:

1. **Guess** the per-request accelerator assignment with cheap
   approximate math — a θ-walk over cumulative service sums when a
   two-wide partition is saturated, a blockwise frontier argmin on
   wider fleets, or an elementwise ``arrival + service`` argmin when
   the partition is idle.
2. **Reconstruct** the per-accelerator finish trajectories the guess
   implies, exactly: each accelerator's busy chain is a sequential
   ``np.cumsum`` (NumPy's ``add.accumulate`` adds left to right, the
   same float64 additions the scalar loop performs one at a time).
3. **Verify** every decision against the true earliest-finish rule on
   the reconstructed state: candidate finishes are
   ``max(arrival, free) + service`` — the scan's exact expression —
   and a position is valid only when the guessed winner matches and the
   winner's start semantics (busy vs idle) match the reconstruction.
4. **Accept** the longest valid prefix.  By induction the scheduler
   state at the first mismatch is exact, so one scalar *corrected step*
   is computed from the already-verified candidates and the round
   always makes progress.

Why byte-identity holds: the scan computes ``start = max(arrival,
free)`` (a comparison, no rounding) and ``finish = start + service``
(one float64 add).  Every accepted value here is produced by that same
single add — either inside a sequential cumsum over the accelerator's
busy chain or as ``arrival + service`` for an idle admission — on
bit-equal operands.  The guessers' rearranged arithmetic is only ever
a *guess*; nothing they compute reaches the output.

The rounds are width-generic: one busy and one idle formulation cover
every partition width ``k >= 1``, with the winner chosen by
``np.argmin`` over a ``(k, batch)`` finish matrix (first strict
minimum — the scan's lane-order tie-break) and per-lane ``next_down``
cut conditions for fault segments.  ``inf`` service entries
(infeasible pairs) never win a strict-less comparison, so they flow
through the verification untouched.  The entry points report how far
they got so callers can fall back mid-trace: persistent low acceptance
(an adversarial arrival pattern) bails out rather than degrading
quadratically.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim._native import dispatch_exact as _native_dispatch
from repro.sim._native import theta_walk as _native_walk

#: speculation window right after a cut (kept small: a failed round's
#: cost is proportional to the window it speculated over)
MIN_WINDOW = 512

#: a round accepting fewer than this many requests counts as stalled
STALL_ACCEPT = 256

#: consecutive stalled rounds before handing a burst to the scalar
#: fallback — regime-transition churn (idle<->busy warmup) is skipped
#: at scalar speed instead of being speculated over and over
MAX_STALLS = 2

#: first scalar-fallback burst length; doubles while stalls persist, so
#: adversarial traces degrade to scalar throughput plus a vanishing
#: fraction of failed speculation rounds
MIN_BURST = 256

_INF = math.inf


def native_available() -> bool:
    """Whether the compiled exact loop is in use (read dynamically, so
    tests that monkeypatch :data:`_native_dispatch` flip this too)."""
    return _native_dispatch is not None


def _finite_or(values: np.ndarray, fill: float) -> np.ndarray:
    if np.isfinite(values).all():
        return values
    return np.where(np.isfinite(values), values, fill)


def _theta_walk(u_list, v_list, theta: float) -> list:
    """Indices the θ-walk guesses for accelerator 1 (k=2 busy regime).

    Position ``j`` is an acc-1 pick iff ``U[j] > θ``, where θ starts at
    ``free1 - free0`` folded into the cumulative-sum frame and grows by
    ``V[j]`` at each pick.  Pure guess — accuracy only affects speed.

    This is the pure-Python fallback; when a C compiler is available the
    walk runs natively (:mod:`repro.sim._native`) — same decision chain,
    two orders of magnitude cheaper per element.
    """
    enders = []
    append = enders.append
    for j, u in enumerate(u_list):
        if u > theta:
            append(j)
            theta += v_list[j]
    return enders


def _walk_picks(u: np.ndarray, v: np.ndarray, theta: float) -> np.ndarray:
    """Boolean θ-walk pick array, native when possible."""
    if _native_walk is not None:
        return _native_walk(u, v, theta)
    d = np.zeros(u.size, dtype=bool)
    enders = _theta_walk(u.tolist(), v.tolist(), theta)
    if enders:
        d[enders] = True
    return d


_ARANGE = np.empty(0, dtype=np.int64)


def _arange(n: int) -> np.ndarray:
    """A cached ``0..n-1`` view (the busy round needs it every call)."""
    global _ARANGE
    if _ARANGE.size < n:
        _ARANGE = np.arange(max(n, 2 * _ARANGE.size), dtype=np.int64)
    return _ARANGE[:n]


def _guess_busy(svc: np.ndarray, free) -> np.ndarray:
    """Guessed lane assignment for a saturated batch; ``(batch,)`` int64.

    Pure speculation — a wrong guess costs a shorter accepted prefix,
    never a wrong result.  Three regimes:

    * ``k == 1`` — there is nothing to guess;
    * ``k == 2`` — the θ-walk over cumulative service sums (the exact
      busy-handoff recurrence rewritten as a threshold walk);
    * ``k > 2`` — a blockwise frontier argmin: within each small block
      every request picks the lane with the least loaded frontier, then
      the frontiers advance by the service each lane absorbed.  Blocks
      trade guess accuracy for vectorization; ``inf`` (infeasible)
      entries lose every argmin, steering guesses to feasible lanes.
    """
    k, B = svc.shape
    if k == 1:
        return np.zeros(B, dtype=np.int64)
    if k == 2:
        s0, s1 = svc[0], svc[1]
        s0f = _finite_or(s0, 0.0)
        u = np.cumsum(s0f)
        u -= s1
        if s0f is not s0:
            u[~np.isfinite(s0)] = _INF
        v = s0f + _finite_or(s1, 0.0)
        return _walk_picks(u, v, float(free[1]) - float(free[0])).astype(np.int64)
    d = np.empty(B, dtype=np.int64)
    frontier = np.asarray(free, dtype=np.float64).copy()
    block = max(32, 2 * k)
    offsets = np.arange(block)
    for lo in range(0, B, block):
        hi = min(lo + block, B)
        blk = svc[:, lo:hi]
        pick = np.argmin(frontier[:, None] + blk, axis=0)
        d[lo:hi] = pick
        frontier += np.bincount(
            pick, weights=blk[pick, offsets[: hi - lo]], minlength=k
        )
    return d


def _round_k_busy(a, c, services, free, limit=_INF, nds=None, corrected=True):
    """One saturated-regime speculation round at any width.

    Returns ``(accepted, accs, starts, fins, reason)`` where ``reason``
    is ``None`` (full window), ``"idle"`` (the cut position needs an
    idle admission — the caller should try the idle guesser), or
    ``"boundary"`` (a ``limit``/next-down fault-segment constraint cut).
    """
    k = services.shape[0]
    B = a.size
    svc = services[:, c]
    d = _guess_busy(svc, free)
    ar = _arange(B)
    onehot = d == np.arange(k)[:, None]
    excl = np.cumsum(onehot, axis=1)
    excl -= onehot
    fb = np.empty((k, B))
    trajs = []
    for i in range(k):
        traj = np.cumsum(np.concatenate(((free[i],), svc[i][onehot[i]])))
        trajs.append(traj)
        fb[i] = traj[excl[i]]
    # the selected accelerator's free-before must not exceed the
    # arrival (busy-handoff semantics)
    ok = fb[d, ar] >= a
    st = np.maximum(a, fb)
    fin = st + svc
    w = np.argmin(fin, axis=0)
    ok &= w == d
    if limit != _INF:
        ok &= (st < limit).all(axis=0)
    if nds is not None and any(nd != _INF for nd in nds):
        nds_arr = np.asarray(nds)
        ok &= fin[d, ar] <= nds_arr[d]
    if ok.all():
        for i in range(k):
            free[i] = float(trajs[i][-1])
        return B, d, st[d, ar], fin[d, ar], None
    q = int(np.argmin(ok))
    for i in range(k):
        free[i] = float(trajs[i][excl[i][q]])
    accs = d[:q]
    starts = st[d[:q], ar[:q]]
    fins = fin[d[:q], ar[:q]]
    reason = None if float(fb[d[q], q]) >= float(a[q]) else "idle"
    if not corrected:
        return q, accs, starts, fins, reason or "boundary"
    step = _corrected_step_k(float(a[q]), svc[:, q], free, limit, nds)
    if step is None:
        return q, accs, starts, fins, "boundary"
    return (
        q + 1,
        np.concatenate((accs, (step[0],))),
        np.concatenate((starts, (step[1],))),
        np.concatenate((fins, (step[2],))),
        reason,
    )


def _round_k_idle(a, c, services, free, limit=_INF, nds=None, corrected=True):
    """One idle-regime round: every admission guessed as ``arrival + service``."""
    k = services.shape[0]
    B = a.size
    svc = services[:, c]
    finc = a + svc
    d = np.argmin(finc, axis=0)
    ar = _arange(B)
    fins_full = finc[d, ar]
    fb = np.empty((k, B))
    lasts = np.empty((k, B), dtype=np.int64)
    prev = np.empty(B, dtype=np.int64)
    for i in range(k):
        lasts[i] = np.maximum.accumulate(np.where(d == i, ar, -1))
        prev[0] = -1
        prev[1:] = lasts[i][:-1]
        fb[i] = np.where(prev >= 0, fins_full[np.maximum(prev, 0)], free[i])
    ok = (a >= fb).all(axis=0)
    if nds is not None and any(nd != _INF for nd in nds):
        nds_arr = np.asarray(nds)
        ok &= fins_full <= nds_arr[d]
    # starts equal arrivals wherever ``ok`` holds, so a finite ``limit``
    # is already satisfied: segment batches only contain times < limit
    if ok.all():
        for i in range(k):
            last = int(lasts[i][-1])
            if last >= 0:
                free[i] = float(fins_full[last])
        return B, d, a.copy(), fins_full, None
    q = int(np.argmin(ok))
    if q:
        for i in range(k):
            last = int(lasts[i][q - 1])
            if last >= 0:
                free[i] = float(fins_full[last])
    accs = d[:q]
    starts = a[:q].copy()
    fins = fins_full[:q]
    reason = "busy" if bool((a[q] < fb[:, q]).any()) else None
    if not corrected:
        return q, accs, starts, fins, reason or "boundary"
    step = _corrected_step_k(float(a[q]), svc[:, q], free, limit, nds)
    if step is None:
        return q, accs, starts, fins, "boundary"
    return (
        q + 1,
        np.concatenate((accs, (step[0],))),
        np.concatenate((starts, (step[1],))),
        np.concatenate((fins, (step[2],))),
        reason,
    )


def _corrected_step_k(arrival, svc_col, free, limit, nds=None):
    """One exact scalar dispatch step from verified state.

    Mirrors the scan body bit for bit: ``start = arrival if arrival >
    free else free``, ``finish = start + service``, winner = first
    strictly smaller finish in lane order.  Updates ``free`` in place
    and returns ``(acc, start, finish)``, or ``None`` when a
    fault-segment constraint (any start beyond ``limit``, winner finish
    past its accelerator's next down window) means the scalar fault
    loop must take over.
    """
    starts = [arrival if arrival > f else f for f in free]
    for st in starts:
        if st >= limit:
            return None
    best = 0
    best_fin = starts[0] + float(svc_col[0])
    for i in range(1, len(starts)):
        fin = starts[i] + float(svc_col[i])
        if fin < best_fin:
            best = i
            best_fin = fin
    if nds is not None and best_fin > nds[best]:
        return None
    free[best] = best_fin
    return best, starts[best], best_fin


def _one_round(a, c, services, free, busy, limit=_INF, next_downs=None, corrected=True):
    nds = tuple(next_downs) if next_downs else None
    if busy:
        return _round_k_busy(a, c, services, free, limit, nds, corrected)
    return _round_k_idle(a, c, services, free, limit, nds, corrected)


def dispatch_vectorized(
    arrivals, class_ids, services, free, flush, chunk_size, fallback=None
):
    """Dispatch a fault-free trace in speculate-and-verify rounds.

    ``services`` is a ``(width, classes)`` float64 matrix with ``inf``
    marking infeasible pairs; ``free`` is the mutable per-accelerator
    clock list shared with the scalar engines.  ``fallback(lo, hi)``
    dispatches ``arrivals[lo:hi]`` through a scalar engine from the
    current ``free`` state: it absorbs the stretches speculation keeps
    mispredicting (regime transitions, adversarial arrival patterns) in
    escalating bursts.  Without a fallback the function returns early
    instead; the return value is how many requests were dispatched from
    the front of the trace (``arrivals.size`` when a fallback is given).
    """
    n = int(arrivals.size)
    if _native_dispatch is not None:
        # exact native loop: no speculation to verify, no constraints to
        # hit — every chunk is fully dispatched in one C pass, and the
        # chunk-sized flushes keep streaming summation boundaries
        # identical to the scalar engines
        pos = 0
        while pos < n:
            hi = min(pos + chunk_size, n)
            _, accs, starts, fins = _native_dispatch(
                arrivals[pos:hi], class_ids[pos:hi], services, free, _INF
            )
            flush(pos, accs, starts, fins)
            pos = hi
        return n
    pos = 0
    max_window = max(chunk_size, MIN_WINDOW)
    window = MIN_WINDOW
    busy = max(free) > float(arrivals[0]) if n else False
    stalls = 0
    burst = MIN_BURST
    while pos < n:
        hi = min(pos + window, n)
        span = hi - pos
        q, accs, starts, fins, reason = _one_round(
            arrivals[pos:hi], class_ids[pos:hi], services, free, busy
        )
        if q:
            flush(pos, accs, starts, fins)
            pos += q
        if reason == "idle":
            busy = False
        elif reason == "busy":
            busy = True
        if q >= span:
            window = min(window * 4, max_window)
            stalls = 0
            burst = MIN_BURST
        elif q >= STALL_ACCEPT:
            window = min(max(2 * q, MIN_WINDOW), max_window)
            stalls = 0
            burst = MIN_BURST
        else:
            window = MIN_WINDOW
            stalls += 1
            if stalls >= MAX_STALLS:
                if fallback is None:
                    return pos
                end = min(pos + burst, n)
                fallback(pos, end)
                pos = end
                burst = min(burst * 2, max_window)
                stalls = 0
                if pos < n:
                    busy = max(free) > float(arrivals[pos])
    return n


def dispatch_segment(times, class_ids, services, free, limit, next_downs):
    """Dispatch one clean fault segment (no window active, all times
    below ``limit``); used by the fault loop between transitions.

    ``next_downs[order]`` is the first down-window start after the
    segment opens (``inf`` when none): any admission whose start would
    reach ``limit`` or whose finish would cross its accelerator's next
    down window is left to the scalar fault loop, which owns the kill
    and requeue bookkeeping.  Returns ``(accepted, accs, starts,
    fins)`` for the verified prefix.
    """
    n = int(times.size)
    if n and _native_dispatch is not None:
        nds = tuple(next_downs) if next_downs else None
        q, accs, starts, fins = _native_dispatch(
            times, class_ids, services, free, limit, nds
        )
        return q, ([(0, accs, starts, fins)] if q else [])
    busy = max(free) > float(times[0]) if n else False
    pos = 0
    out = []
    while pos < n:
        q, accs, starts, fins, reason = _one_round(
            times[pos:n],
            class_ids[pos:n],
            services,
            free,
            busy,
            limit=limit,
            next_downs=next_downs,
        )
        if q:
            out.append((pos, accs, starts, fins))
            pos += q
        if reason == "boundary":
            break
        if reason == "idle":
            busy = False
        elif reason == "busy":
            busy = True
        if not q:
            break
    return pos, out
