"""Analysis of exported Chrome traces: utilization, overlap, bottleneck.

``versal-gemm obs summary trace.json`` reads a trace produced by
:mod:`repro.obs.export` (or any Trace Event Format file with ``X`` and
``b``/``e`` events) back into per-track interval sets and reports the
same three quantities the paper reads off ``aiesimulator`` timelines:

* per-track **busy time and utilization** (merged-interval busy seconds
  over the trace's wall span),
* **overlap** — for each track, how much of its busy time at least one
  *other* track is also busy (the double-buffering question: is data
  movement hidden behind compute?),
* a **bottleneck attribution table** mirroring
  :class:`repro.core.breakdown.ExecutionBreakdown`: the busiest track is
  the bound phase, every track gets its share of the wall clock.

All math happens on merged intervals, so nested or duplicated events on
one track never double-count busy time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.reporting import render_table

__all__ = ["TraceSummary", "TrackStats", "load_trace", "summarize_trace"]

_MICROS = 1e6


def load_trace(path: str) -> dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge overlapping/touching intervals; drops nothing else."""
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _track_names(events: Sequence[Mapping[str, Any]]) -> dict[tuple[Any, Any], str]:
    """(pid, tid) -> human track label, from ``M`` metadata events."""
    processes: dict[Any, str] = {}
    threads: dict[tuple[Any, Any], str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        name = (event.get("args") or {}).get("name")
        if event.get("name") == "process_name" and name:
            processes[event.get("pid")] = str(name)
        elif event.get("name") == "thread_name" and name:
            threads[(event.get("pid"), event.get("tid"))] = str(name)
    labels: dict[tuple[Any, Any], str] = {}
    pids = {pid for pid, _ in threads}
    for key, thread_name in threads.items():
        # qualify with the process only when several processes coexist
        if len(pids) > 1 and key[0] in processes:
            labels[key] = f"{processes[key[0]]}/{thread_name}"
        else:
            labels[key] = thread_name
    return labels


def _collect_intervals(
    events: Sequence[Mapping[str, Any]],
) -> tuple[dict[str, list[tuple[float, float]]], dict[str, int]]:
    """Per-track raw intervals (seconds) and instant-marker counts."""
    labels = _track_names(events)

    def track_of(event: Mapping[str, Any]) -> str:
        key = (event.get("pid"), event.get("tid"))
        return labels.get(key, f"pid{key[0]}/tid{key[1]}")

    intervals: dict[str, list[tuple[float, float]]] = {}
    instants: dict[str, int] = {}
    sync_open: dict[tuple[Any, Any], list[float]] = {}
    async_open: dict[tuple[Any, Any, Any], list[tuple[float, str]]] = {}
    for event in events:
        phase = event.get("ph")
        ts = float(event.get("ts", 0.0)) / _MICROS
        if phase == "X":
            track = track_of(event)
            end = ts + float(event.get("dur", 0.0)) / _MICROS
            intervals.setdefault(track, []).append((ts, end))
        elif phase == "i":
            track = track_of(event)
            instants[track] = instants.get(track, 0) + 1
        elif phase == "B":
            sync_open.setdefault((event.get("pid"), event.get("tid")), []).append(ts)
        elif phase == "E":
            stack = sync_open.get((event.get("pid"), event.get("tid")))
            if stack:
                start = stack.pop()
                track = track_of(event)
                intervals.setdefault(track, []).append((start, ts))
        elif phase == "b":
            key = (event.get("pid"), event.get("cat"), event.get("id"))
            async_open.setdefault(key, []).append((ts, track_of(event)))
        elif phase == "e":
            key = (event.get("pid"), event.get("cat"), event.get("id"))
            pending = async_open.get(key)
            if pending:
                start, track = pending.pop(0)
                intervals.setdefault(track, []).append((start, ts))
    return intervals, instants


@dataclass
class TrackStats:
    """Merged-interval accounting for one timeline track."""

    track: str
    events: int
    busy_seconds: float
    utilization: float
    overlap_seconds: float  # busy time shared with >= 1 other track
    instants: int = 0

    @property
    def overlap_fraction(self) -> float:
        return self.overlap_seconds / self.busy_seconds if self.busy_seconds else 0.0


@dataclass
class TraceSummary:
    """Everything ``obs summary`` prints, computed once from a trace."""

    wall_seconds: float
    tracks: list[TrackStats] = field(default_factory=list)

    @property
    def bottleneck(self) -> str | None:
        """The busiest track — the timeline's bound phase."""
        busy = [t for t in self.tracks if t.busy_seconds > 0]
        if not busy:
            return None
        return max(busy, key=lambda t: t.busy_seconds).track

    def rows(self) -> list[dict[str, Any]]:
        rows = []
        for stats in self.tracks:
            rows.append(
                {
                    "track": stats.track,
                    "events": stats.events,
                    "busy_s": f"{stats.busy_seconds:.6f}",
                    "util_%": f"{100.0 * stats.utilization:.1f}",
                    "overlap_s": f"{stats.overlap_seconds:.6f}",
                    "overlap_%": f"{100.0 * stats.overlap_fraction:.1f}",
                    "bound": "<-- bound" if stats.track == self.bottleneck else "",
                }
            )
        return rows

    def render(self) -> str:
        lines = [
            render_table(
                self.rows(),
                columns=[
                    "track",
                    "events",
                    "busy_s",
                    "util_%",
                    "overlap_s",
                    "overlap_%",
                    "bound",
                ],
                title="Per-track utilization & overlap",
            ),
            "",
            f"wall span : {self.wall_seconds:.6f} s",
        ]
        bound = self.bottleneck
        if bound is not None:
            stats = next(t for t in self.tracks if t.track == bound)
            lines.append(
                f"bottleneck: {bound} "
                f"(busy {stats.busy_seconds:.6f} s, "
                f"{100.0 * stats.utilization:.1f}% of wall)"
            )
        instants = sum(t.instants for t in self.tracks)
        if instants:
            lines.append(f"instants  : {instants} marker(s)")
        return "\n".join(lines)


def _overlap_with_others(
    merged: dict[str, list[tuple[float, float]]]
) -> dict[str, float]:
    """Per track: busy seconds during which another track is also busy.

    Boundary sweep over all interval edges; within one segment the
    active-track set is constant, so a track accrues overlap exactly
    when it is active alongside at least one other.
    """
    boundaries: list[tuple[float, int, str]] = []
    for track, intervals in merged.items():
        for start, end in intervals:
            boundaries.append((start, 1, track))
            boundaries.append((end, -1, track))
    boundaries.sort(key=lambda edge: (edge[0], -edge[1]))
    overlap = {track: 0.0 for track in merged}
    active: dict[str, int] = {}
    previous = None
    for time, delta, track in boundaries:
        if previous is not None and time > previous and len(active) >= 2:
            width = time - previous
            for name in active:
                overlap[name] += width
        previous = time
        count = active.get(track, 0) + delta
        if count <= 0:
            active.pop(track, None)
        else:
            active[track] = count
    return overlap


def summarize_trace(trace: dict[str, Any]) -> TraceSummary:
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    raw, instants = _collect_intervals(events)
    merged = {track: _merge(list(spans)) for track, spans in raw.items()}
    edges = [edge for spans in merged.values() for span in spans for edge in span]
    wall = (max(edges) - min(edges)) if edges else 0.0
    overlap = _overlap_with_others(merged)
    tracks = []
    for track in sorted(set(raw) | set(instants)):
        spans = merged.get(track, [])
        busy = sum(end - start for start, end in spans)
        tracks.append(
            TrackStats(
                track=track,
                events=len(raw.get(track, [])),
                busy_seconds=busy,
                utilization=busy / wall if wall else 0.0,
                overlap_seconds=overlap.get(track, 0.0),
                instants=instants.get(track, 0),
            )
        )
    tracks.sort(key=lambda stats: stats.busy_seconds, reverse=True)
    return TraceSummary(wall_seconds=wall, tracks=tracks)
