"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

Renders any of the library's collected timelines as the Trace Event
Format both viewers load:

* tracer spans from :mod:`repro.obs.spans` (wall-clock phases: model
  estimates, DSE batches, serving runs, pipeline simulations) — one
  track per span track name, complete ``X`` events;
* exact serving reports — per-request lifecycles in *simulated* time:
  an async ``b``/``e`` wait interval from arrival to dispatch, an ``X``
  execution slice on the owning accelerator's track, and instant ``i``
  markers for chaos kills/requeues/sheds plus ``X`` windows for fault
  schedules;
* :class:`~repro.sim.trace.ExecutionTrace` pipeline timelines — one
  track per stage, one ``X`` slice per (stage, item) interval;
* :class:`~repro.obs.windows.ServingMonitor` windowed telemetry —
  one Perfetto counter track (``C`` events) per metric, sampled at
  each window's start in simulated time.

Streaming and merged fleet reports hold no per-request state; they
degrade to per-accelerator utilization slices plus fault windows (with
a one-line warning) instead of raising.

Wall-clock and simulated-time events live under separate pids so
Perfetto groups them as two processes instead of interleaving two
incompatible clocks on one timeline.  :func:`validate_chrome_trace` is
the schema contract the tests (and ``obs summary``) enforce: a
``traceEvents`` list, nondecreasing timestamps, matched ``b``/``e``
pairs, and ``X`` events with nonnegative durations.
"""

from __future__ import annotations

import json
import warnings
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.obs.spans import Span
    from repro.obs.windows import ServingMonitor
    from repro.sim.serving import ServingReport
    from repro.sim.trace import ExecutionTrace

__all__ = [
    "ChromeTraceBuilder",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: seconds -> Chrome trace microseconds
_MICROS = 1e6

#: pid for wall-clock (tracer span) events
WALL_PID = 1
#: pid for simulated-time (serving / pipeline) events
SIM_PID = 2

_PROCESS_NAMES = {
    WALL_PID: "versal-gemm (wall clock)",
    SIM_PID: "versal-gemm (simulated time)",
}


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _jsonable_args(attrs: dict[str, Any] | None) -> dict[str, Any]:
    if not attrs:
        return {}
    return {str(key): _jsonable(value) for key, value in attrs.items()}


class ChromeTraceBuilder:
    """Accumulates events from any source and emits one sorted trace."""

    def __init__(self):
        self._events: list[dict[str, Any]] = []
        self._tids: dict[tuple[int, str], int] = {}
        self._next_tid = 1

    # -- track bookkeeping ---------------------------------------------
    def tid(self, track: str, pid: int = WALL_PID) -> int:
        key = (pid, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = self._next_tid
            self._next_tid += 1
        return tid

    def _metadata_events(self) -> list[dict[str, Any]]:
        events: list[dict[str, Any]] = []
        for pid in sorted({pid for pid, _ in self._tids}):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": _PROCESS_NAMES.get(pid, f"process {pid}")},
                }
            )
        for (pid, track), tid in sorted(self._tids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": track},
                }
            )
            events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"sort_index": tid},
                }
            )
        return events

    # -- sources --------------------------------------------------------
    def add_spans(self, spans: "Iterable[Span]") -> "ChromeTraceBuilder":
        """Tracer spans as complete ``X`` events (wall-clock pid)."""
        for span in spans:
            args = _jsonable_args(span.attrs)
            args["depth"] = span.depth
            self._events.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": span.start * _MICROS,
                    "dur": max(span.duration, 0.0) * _MICROS,
                    "pid": WALL_PID,
                    "tid": self.tid(span.track or "main", WALL_PID),
                    "args": args,
                }
            )
        return self

    def add_serving_report(self, report: "ServingReport") -> "ChromeTraceBuilder":
        """Per-request lifecycles from an exact serving report.

        Wait intervals are async ``b``/``e`` pairs keyed by request id
        (they overlap freely, which sync slices cannot), executions are
        ``X`` slices on the owning accelerator's track, and the chaos
        loop's kill/requeue/shed decisions plus the fault schedule's
        windows land on per-accelerator fault tracks.  Streaming and
        merged fleet reports hold no per-request state — they degrade
        to one utilization slice per accelerator plus the fault
        windows, with a one-line warning.
        """
        completed = getattr(report, "completed", None)
        if completed is None:
            warnings.warn(
                "streaming/merged report: exporting accelerator utilization "
                "and fault windows only (per-request lifecycles need the "
                "exact report)",
                stacklevel=2,
            )
            makespan = float(getattr(report, "makespan", 0.0))
            loads = report.accelerator_load()
            total = sum(loads.values()) or 1
            downtime = getattr(report, "downtime", {})
            for name, count in sorted(loads.items()):
                self._events.append(
                    {
                        "name": f"{count} requests ({count / total:.0%} of load)",
                        "cat": "utilization",
                        "ph": "X",
                        "ts": 0.0,
                        "dur": makespan * _MICROS,
                        "pid": SIM_PID,
                        "tid": self.tid(name, SIM_PID),
                        "args": {
                            "requests": count,
                            "share": count / total,
                            "downtime_s": float(downtime.get(name, 0.0)),
                        },
                    }
                )
            self._add_fault_windows(getattr(report, "fault_events", ()))
            return self
        wait_tid = self.tid("request queue", SIM_PID)
        for item in completed:
            arrival = item.request.arrival
            request_id = item.request.request_id
            self._events.append(
                {
                    "name": "wait",
                    "cat": "wait",
                    "ph": "b",
                    "id": str(request_id),
                    "ts": arrival * _MICROS,
                    "pid": SIM_PID,
                    "tid": wait_tid,
                    "args": {"request_id": request_id},
                }
            )
            self._events.append(
                {
                    "name": "wait",
                    "cat": "wait",
                    "ph": "e",
                    "id": str(request_id),
                    "ts": item.start * _MICROS,
                    "pid": SIM_PID,
                    "tid": wait_tid,
                }
            )
            self._events.append(
                {
                    "name": str(item.request.shape),
                    "cat": "execute",
                    "ph": "X",
                    "ts": item.start * _MICROS,
                    "dur": (item.finish - item.start) * _MICROS,
                    "pid": SIM_PID,
                    "tid": self.tid(item.accelerator, SIM_PID),
                    "args": {
                        "request_id": request_id,
                        "retries": getattr(item, "retries", 0),
                        "latency_s": item.latency,
                        "queue_s": item.start - arrival,
                    },
                }
            )
        for shed in getattr(report, "shed", ()):
            self._events.append(
                {
                    "name": f"shed:{shed.reason}",
                    "cat": "fault",
                    "ph": "i",
                    "s": "p",
                    "ts": shed.time * _MICROS,
                    "pid": SIM_PID,
                    "tid": self.tid("chaos", SIM_PID),
                    "args": {
                        "request_id": shed.request.request_id,
                        "retries": shed.retries,
                    },
                }
            )
        for time, kind, request_id, retries in getattr(report, "fault_timeline", ()):
            self._events.append(
                {
                    "name": kind,
                    "cat": "fault",
                    "ph": "i",
                    "s": "p",
                    "ts": time * _MICROS,
                    "pid": SIM_PID,
                    "tid": self.tid("chaos", SIM_PID),
                    "args": {"request_id": request_id, "retries": retries},
                }
            )
        self._add_fault_windows(getattr(report, "fault_events", ()))
        return self

    def _add_fault_windows(self, fault_events: Sequence[Any]) -> None:
        """Pair onset/recovery records into ``X`` windows per accelerator."""
        open_windows: dict[tuple[str, str], list[Any]] = {}
        for event in fault_events:
            key = (event.accelerator, event.kind)
            is_onset = type(event).__name__ == "FaultEvent"
            if is_onset:
                open_windows.setdefault(key, []).append(event)
                continue
            pending = open_windows.get(key)
            if not pending:
                continue
            onset = pending.pop(0)
            self._events.append(
                {
                    "name": f"{onset.kind}: {onset.detail or onset.accelerator}",
                    "cat": "fault-window",
                    "ph": "X",
                    "ts": onset.time * _MICROS,
                    "dur": (event.time - onset.time) * _MICROS,
                    "pid": SIM_PID,
                    "tid": self.tid(f"{onset.accelerator} faults", SIM_PID),
                    "args": {"kind": onset.kind, "detail": onset.detail},
                }
            )

    def add_monitor(
        self, monitor: "ServingMonitor", prefix: str = "serving"
    ) -> "ChromeTraceBuilder":
        """Windowed telemetry as Perfetto counter tracks (``C`` events).

        One counter per metric — completions/s, p50/p99 latency (ms),
        sheds, kills — sampled at each populated window's start in
        simulated time; the last window's values are re-emitted at its
        end so the final step stays visible in the viewer.
        """
        timeline = monitor.timeline()
        if not timeline:
            return self
        counter_tid = self.tid(f"{prefix} counters", SIM_PID)

        def emit(ts_seconds: float, stats: Any) -> None:
            for metric, value in (
                (f"{prefix} rps", stats.rps),
                (f"{prefix} p50 (ms)", (stats.p50 or 0.0) * 1e3),
                (f"{prefix} p99 (ms)", (stats.p99 or 0.0) * 1e3),
                (f"{prefix} sheds", float(stats.shed)),
                (f"{prefix} kills", float(stats.kills)),
            ):
                self._events.append(
                    {
                        "name": metric,
                        "cat": "counter",
                        "ph": "C",
                        "ts": ts_seconds * _MICROS,
                        "pid": SIM_PID,
                        "tid": counter_tid,
                        "args": {"value": float(value)},
                    }
                )

        for stats in timeline:
            emit(stats.start, stats)
        emit(timeline[-1].end, timeline[-1])
        return self

    def add_execution_trace(
        self, trace: "ExecutionTrace | Sequence[dict[str, Any]]"
    ) -> "ChromeTraceBuilder":
        """Pipeline stage intervals — one track per stage.

        Accepts an :class:`~repro.sim.trace.ExecutionTrace` or the
        records its ``events_json()`` returns (the shared event source).
        """
        events = trace if isinstance(trace, (list, tuple)) else trace.events_json()
        for record in events:
            self._events.append(
                {
                    "name": f"item {record['item']}",
                    "cat": "stage",
                    "ph": "X",
                    "ts": record["start"] * _MICROS,
                    "dur": (record["end"] - record["start"]) * _MICROS,
                    "pid": SIM_PID,
                    "tid": self.tid(record["stage"], SIM_PID),
                    "args": {"item": record["item"]},
                }
            )
        return self

    # -- output ---------------------------------------------------------
    def build(self) -> dict[str, Any]:
        """The finished trace: metadata first, then events by timestamp."""
        body = sorted(self._events, key=lambda event: event["ts"])
        return {
            "traceEvents": self._metadata_events() + body,
            "displayTimeUnit": "ms",
        }

    def __len__(self) -> int:
        return len(self._events)


def write_chrome_trace(path: str, trace: dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(trace, handle)
        handle.write("\n")


_ALLOWED_PHASES = frozenset("XBEbeiMC")


def validate_chrome_trace(trace: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``trace`` satisfies the schema the
    exporters guarantee (and Perfetto's JSON importer accepts).

    Checks: a ``traceEvents`` list of dicts, every event carrying a
    string ``name``, a known ``ph`` and a nonnegative numeric ``ts``;
    ``X`` events with nonnegative ``dur``; ``C`` counter samples with
    numeric ``args`` series; ``B``/``E`` stacks balanced per
    (pid, tid); async ``b``/``e`` matched per (pid, cat, id); and
    non-metadata timestamps nondecreasing in file order.
    """
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    sync_stacks: dict[tuple[Any, Any], int] = {}
    async_open: dict[tuple[Any, Any, Any], int] = {}
    last_ts: float | None = None
    for index, event in enumerate(trace["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in _ALLOWED_PHASES:
            raise ValueError(f"{where} has unsupported phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where} is missing a string 'name'")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where} needs a nonnegative numeric 'ts'")
        if phase == "M":
            continue
        if last_ts is not None and ts < last_ts:
            raise ValueError(f"{where} breaks timestamp monotonicity")
        last_ts = ts
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} ('X') needs a nonnegative 'dur'")
        elif phase == "C":
            counter_args = event.get("args")
            if (
                not isinstance(counter_args, dict)
                or not counter_args
                or not all(
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    for value in counter_args.values()
                )
            ):
                raise ValueError(
                    f"{where} ('C') needs numeric 'args' series values"
                )
        elif phase == "B":
            sync_stacks[(event.get("pid"), event.get("tid"))] = (
                sync_stacks.get((event.get("pid"), event.get("tid")), 0) + 1
            )
        elif phase == "E":
            key = (event.get("pid"), event.get("tid"))
            depth = sync_stacks.get(key, 0)
            if depth <= 0:
                raise ValueError(f"{where} ('E') without a matching 'B'")
            sync_stacks[key] = depth - 1
        elif phase == "b":
            key = (event.get("pid"), event.get("cat"), event.get("id"))
            if None in key:
                raise ValueError(f"{where} ('b') needs pid, cat and id")
            async_open[key] = async_open.get(key, 0) + 1
        elif phase == "e":
            key = (event.get("pid"), event.get("cat"), event.get("id"))
            pending = async_open.get(key, 0)
            if pending <= 0:
                raise ValueError(f"{where} ('e') without a matching 'b'")
            async_open[key] = pending - 1
    unbalanced = {key: depth for key, depth in sync_stacks.items() if depth}
    if unbalanced:
        raise ValueError(f"unclosed 'B' events on tracks {sorted(unbalanced)}")
    dangling = {key: n for key, n in async_open.items() if n}
    if dangling:
        raise ValueError(f"unmatched 'b' events for {sorted(dangling)}")
