"""Time-windowed telemetry over simulated time.

End-of-run reports say *what* a serve did; this module says *when*.
Simulated time is cut into fixed-width windows and three ring-buffer
series accumulate per-window state:

* :class:`WindowedCounter` — per-window event counts (requests, sheds,
  kills);
* :class:`WindowedGauge` — per-window running maxima (peak latency);
* :class:`WindowedHistogram` — one
  :class:`repro.sim.streaming.QuantileSketch` per window, so every
  window answers p50/p99 queries under the sketch's documented
  relative-error bound.

:class:`ServingMonitor` bundles the series behind the hook the serving
engines call: ``observe_chunk(arrivals, starts, finishes)`` at the same
chunk boundaries the streaming report uses, plus ``observe_sheds`` /
``observe_kills`` from the fault loop.  The monitor only *reads* the
already-decided dispatch results, so attaching one cannot perturb
dispatch decisions — byte-identity of monitored vs. unmonitored runs is
a conformance-tested contract.

Mergeability mirrors :meth:`repro.sim.streaming.StreamingServingReport.merge`:
counters add, gauges keep the maximum, window sketches merge
bucket-exactly, and shard workers ship their monitor home for the
parent to fold **in shard order** — so a pooled fleet's merged series
equals the inline reference bit for bit.

Ring-buffer semantics: each series retains at most ``capacity`` windows
ending at the newest window seen; producing past capacity evicts the
oldest windows deterministically (merge re-evicts against the merged
maximum, so equal producers merge to equal series).

This module keeps the package's layering rule: no module-level imports
from ``repro.sim`` — the sketch class is imported lazily, exactly like
:class:`repro.obs.metrics.Histogram` does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim -> obs)
    from repro.sim.streaming import QuantileSketch

__all__ = [
    "DEFAULT_WINDOW_CAPACITY",
    "ServingMonitor",
    "WindowStats",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
]

#: windows retained per series before the ring evicts the oldest; far
#: above the CLI's default ``--windows 100`` so eviction only triggers
#: on pathologically fine windows
DEFAULT_WINDOW_CAPACITY = 4096

#: per-chunk dense scatter budget (windows x sketch-key range); chunks
#: that would exceed it fall back to sorted grouping
_DENSE_SCATTER_LIMIT = 4_000_000


def _make_sketch(quantile_error: float) -> "QuantileSketch":
    # imported lazily: repro.sim.__init__ pulls in the serving stack,
    # which imports repro.perf.metrics, which imports repro.obs
    from repro.sim.streaming import QuantileSketch

    return QuantileSketch(quantile_error)


class _WindowedSeries:
    """Shared window-index math + ring eviction for the three series."""

    def __init__(self, window_seconds: float, capacity: int):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if capacity < 1:
            raise ValueError("capacity must be at least one window")
        self.window_seconds = float(window_seconds)
        self.capacity = int(capacity)
        self._max_index = -1

    def index_of(self, time: float) -> int:
        """The window holding simulated ``time`` (clamped at window 0)."""
        return max(int(math.floor(time / self.window_seconds)), 0)

    def indices_of(self, times: np.ndarray) -> np.ndarray:
        # astype truncation equals floor for nonnegative quotients, and
        # the clamp makes the negative cases agree too — measurably
        # cheaper than np.floor_divide on dispatch-sized chunks
        idx = (
            np.asarray(times, dtype=np.float64) / self.window_seconds
        ).astype(np.int64)
        return np.maximum(idx, 0)

    def bounds(self, index: int) -> tuple[float, float]:
        return index * self.window_seconds, (index + 1) * self.window_seconds

    def _check_mergeable(self, other: "_WindowedSeries") -> None:
        if other.window_seconds != self.window_seconds:
            raise ValueError(
                "can only merge series with identical window widths "
                f"({self.window_seconds} != {other.window_seconds})"
            )

    def _evict(self, store: dict[int, Any], newest: int) -> None:
        if newest > self._max_index:
            self._max_index = newest
        floor = self._max_index - self.capacity + 1
        if floor > 0:
            for index in [key for key in store if key < floor]:
                del store[index]


class WindowedCounter(_WindowedSeries):
    """Per-window event counts (exact; floats so weights are allowed)."""

    def __init__(
        self, window_seconds: float, capacity: int = DEFAULT_WINDOW_CAPACITY
    ):
        super().__init__(window_seconds, capacity)
        self._values: dict[int, float] = {}

    def add(self, time: float, amount: float = 1.0) -> None:
        index = self.index_of(time)
        self._values[index] = self._values.get(index, 0.0) + amount
        self._evict(self._values, index)

    def add_times(self, times: np.ndarray) -> None:
        """Count one event per entry of ``times`` (vectorized)."""
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return
        self.add_indices(self.indices_of(times))

    def add_indices(self, idx: np.ndarray) -> None:
        """Count one event per precomputed window index (vectorized)."""
        if idx.size == 0:
            return
        base = int(idx.min())
        counts = np.bincount(idx - base)
        store = self._values
        for offset in np.flatnonzero(counts).tolist():
            index = base + int(offset)
            store[index] = store.get(index, 0.0) + float(counts[offset])
        self._evict(store, base + len(counts) - 1)

    def value(self, index: int) -> float:
        return self._values.get(index, 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def indices(self) -> list[int]:
        return sorted(self._values)

    def series(self) -> list[tuple[int, float]]:
        return [(index, self._values[index]) for index in sorted(self._values)]

    def merge(self, other: "WindowedCounter") -> "WindowedCounter":
        self._check_mergeable(other)
        for index, amount in other._values.items():
            self._values[index] = self._values.get(index, 0.0) + amount
        self._evict(self._values, other._max_index)
        return self

    def as_dict(self) -> dict[str, Any]:
        return {
            "window_seconds": self.window_seconds,
            "capacity": self.capacity,
            "values": {str(index): value for index, value in self.series()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WindowedCounter":
        series = cls(data["window_seconds"], data.get("capacity", DEFAULT_WINDOW_CAPACITY))
        for index, value in data.get("values", {}).items():
            series._values[int(index)] = float(value)
        if series._values:
            series._evict(series._values, max(series._values))
        return series


class WindowedGauge(_WindowedSeries):
    """Per-window running maximum (peak latency, peak depth, ...)."""

    def __init__(
        self, window_seconds: float, capacity: int = DEFAULT_WINDOW_CAPACITY
    ):
        super().__init__(window_seconds, capacity)
        self._values: dict[int, float] = {}

    def observe(self, time: float, value: float) -> None:
        index = self.index_of(time)
        current = self._values.get(index)
        if current is None or value > current:
            self._values[index] = float(value)
        self._evict(self._values, index)

    def observe_max(self, index: int, value: float) -> None:
        """Fold a precomputed per-window maximum at ``index``."""
        current = self._values.get(index)
        if current is None or value > current:
            self._values[index] = float(value)
        self._evict(self._values, index)

    def value(self, index: int) -> float | None:
        return self._values.get(index)

    def indices(self) -> list[int]:
        return sorted(self._values)

    def series(self) -> list[tuple[int, float]]:
        return [(index, self._values[index]) for index in sorted(self._values)]

    def merge(self, other: "WindowedGauge") -> "WindowedGauge":
        self._check_mergeable(other)
        for index, value in other._values.items():
            current = self._values.get(index)
            if current is None or value > current:
                self._values[index] = value
        self._evict(self._values, other._max_index)
        return self

    def as_dict(self) -> dict[str, Any]:
        return {
            "window_seconds": self.window_seconds,
            "capacity": self.capacity,
            "values": {str(index): value for index, value in self.series()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WindowedGauge":
        series = cls(data["window_seconds"], data.get("capacity", DEFAULT_WINDOW_CAPACITY))
        for index, value in data.get("values", {}).items():
            series._values[int(index)] = float(value)
        if series._values:
            series._evict(series._values, max(series._values))
        return series


class WindowedHistogram(_WindowedSeries):
    """One :class:`QuantileSketch` per window.

    Counts and sums per window are exact; quantiles carry the sketch's
    relative-error bound.  ``observe_values`` folds a whole chunk in
    O(n) via a dense (window, bucket) scatter — no per-value Python —
    and window min/max are tracked at bucket-representative resolution
    so merged series are independent of fold order within a window.
    """

    def __init__(
        self,
        window_seconds: float,
        capacity: int = DEFAULT_WINDOW_CAPACITY,
        quantile_error: float = 0.01,
    ):
        super().__init__(window_seconds, capacity)
        self.quantile_error = float(quantile_error)
        self._sketches: dict[int, "QuantileSketch"] = {}

    def _sketch_for(self, index: int) -> "QuantileSketch":
        sketch = self._sketches.get(index)
        if sketch is None:
            sketch = self._sketches[index] = _make_sketch(self.quantile_error)
        return sketch

    def observe(self, time: float, value: float) -> None:
        index = self.index_of(time)
        self._sketch_for(index).add(value)
        self._evict(self._sketches, index)

    def observe_values(
        self,
        times: np.ndarray,
        values: np.ndarray,
        indices: np.ndarray | None = None,
    ) -> list[int]:
        """Fold ``values[i]`` into the window holding ``times[i]``.

        ``indices`` short-circuits the window-index computation when the
        caller already holds ``indices_of(times)`` (the monitor shares
        one pass across all its series).  Returns the sorted list of
        window indices the chunk touched.
        """
        values = np.asarray(values, dtype=np.float64)
        if indices is None:
            times = np.asarray(times, dtype=np.float64)
            if times.size == 0:
                return []
            if times.shape != values.shape:
                raise ValueError("times and values must align")
            idx = self.indices_of(times)
        else:
            idx = indices
            if idx.size == 0:
                return []
            if idx.shape != values.shape:
                raise ValueError("indices and values must align")
        base = int(idx.min())
        span = int(idx.max()) - base + 1
        probe = self._sketch_for(base)
        keys = probe.prepare_keys(values)
        if keys is None or span * _key_span(keys) > _DENSE_SCATTER_LIMIT:
            # underflow values or a pathologically wide scatter: group
            # by window through one stable sort and take the exact path
            order = np.argsort(idx, kind="stable")
            sorted_idx = idx[order]
            sorted_values = values[order]
            cuts = np.flatnonzero(np.diff(sorted_idx)) + 1
            starts = np.concatenate(([0], cuts))
            ends = np.concatenate((cuts, [sorted_idx.size]))
            touched = []
            for lo, hi in zip(starts.tolist(), ends.tolist()):
                index = int(sorted_idx[lo])
                self._sketch_for(index).add_many(sorted_values[lo:hi])
                touched.append(index)
            self._evict(self._sketches, base + span - 1)
            return touched
        kmin = int(keys.min())
        krange = _key_span(keys)
        combo = (idx - base) * krange + (keys - kmin)
        scattered = np.bincount(combo, minlength=span * krange).reshape(
            span, krange
        )
        counts = np.bincount(idx - base, minlength=span)
        sums = np.bincount(idx - base, weights=values, minlength=span)
        gamma = probe._gamma
        touched = []
        for offset in np.flatnonzero(counts).tolist():
            index = base + int(offset)
            touched.append(index)
            sketch = self._sketch_for(index)
            row = scattered[offset]
            occupied = np.flatnonzero(row)
            bucket = sketch._counts
            lo_key = hi_key = None
            for key_offset in occupied.tolist():
                key = kmin + key_offset
                bucket[key] = bucket.get(key, 0) + int(row[key_offset])
                if lo_key is None:
                    lo_key = key
                hi_key = key
            sketch.count += int(counts[offset])
            sketch._sum += float(sums[offset])
            # bucket-representative extremes: deterministic under any
            # fold order / chunking of the same per-window value set
            sketch._min = min(sketch._min, 2.0 * gamma**lo_key / (gamma + 1.0))
            sketch._max = max(sketch._max, 2.0 * gamma**hi_key / (gamma + 1.0))
        self._evict(self._sketches, base + span - 1)
        return touched

    def sketch(self, index: int) -> "QuantileSketch | None":
        return self._sketches.get(index)

    def indices(self) -> list[int]:
        return sorted(self._sketches)

    def merge(self, other: "WindowedHistogram") -> "WindowedHistogram":
        self._check_mergeable(other)
        if other.quantile_error != self.quantile_error:
            raise ValueError("can only merge histograms with equal error bounds")
        for index, sketch in other._sketches.items():
            mine = self._sketches.get(index)
            if mine is None:
                self._sketches[index] = _copy_sketch(sketch)
            else:
                mine.merge(sketch)
        self._evict(self._sketches, other._max_index)
        return self

    def as_dict(self) -> dict[str, Any]:
        windows = {}
        for index in sorted(self._sketches):
            sketch = self._sketches[index]
            windows[str(index)] = {
                "count": sketch.count,
                "sum": sketch.sum,
                "min": sketch.min,
                "max": sketch.max,
                "underflow": sketch._underflow,
                "buckets": {str(key): num for key, num in sorted(sketch._counts.items())},
            }
        return {
            "window_seconds": self.window_seconds,
            "capacity": self.capacity,
            "quantile_error": self.quantile_error,
            "windows": windows,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WindowedHistogram":
        series = cls(
            data["window_seconds"],
            data.get("capacity", DEFAULT_WINDOW_CAPACITY),
            data.get("quantile_error", 0.01),
        )
        for index, state in data.get("windows", {}).items():
            sketch = _make_sketch(series.quantile_error)
            sketch.count = int(state["count"])
            sketch._sum = float(state["sum"])
            sketch._min = float(state["min"])
            sketch._max = float(state["max"])
            sketch._underflow = int(state.get("underflow", 0))
            sketch._counts = {
                int(key): int(num) for key, num in state.get("buckets", {}).items()
            }
            series._sketches[int(index)] = sketch
        if series._sketches:
            series._evict(series._sketches, max(series._sketches))
        return series


def _key_span(keys: np.ndarray) -> int:
    return int(keys.max()) - int(keys.min()) + 1


def _copy_sketch(sketch: "QuantileSketch") -> "QuantileSketch":
    clone = _make_sketch(sketch.relative_error)
    clone.merge(sketch)
    return clone


@dataclass(frozen=True)
class WindowStats:
    """One rendered row of a monitor's timeline."""

    index: int
    start: float
    end: float
    completed: int
    shed: int
    kills: int
    p50: float | None
    p99: float | None
    mean_latency: float | None
    peak_latency: float | None

    @property
    def rps(self) -> float:
        return self.completed / (self.end - self.start)

    @property
    def availability(self) -> float:
        """Fraction of this window's outcomes that were completions."""
        outcomes = self.completed + self.shed
        if outcomes == 0:
            return 1.0
        return self.completed / outcomes

    @property
    def shed_rate(self) -> float:
        outcomes = self.completed + self.shed
        if outcomes == 0:
            return 0.0
        return self.shed / outcomes

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "completed": self.completed,
            "shed": self.shed,
            "kills": self.kills,
            "rps": self.rps,
            "p50": self.p50,
            "p99": self.p99,
            "mean_latency": self.mean_latency,
            "peak_latency": self.peak_latency,
            "availability": self.availability,
        }


class ServingMonitor:
    """The windowed-telemetry hook the serving engines feed.

    One monitor watches one serve (or one shard of one): the engines
    call :meth:`observe_chunk` with each flushed chunk's arrival /
    start / finish arrays — the *same* chunk boundaries the streaming
    report consumes, after dispatch decisions are final — and the fault
    loop reports sheds and kills by their simulated timestamps.
    Completions land in the window of their **finish** time (telemetry
    reports events when they happen, not when they were requested);
    sheds and kills land at their decision times.

    Monitors merge like streaming reports: always in shard order, counts
    adding and sketches folding bucket-exactly, so a fleet's merged
    timeline is a deterministic function of the shard series.
    """

    def __init__(
        self,
        window_seconds: float,
        *,
        quantile_error: float = 0.01,
        capacity: int = DEFAULT_WINDOW_CAPACITY,
    ):
        self.window_seconds = float(window_seconds)
        self.quantile_error = float(quantile_error)
        self.capacity = int(capacity)
        self.requests = WindowedCounter(window_seconds, capacity)
        self.sheds = WindowedCounter(window_seconds, capacity)
        self.kills = WindowedCounter(window_seconds, capacity)
        self.latency = WindowedHistogram(window_seconds, capacity, quantile_error)
        self.peak_latency = WindowedGauge(window_seconds, capacity)
        self.chunks = 0

    # -- feed ----------------------------------------------------------
    def observe_chunk(
        self,
        arrivals: np.ndarray,
        starts: np.ndarray,
        finishes: np.ndarray,
    ) -> None:
        """Fold one flushed dispatch chunk (arrays align by request)."""
        finishes = np.asarray(finishes, dtype=np.float64)
        if finishes.size == 0:
            return
        arrivals = np.asarray(arrivals, dtype=np.float64)
        self.chunks += 1
        # one window-index pass shared by every series of the monitor
        indices = self.requests.indices_of(finishes)
        self.requests.add_indices(indices)
        latency = finishes - arrivals
        touched = self.latency.observe_values(finishes, latency, indices=indices)
        # peak per window from the freshly folded sketches keeps the
        # gauge consistent with the histogram under any chunking
        for index in touched:
            sketch = self.latency.sketch(index)
            if sketch is not None and sketch.count:
                self.peak_latency.observe_max(index, sketch.max)

    def observe_sheds(self, times: np.ndarray) -> None:
        self.sheds.add_times(times)

    def observe_kills(self, times: np.ndarray) -> None:
        self.kills.add_times(times)

    # -- merge ---------------------------------------------------------
    def merge(self, other: "ServingMonitor") -> "ServingMonitor":
        """Fold another shard's monitor into this one (shard order)."""
        if other.window_seconds != self.window_seconds:
            raise ValueError(
                "can only merge monitors with identical window widths"
            )
        if other.quantile_error != self.quantile_error:
            raise ValueError(
                "can only merge monitors with identical quantile errors"
            )
        self.requests.merge(other.requests)
        self.sheds.merge(other.sheds)
        self.kills.merge(other.kills)
        self.latency.merge(other.latency)
        self.peak_latency.merge(other.peak_latency)
        self.chunks += other.chunks
        return self

    # -- read ----------------------------------------------------------
    def window_indices(self) -> list[int]:
        indices = set(self.requests.indices())
        indices.update(self.sheds.indices())
        indices.update(self.kills.indices())
        return sorted(indices)

    def window_stats(self, index: int) -> WindowStats:
        start, end = self.requests.bounds(index)
        sketch = self.latency.sketch(index)
        p50 = p99 = mean = None
        if sketch is not None and sketch.count:
            p50, p99 = sketch.quantiles([50, 99])
            mean = sketch.mean()
        return WindowStats(
            index=index,
            start=start,
            end=end,
            completed=int(self.requests.value(index)),
            shed=int(self.sheds.value(index)),
            kills=int(self.kills.value(index)),
            p50=p50,
            p99=p99,
            mean_latency=mean,
            peak_latency=self.peak_latency.value(index),
        )

    def timeline(self) -> list[WindowStats]:
        """Every populated window, oldest first."""
        return [self.window_stats(index) for index in self.window_indices()]

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        for stats in self.timeline():
            yield stats.as_dict()

    # -- (de)serialization ---------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Full-fidelity JSON state (sketch buckets included), so an
        exported monitor can be re-evaluated against any SLO spec."""
        return {
            "window_seconds": self.window_seconds,
            "quantile_error": self.quantile_error,
            "capacity": self.capacity,
            "chunks": self.chunks,
            "requests": self.requests.as_dict(),
            "sheds": self.sheds.as_dict(),
            "kills": self.kills.as_dict(),
            "latency": self.latency.as_dict(),
            "peak_latency": self.peak_latency.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServingMonitor":
        monitor = cls(
            data["window_seconds"],
            quantile_error=data.get("quantile_error", 0.01),
            capacity=data.get("capacity", DEFAULT_WINDOW_CAPACITY),
        )
        monitor.chunks = int(data.get("chunks", 0))
        monitor.requests = WindowedCounter.from_dict(data["requests"])
        monitor.sheds = WindowedCounter.from_dict(data["sheds"])
        monitor.kills = WindowedCounter.from_dict(data["kills"])
        monitor.latency = WindowedHistogram.from_dict(data["latency"])
        monitor.peak_latency = WindowedGauge.from_dict(data["peak_latency"])
        return monitor

    @classmethod
    def for_horizon(
        cls,
        horizon: float,
        windows: int,
        *,
        quantile_error: float = 0.01,
        capacity: int | None = None,
    ) -> "ServingMonitor":
        """A monitor cutting ``horizon`` seconds into ``windows`` slices."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if windows < 1:
            raise ValueError("need at least one window")
        return cls(
            horizon / windows,
            quantile_error=quantile_error,
            capacity=max(capacity or DEFAULT_WINDOW_CAPACITY, 2 * windows),
        )
