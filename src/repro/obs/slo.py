"""Declarative SLOs with multi-window burn-rate alerting.

A spec string like ``"p99<50ms,avail>0.999,shed<0.01"`` compiles to a
:class:`SloSpec` of typed objectives:

* ``pNN<T`` — a latency objective: at most ``1 - NN/100`` of requests
  may finish slower than ``T`` (units ``ns``/``us``/``ms``/``s``, bare
  numbers are seconds);
* ``avail>F`` — an availability floor: at most ``1 - F`` of outcomes
  may be sheds;
* ``shed<C`` — a shed-rate ceiling: at most ``C`` of outcomes may be
  sheds.

Each objective defines an **error budget** — the fraction of events
allowed to be bad over the run.  :func:`evaluate_slo` walks a
:class:`repro.obs.windows.ServingMonitor`'s timeline, counts bad events
per window (latency objectives query each window's sketch with
``count_above``, so no samples are retained anywhere), and applies the
Google-SRE multi-window burn-rate recipe adapted to a bounded run:

* the **fast** alert watches a short trailing span (5% of the series,
  minimum one window) and fires when that span alone consumes 5% of
  the whole run's error budget — the "page someone now" signal;
* the **slow** alert fires when cumulative bad events exhaust 1x the
  run's budget — the "the SLO is lost" signal.

Alerts are rising-edge :class:`AlertEvent`s stamped with the simulated
time of the window edge where the condition became true, so a fault
window injected mid-run produces an alert timestamped *inside* that
window — an end-to-end-tested contract.

Like the rest of ``repro.obs``, this module imports nothing from
``repro.sim`` at module level; it reads monitors through their public
surface only.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.windows import ServingMonitor

__all__ = [
    "AlertEvent",
    "BurnRatePolicy",
    "ObjectiveResult",
    "SloObjective",
    "SloReport",
    "SloSpec",
    "WindowVerdict",
    "evaluate_slo",
    "parse_slo",
]

_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0, None: 1.0}

_LATENCY_RE = re.compile(
    r"^p(?P<pct>\d+(?:\.\d+)?)\s*(?:<=|<)\s*"
    r"(?P<num>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)\s*(?P<unit>ns|us|ms|s)?$"
)
_AVAIL_RE = re.compile(
    r"^avail(?:ability)?\s*(?:>=|>)\s*(?P<num>\d*\.?\d+(?:[eE][+-]?\d+)?)$"
)
_SHED_RE = re.compile(
    r"^shed(?:_rate)?\s*(?:<=|<)\s*(?P<num>\d*\.?\d+(?:[eE][+-]?\d+)?)$"
)


@dataclass(frozen=True)
class SloObjective:
    """One compiled SLO clause.

    ``budget`` is the error-budget fraction: the share of the
    objective's event population allowed to be bad over the whole run.
    """

    kind: str  # "latency" | "availability" | "shed_rate"
    name: str  # canonical clause text, e.g. "p99<0.05s"
    budget: float
    percentile: float | None = None
    threshold_seconds: float | None = None
    target: float | None = None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "budget": self.budget,
        }
        if self.percentile is not None:
            out["percentile"] = self.percentile
        if self.threshold_seconds is not None:
            out["threshold_seconds"] = self.threshold_seconds
        if self.target is not None:
            out["target"] = self.target
        return out


@dataclass(frozen=True)
class SloSpec:
    """An ordered set of objectives compiled from one spec string."""

    objectives: tuple[SloObjective, ...]
    text: str

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("an SLO spec needs at least one objective")

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        objectives = tuple(
            _parse_clause(clause.strip())
            for clause in text.split(",")
            if clause.strip()
        )
        if not objectives:
            raise ValueError(f"empty SLO spec: {text!r}")
        return cls(objectives=objectives, text=text)

    def as_dict(self) -> dict[str, Any]:
        return {
            "text": self.text,
            "objectives": [objective.as_dict() for objective in self.objectives],
        }


def parse_slo(text: str) -> SloSpec:
    """Compile ``"p99<50ms,avail>0.999,shed<0.01"`` into a spec."""
    return SloSpec.parse(text)


def _parse_clause(clause: str) -> SloObjective:
    match = _LATENCY_RE.match(clause)
    if match:
        percentile = float(match.group("pct"))
        if not 0 < percentile < 100:
            raise ValueError(
                f"latency percentile must be in (0, 100): {clause!r}"
            )
        threshold = float(match.group("num")) * _UNIT_SECONDS[match.group("unit")]
        if threshold <= 0:
            raise ValueError(f"latency threshold must be positive: {clause!r}")
        return SloObjective(
            kind="latency",
            name=f"p{match.group('pct')}<{threshold:g}s",
            budget=1.0 - percentile / 100.0,
            percentile=percentile,
            threshold_seconds=threshold,
        )
    match = _AVAIL_RE.match(clause)
    if match:
        target = float(match.group("num"))
        if not 0 <= target < 1:
            raise ValueError(
                f"availability floor must be in [0, 1): {clause!r}"
            )
        return SloObjective(
            kind="availability",
            name=f"avail>{target:g}",
            budget=1.0 - target,
            target=target,
        )
    match = _SHED_RE.match(clause)
    if match:
        ceiling = float(match.group("num"))
        if not 0 < ceiling <= 1:
            raise ValueError(f"shed ceiling must be in (0, 1]: {clause!r}")
        return SloObjective(
            kind="shed_rate",
            name=f"shed<{ceiling:g}",
            budget=ceiling,
            target=ceiling,
        )
    raise ValueError(
        f"unparseable SLO clause {clause!r} "
        "(expected pNN<T[ms], avail>F, or shed<C)"
    )


@dataclass(frozen=True)
class BurnRatePolicy:
    """Multi-window burn-rate alerting knobs (SRE-workbook defaults)."""

    fast_span_fraction: float = 0.05  # trailing span, as share of series
    fast_budget_fraction: float = 0.05  # budget burned in span -> page
    slow_budget_fraction: float = 1.0  # cumulative budget gone -> lost

    def fast_span(self, num_windows: int) -> int:
        return max(1, round(self.fast_span_fraction * num_windows))


@dataclass(frozen=True)
class AlertEvent:
    """A rising-edge burn-rate alert at a simulated-time window edge."""

    time: float
    objective: str
    severity: str  # "fast" | "slow"
    burn_rate: float
    window_seconds: float
    detail: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "objective": self.objective,
            "severity": self.severity,
            "burn_rate": self.burn_rate,
            "window_seconds": self.window_seconds,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class WindowVerdict:
    """One objective's view of one window."""

    index: int
    start: float
    end: float
    bad: int
    total: int
    burn_rate: float

    @property
    def ok(self) -> bool:
        """Within budget at this window's own rate (burn rate <= 1)."""
        return self.burn_rate <= 1.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "bad": self.bad,
            "total": self.total,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class ObjectiveResult:
    """One objective evaluated over a monitor's full timeline."""

    objective: SloObjective
    windows: tuple[WindowVerdict, ...]
    alerts: tuple[AlertEvent, ...]
    total_events: int
    bad_events: int
    budget_events: float

    @property
    def ok(self) -> bool:
        return not self.alerts

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget burned over the run."""
        if self.budget_events <= 0:
            return 0.0 if self.bad_events == 0 else float("inf")
        return self.bad_events / self.budget_events

    def as_dict(self) -> dict[str, Any]:
        return {
            "objective": self.objective.as_dict(),
            "total_events": self.total_events,
            "bad_events": self.bad_events,
            "budget_events": self.budget_events,
            "budget_consumed": self.budget_consumed,
            "ok": self.ok,
            "windows": [verdict.as_dict() for verdict in self.windows],
            "alerts": [alert.as_dict() for alert in self.alerts],
        }


@dataclass(frozen=True)
class SloReport:
    """Every objective's verdicts plus the merged alert timeline."""

    spec: SloSpec
    results: tuple[ObjectiveResult, ...]
    policy: BurnRatePolicy = field(default_factory=BurnRatePolicy)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def alerts(self) -> list[AlertEvent]:
        """All alerts across objectives, in firing order."""
        merged = [alert for result in self.results for alert in result.alerts]
        merged.sort(key=lambda alert: (alert.time, alert.objective, alert.severity))
        return merged

    def window_ok(self, index: int) -> bool:
        """True when every objective's verdict at ``index`` is in budget."""
        for result in self.results:
            for verdict in result.windows:
                if verdict.index == index and not verdict.ok:
                    return False
        return True

    def as_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.as_dict(),
            "ok": self.ok,
            "results": [result.as_dict() for result in self.results],
            "alerts": [alert.as_dict() for alert in self.alerts],
        }


def _window_events(
    monitor: "ServingMonitor", objective: SloObjective, index: int
) -> tuple[int, int]:
    """``(bad, total)`` for one objective in one window."""
    completed = int(monitor.requests.value(index))
    shed = int(monitor.sheds.value(index))
    if objective.kind == "latency":
        sketch = monitor.latency.sketch(index)
        if sketch is None or not sketch.count:
            return 0, completed
        return sketch.count_above(objective.threshold_seconds), completed
    # availability floor and shed-rate ceiling both count sheds as bad
    # out of all outcomes; only their budgets differ
    return shed, completed + shed


def _evaluate_objective(
    monitor: "ServingMonitor",
    objective: SloObjective,
    indices: list[int],
    policy: BurnRatePolicy,
) -> ObjectiveResult:
    per_window = [
        _window_events(monitor, objective, index) for index in indices
    ]
    total_events = sum(total for _, total in per_window)
    bad_events = sum(bad for bad, _ in per_window)
    budget_events = objective.budget * total_events

    verdicts = []
    for index, (bad, total) in zip(indices, per_window):
        start, end = monitor.requests.bounds(index)
        if total == 0:
            rate = 0.0 if bad == 0 else float("inf")
        else:
            rate = (bad / total) / objective.budget
        verdicts.append(
            WindowVerdict(
                index=index, start=start, end=end,
                bad=bad, total=total, burn_rate=rate,
            )
        )

    fast_span = policy.fast_span(len(indices))
    fast_threshold = policy.fast_budget_fraction * budget_events
    slow_threshold = policy.slow_budget_fraction * budget_events
    alerts: list[AlertEvent] = []
    fast_active = slow_active = False
    cumulative = 0
    bads = [bad for bad, _ in per_window]
    for pos, verdict in enumerate(verdicts):
        cumulative += bads[pos]
        # trailing fast span measured over *window positions*, padding
        # empty (unpopulated) windows implicitly with zero bad events
        fast_bad = sum(bads[max(0, pos - fast_span + 1) : pos + 1])
        fast_now = fast_bad > 0 and fast_bad >= fast_threshold
        slow_now = cumulative > 0 and cumulative >= slow_threshold
        if fast_now and not fast_active:
            alerts.append(
                AlertEvent(
                    time=verdict.end,
                    objective=objective.name,
                    severity="fast",
                    burn_rate=verdict.burn_rate,
                    window_seconds=monitor.window_seconds,
                    detail=(
                        f"{fast_bad} bad events in the last {fast_span} "
                        f"window(s) burned >= {policy.fast_budget_fraction:.0%} "
                        f"of the {budget_events:.1f}-event budget"
                    ),
                )
            )
        if slow_now and not slow_active:
            alerts.append(
                AlertEvent(
                    time=verdict.end,
                    objective=objective.name,
                    severity="slow",
                    burn_rate=verdict.burn_rate,
                    window_seconds=monitor.window_seconds,
                    detail=(
                        f"cumulative {cumulative} bad events exhausted "
                        f"{policy.slow_budget_fraction:g}x the "
                        f"{budget_events:.1f}-event budget"
                    ),
                )
            )
        fast_active = fast_now
        slow_active = slow_now

    return ObjectiveResult(
        objective=objective,
        windows=tuple(verdicts),
        alerts=tuple(alerts),
        total_events=total_events,
        bad_events=bad_events,
        budget_events=budget_events,
    )


def evaluate_slo(
    monitor: "ServingMonitor",
    spec: SloSpec | str,
    policy: BurnRatePolicy | None = None,
) -> SloReport:
    """Evaluate every objective of ``spec`` over ``monitor``'s timeline.

    The timeline is the contiguous window range from the first to the
    last populated window — interior windows that saw no events still
    occupy burn-rate positions (with zero bad events), exactly as a
    wall-clock alerting pipeline would see them.
    """
    if isinstance(spec, str):
        spec = SloSpec.parse(spec)
    policy = policy or BurnRatePolicy()
    populated = monitor.window_indices()
    if populated:
        indices = list(range(populated[0], populated[-1] + 1))
    else:
        indices = []
    results = tuple(
        _evaluate_objective(monitor, objective, indices, policy)
        for objective in spec.objectives
    )
    return SloReport(spec=spec, results=results, policy=policy)
