"""Unified observability: tracing spans, metrics, Perfetto export.

Three cooperating pieces:

* :mod:`repro.obs.spans` — the ``span(...)`` context-manager API and
  process-wide :data:`~repro.obs.spans.GLOBAL_TRACER` (disabled by
  default, zero-overhead when off);
* :mod:`repro.obs.metrics` — counters/gauges/histograms in
  :data:`~repro.obs.metrics.GLOBAL_METRICS` with Prometheus text and
  JSON exposition;
* :mod:`repro.obs.export` / :mod:`repro.obs.summary` — Chrome
  trace-event JSON out (loadable in Perfetto), and per-track
  utilization/overlap/bottleneck analysis back in.

This package deliberately has no module-level imports from
``repro.sim`` or ``repro.perf`` — those layers import *us*, and
``repro/sim/__init__`` transitively imports ``repro.perf.metrics``.
"""

from repro.obs.export import (
    ChromeTraceBuilder,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import (
    GLOBAL_TRACER,
    Span,
    Tracer,
    instant,
    span,
    tracing_enabled,
)
from repro.obs.summary import (
    TraceSummary,
    TrackStats,
    load_trace,
    summarize_trace,
)

__all__ = [
    "ChromeTraceBuilder",
    "Counter",
    "Gauge",
    "GLOBAL_METRICS",
    "GLOBAL_TRACER",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceSummary",
    "TrackStats",
    "Tracer",
    "instant",
    "load_trace",
    "span",
    "summarize_trace",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
]
