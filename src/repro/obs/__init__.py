"""Unified observability: tracing spans, metrics, Perfetto export.

Three cooperating pieces:

* :mod:`repro.obs.spans` — the ``span(...)`` context-manager API and
  process-wide :data:`~repro.obs.spans.GLOBAL_TRACER` (disabled by
  default, zero-overhead when off);
* :mod:`repro.obs.metrics` — counters/gauges/histograms in
  :data:`~repro.obs.metrics.GLOBAL_METRICS` with Prometheus text and
  JSON exposition;
* :mod:`repro.obs.export` / :mod:`repro.obs.summary` — Chrome
  trace-event JSON out (loadable in Perfetto), and per-track
  utilization/overlap/bottleneck analysis back in;
* :mod:`repro.obs.windows` / :mod:`repro.obs.slo` — time-windowed
  telemetry (ring-buffer counter/gauge/histogram series fed by a
  :class:`~repro.obs.windows.ServingMonitor` at dispatch-chunk
  boundaries) and declarative SLOs with multi-window burn-rate
  alerting over those series.

This package deliberately has no module-level imports from
``repro.sim`` or ``repro.perf`` — those layers import *us*, and
``repro/sim/__init__`` transitively imports ``repro.perf.metrics``.
"""

from repro.obs.export import (
    ChromeTraceBuilder,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import (
    GLOBAL_TRACER,
    Span,
    Tracer,
    instant,
    span,
    tracing_enabled,
)
from repro.obs.slo import (
    AlertEvent,
    BurnRatePolicy,
    SloObjective,
    SloReport,
    SloSpec,
    evaluate_slo,
    parse_slo,
)
from repro.obs.summary import (
    TraceSummary,
    TrackStats,
    load_trace,
    summarize_trace,
)
from repro.obs.windows import (
    ServingMonitor,
    WindowStats,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)

__all__ = [
    "AlertEvent",
    "BurnRatePolicy",
    "ChromeTraceBuilder",
    "Counter",
    "Gauge",
    "GLOBAL_METRICS",
    "GLOBAL_TRACER",
    "Histogram",
    "MetricsRegistry",
    "ServingMonitor",
    "SloObjective",
    "SloReport",
    "SloSpec",
    "Span",
    "TraceSummary",
    "TrackStats",
    "Tracer",
    "WindowStats",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "evaluate_slo",
    "instant",
    "load_trace",
    "parse_slo",
    "span",
    "summarize_trace",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
]
