"""Structured tracing spans with a zero-overhead disabled fast path.

The paper reads its double-buffering and bottleneck stories off
``aiesimulator`` timelines; this module is the library's equivalent
instrument: every subsystem (the analytical model, DSE, sweeps, the
serving engines, the pipeline simulator) opens :func:`span` blocks
around its phases, and the exporter in :mod:`repro.obs.export` renders
the collected spans as a Chrome trace-event timeline loadable in
Perfetto.

The contract that keeps this safe to leave in hot paths:

* Tracing is **disabled by default**.  The module-level :func:`span`
  fast path does one attribute check and returns a shared no-op
  context manager — no allocation, no timestamp, no lock.  The bound
  is asserted by ``benchmarks/bench_obs_overhead.py`` (≤ 3% serving
  throughput delta on 100k requests, and a per-call ceiling).
* Timestamps are monotonic (``time.perf_counter``) relative to the
  tracer's enable epoch, so exported timelines are nonnegative and
  ordered even across threads.
* The span stack is thread-local: concurrent workers (``jobs=N`` DSE,
  the serving simulator) nest spans independently and default their
  track to the worker thread's name, giving one Perfetto track per
  worker with no coordination.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator

__all__ = [
    "GLOBAL_TRACER",
    "Span",
    "Tracer",
    "instant",
    "span",
    "tracing_enabled",
]


class Span:
    """One named, timed interval with attributes.

    Used as a context manager: entering stamps ``start``, exiting
    stamps ``end`` and records the span into its tracer (only if the
    tracer is still enabled, so a mid-run ``disable()`` never loses the
    invariant that recorded spans are complete).
    """

    __slots__ = ("name", "track", "start", "end", "attrs", "depth", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        track: str | None,
        attrs: dict[str, Any] | None,
    ):
        self.name = name
        self.track = track
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.depth = 0
        self._tracer = tracer

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span (returns self)."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        if self.track is None:
            self.track = (
                stack[-1].track if stack else threading.current_thread().name
            )
        self.depth = len(stack)
        stack.append(self)
        self.start = time.perf_counter() - tracer.epoch
        return self

    def __exit__(self, *_exc: object) -> bool:
        tracer = self._tracer
        self.end = time.perf_counter() - tracer.epoch
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if tracer.enabled:
            tracer._record(self)
        return False


class _NullSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False

    def set(self, **_attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Process-wide span collector.

    ``enabled`` is a plain attribute so the disabled check compiles to
    one attribute load; recording takes a lock (spans may finish on any
    worker thread).  ``max_spans`` bounds memory on runaway traces —
    further spans are counted in :attr:`dropped` instead of stored.
    """

    def __init__(self, max_spans: int = 1_000_000):
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.enabled = False
        self.max_spans = max_spans
        self.dropped = 0
        self.epoch = time.perf_counter()
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- lifecycle ------------------------------------------------------
    def enable(self, clear: bool = True) -> None:
        """Start collecting; ``clear`` (default) drops prior spans and
        re-anchors the timestamp epoch at zero."""
        if clear:
            self.clear()
            self.epoch = time.perf_counter()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    # -- recording ------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
            else:
                self._spans.append(span)

    def span(self, name: str, track: str | None = None, **attrs: Any) -> Span:
        """A new span context manager (records on exit while enabled)."""
        return Span(self, name, track, attrs or None)

    def instant(self, name: str, track: str | None = None, **attrs: Any) -> None:
        """Record a zero-duration marker at the current timestamp."""
        if not self.enabled:
            return
        marker = Span(self, name, track, attrs or None)
        if marker.track is None:
            stack = self._stack()
            marker.track = (
                stack[-1].track if stack else threading.current_thread().name
            )
        marker.start = marker.end = time.perf_counter() - self.epoch
        self._record(marker)

    # -- reading --------------------------------------------------------
    def spans(self) -> list[Span]:
        """A snapshot of the recorded spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Return the recorded spans and clear the buffer."""
        with self._lock:
            spans = self._spans
            self._spans = []
            self.dropped = 0
            return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())


#: the process-wide tracer every instrumented subsystem reports to
GLOBAL_TRACER = Tracer()


def span(name: str, track: str | None = None, **attrs: Any):
    """Open a span on :data:`GLOBAL_TRACER` — or a shared no-op.

    This is the instrumentation entry point for hot paths: when tracing
    is disabled (the default) it returns the singleton null span after
    a single attribute check.
    """
    tracer = GLOBAL_TRACER
    if not tracer.enabled:
        return _NULL_SPAN
    return tracer.span(name, track=track, **attrs)


def instant(name: str, track: str | None = None, **attrs: Any) -> None:
    """Record a zero-duration marker on :data:`GLOBAL_TRACER` (no-op
    while disabled)."""
    tracer = GLOBAL_TRACER
    if tracer.enabled:
        tracer.instant(name, track=track, **attrs)


def tracing_enabled() -> bool:
    return GLOBAL_TRACER.enabled
