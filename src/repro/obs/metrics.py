"""A metrics registry: named counters, gauges, and histograms.

One process-wide :class:`MetricsRegistry` (:data:`GLOBAL_METRICS`)
receives every subsystem's counters — the evaluation-engine stats that
``repro.perf.metrics`` publishes, fault accounting from chaos runs,
serving latency distributions — and renders them two ways:

* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  (the ``--metrics-out metrics.prom`` CLI surface);
* :meth:`MetricsRegistry.snapshot` — a JSON-able dict for programmatic
  consumers and tests.

Histograms reuse :class:`repro.sim.streaming.QuantileSketch`, so the
registry inherits its documented relative-error bound and O(buckets)
memory instead of keeping raw samples.  All instruments are
thread-safe: parallel ``jobs=N`` evaluators and the serving simulator
publish concurrently without lost updates.

Metric naming follows the Prometheus conventions the docs page
describes: ``repro_<subsystem>_<quantity>[_total]``, lowercase, with
units in the name (``_seconds``, ``_total``).
"""

from __future__ import annotations

import copy
import json
import re
import threading
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim -> perf -> obs)
    from repro.sim.streaming import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "GLOBAL_METRICS",
    "MetricsRegistry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: quantiles exposed for histograms in both exposition formats
_EXPORT_QUANTILES = (50.0, 90.0, 95.0, 99.0)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{_escape_label(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing value (floats allowed, e.g. seconds)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can move both ways (``set``/``inc``/``dec``/``max_``)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def max_(self, value: float) -> None:
        """Keep the running maximum (e.g. peak worker count)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A quantile-sketch-backed distribution (Prometheus summary style).

    Backed by :class:`repro.sim.streaming.QuantileSketch`: count and sum
    are exact, quantiles carry the sketch's relative-error bound.
    """

    __slots__ = ("name", "labels", "sketch", "_lock")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        relative_error: float = 0.01,
    ):
        # imported lazily: repro.sim.__init__ pulls in the serving stack,
        # which imports repro.perf.metrics, which imports this module
        from repro.sim.streaming import QuantileSketch

        self.name = name
        self.labels = labels
        self.sketch = QuantileSketch(relative_error)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sketch.add(value)

    def observe_many(self, values: Iterable[float]) -> None:
        with self._lock:
            self.sketch.add_many(values)

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def sum(self) -> float:
        return self.sketch.sum

    def quantile(self, percentile: float) -> float:
        with self._lock:
            return self.sketch.quantile(percentile)

    def quantiles(self, percentiles: Sequence[float]) -> list[float]:
        with self._lock:
            return self.sketch.quantiles(percentiles)


class _Family:
    """All instruments sharing one metric name (distinct label sets)."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_: str):
        self.name = name
        self.kind = kind
        self.help = help_
        self.children: dict[tuple[tuple[str, str], ...], Any] = {}


class MetricsRegistry:
    """Get-or-create instrument registry with text/JSON exposition."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- instrument accessors ------------------------------------------
    def _get(
        self,
        kind: str,
        name: str,
        help_: str,
        labels: dict[str, str],
        factory,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        label_key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind, help_)
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family.kind}"
                )
            if help_ and not family.help:
                family.help = help_
            instrument = family.children.get(label_key)
            if instrument is None:
                instrument = family.children[label_key] = factory(name, label_key)
            return instrument

    def counter(self, name: str, help_: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help_, labels, Counter)

    def gauge(self, name: str, help_: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help_, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_: str = "",
        relative_error: float = 0.01,
        **labels: str,
    ) -> Histogram:
        return self._get(
            "summary",
            name,
            help_,
            labels,
            lambda n, key: Histogram(n, key, relative_error),
        )

    # -- maintenance ----------------------------------------------------
    def reset(self, prefix: str | None = None) -> None:
        """Drop every family (or only those whose name starts with
        ``prefix``) — the CLI resets per invocation."""
        with self._lock:
            if prefix is None:
                self._families.clear()
            else:
                for name in [n for n in self._families if n.startswith(prefix)]:
                    del self._families[name]

    def families(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    # -- cross-process merge --------------------------------------------
    def dump(self) -> list[dict]:
        """Picklable, *mergeable* state of every instrument.

        Unlike :meth:`snapshot` (which renders quantiles and drops the
        sketch buckets), a dump carries enough to reconstruct each
        instrument exactly: counter/gauge values and deep copies of the
        histogram sketches.  It contains no locks, so shard workers can
        ship it across a process boundary for the parent's
        :meth:`merge_dump`.
        """
        out: list[dict] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                children = []
                for label_key in sorted(family.children):
                    child = family.children[label_key]
                    if family.kind == "summary":
                        state: Any = copy.deepcopy(child.sketch)
                    else:
                        state = child.value
                    children.append((label_key, state))
                out.append(
                    {
                        "name": name,
                        "kind": family.kind,
                        "help": family.help,
                        "children": children,
                    }
                )
        return out

    def merge_dump(self, dump: list[dict]) -> None:
        """Fold another registry's :meth:`dump` into this one.

        Counters add, histograms merge their sketches bucket-exactly,
        and gauges keep the running maximum — the gauges this registry
        publishes (peak worker counts, last-run throughput) all read
        sensibly under max when k shard workers report in.  Instruments
        the dump names are created on demand.
        """
        for family in dump:
            kind = family["kind"]
            name = family["name"]
            help_ = family["help"]
            for label_key, state in family["children"]:
                labels = dict(label_key)
                if kind == "counter":
                    self.counter(name, help_, **labels).inc(state)
                elif kind == "gauge":
                    self.gauge(name, help_, **labels).max_(state)
                else:
                    histogram = self.histogram(
                        name, help_, relative_error=state.relative_error, **labels
                    )
                    with histogram._lock:
                        histogram.sketch.merge(state)

    # -- exposition -----------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    lines.append(f"# HELP {name} {family.help}")
                # sketch-backed distributions expose cumulative buckets,
                # so Prometheus/PromQL can histogram_quantile() them
                kind = "histogram" if family.kind == "summary" else family.kind
                lines.append(f"# TYPE {name} {kind}")
                for label_key in sorted(family.children):
                    child = family.children[label_key]
                    if family.kind == "summary":
                        with child._lock:
                            buckets = child.sketch.cumulative_buckets()
                        for upper, cumulative in buckets:
                            le = f'le="{upper:.9g}"'
                            lines.append(
                                f"{name}_bucket{_format_labels(label_key, le)} "
                                f"{cumulative}"
                            )
                        inf_label = 'le="+Inf"'
                        lines.append(
                            f"{name}_bucket{_format_labels(label_key, inf_label)} "
                            f"{child.count}"
                        )
                        lines.append(
                            f"{name}_sum{_format_labels(label_key)} {child.sum:.9g}"
                        )
                        lines.append(
                            f"{name}_count{_format_labels(label_key)} {child.count}"
                        )
                    else:
                        value = child.value
                        rendered = (
                            str(int(value)) if value == int(value) else f"{value:.9g}"
                        )
                        lines.append(f"{name}{_format_labels(label_key)} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able dict mirroring the exposition content."""
        out: dict[str, Any] = {}
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                values = []
                for label_key in sorted(family.children):
                    child = family.children[label_key]
                    record: dict[str, Any] = {"labels": dict(label_key)}
                    if family.kind == "summary":
                        record["count"] = child.count
                        record["sum"] = child.sum
                        if child.count:
                            record["quantiles"] = {
                                f"p{int(p) if p == int(p) else p}": value
                                for p, value in zip(
                                    _EXPORT_QUANTILES,
                                    child.quantiles(list(_EXPORT_QUANTILES)),
                                )
                            }
                    else:
                        record["value"] = child.value
                    values.append(record)
                out[name] = {
                    "type": family.kind,
                    "help": family.help,
                    "values": values,
                }
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)


#: the process-wide registry; ``repro.perf.metrics`` publishes the
#: evaluation/fault stats here and the CLI's ``--metrics-out`` dumps it
GLOBAL_METRICS = MetricsRegistry()
