"""Serialization: designs, estimates and results as plain dicts/JSON.

A deployment pipeline wants to persist the chosen design and its
predicted behaviour next to the build artifacts.  This module provides
stable, versioned dict encodings with full round-tripping for designs
and faithful (read-only) exports for estimates.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.analytical_model import Estimate
from repro.hw.dram import DramPorts
from repro.hw.interconnect import CommScheme
from repro.hw.specs import device_by_name
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import HardwareConfig
from repro.mapping.grouping import AieGrouping
from repro.workloads.gemm import GemmShape

SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Designs (round-trip)
# ----------------------------------------------------------------------
def design_to_dict(design: CharmDesign) -> dict[str, Any]:
    config = design.config
    grouping = config.grouping
    return {
        "schema": SCHEMA_VERSION,
        "kind": "charm_design",
        "device": design.device.name,
        "config": {
            "name": config.name,
            "precision": str(config.precision),
            "grouping": [grouping.gm, grouping.gk, grouping.gn],
            "kernel": str(grouping.kernel),
            "num_plios": config.num_plios,
            "plio_split": list(config.plio_split_override)
            if config.plio_split_override
            else None,
            "dram_ports": str(config.dram_ports),
        },
        "kernel_style": str(design.kernel_style),
        "comm_scheme": str(design.comm_scheme),
        "pl_double_buffered": design.pl_double_buffered,
    }


def design_from_dict(data: dict[str, Any]) -> CharmDesign:
    if data.get("kind") != "charm_design":
        raise ValueError(f"not a design document: kind={data.get('kind')!r}")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {data.get('schema')!r}")
    raw = data["config"]
    precision = Precision.parse(raw["precision"])
    gm, gk, gn = raw["grouping"]
    grouping = AieGrouping(gm, gk, gn, GemmShape.parse(raw["kernel"]), precision)
    config = HardwareConfig(
        name=raw["name"],
        grouping=grouping,
        num_plios=raw["num_plios"],
        plio_split_override=tuple(raw["plio_split"]) if raw["plio_split"] else None,
        dram_ports=DramPorts.parse(raw["dram_ports"]),
    )
    return CharmDesign(
        config=config,
        device=device_by_name(data["device"]),
        kernel_style=KernelStyle.parse(data["kernel_style"]),
        comm_scheme=CommScheme(data["comm_scheme"]),
        pl_double_buffered=data["pl_double_buffered"],
    )


def design_to_json(design: CharmDesign, indent: int = 2) -> str:
    return json.dumps(design_to_dict(design), indent=indent)


def design_from_json(text: str) -> CharmDesign:
    return design_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Estimates (export only)
# ----------------------------------------------------------------------
def estimate_to_dict(estimate: Estimate) -> dict[str, Any]:
    breakdown = estimate.breakdown
    return {
        "schema": SCHEMA_VERSION,
        "kind": "estimate",
        "workload": str(estimate.workload),
        "design": design_to_dict(estimate.design),
        "total_seconds": estimate.total_seconds,
        "throughput_ops": estimate.throughput_ops,
        "efficiency": estimate.efficiency,
        "bottleneck": str(estimate.bottleneck),
        "tile_plan": {
            "multiples": list(estimate.plan.multiples),
            "pl_tile": str(estimate.plan.pl_tile),
            "num_dram_tiles": estimate.plan.num_dram_tiles,
            "tiling_overhead": estimate.plan.traffic().tiling_overhead,
        },
        "breakdown": {
            "load_a_seconds": breakdown.load_a_seconds,
            "load_b_seconds": breakdown.load_b_seconds,
            "aie_seconds": breakdown.aie_seconds,
            "store_c_seconds": breakdown.store_c_seconds,
            "setup_seconds": breakdown.setup_seconds,
            "memory_bound": breakdown.memory_bound,
        },
    }


def estimate_to_json(estimate: Estimate, indent: int = 2) -> str:
    return json.dumps(estimate_to_dict(estimate), indent=indent)
