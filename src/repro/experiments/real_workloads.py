"""Fig. 14: real-world DNN workloads under parameter variations.

The paper takes the Table III shapes and, with the analytical model,
varies (1) the DRAM port setup (2r1w = 20 GB/s vs 4r2w = 34 GB/s),
(2) the AIE kernel size (32^3 vs 64^3 FP32), and (3) the AIE count
(C6 = 384 vs C5 = 256), reporting latency and the binding phase
(hatched bars).
"""

from __future__ import annotations

import dataclasses

from repro.core.analytical_model import AnalyticalModel
from repro.experiments.runner import ExperimentResult, experiment
from repro.hw.dram import CHARM_DEFAULT_PORTS, IMPROVED_PORTS
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.mapping.grouping import AieGrouping
from repro.mapping.tiling import plan_tiling
from repro.workloads.dnn import DNN_WORKLOADS
from repro.workloads.gemm import GemmShape


def _design_variants() -> list[tuple[str, CharmDesign]]:
    """The Fig. 14 axes: baseline C6/32^3/34 GB/s plus one change each."""
    base = CharmDesign(config_by_name("C6"))
    variants: list[tuple[str, CharmDesign]] = [
        ("C6 32^3 20GB/s (2r1w)", base.with_ports(CHARM_DEFAULT_PORTS)),
        ("C6 32^3 34GB/s (4r2w)", base.with_ports(IMPROVED_PORTS)),
        ("C5 32^3 34GB/s (256 AIEs)", CharmDesign(config_by_name("C5"))),
    ]
    # the 64^3 FP32 kernel borrows neighbour memory: a what-if the paper
    # evaluates analytically
    big_kernel = AieGrouping(12, 4, 8, GemmShape.square(64), Precision.FP32)
    big_config = dataclasses.replace(
        config_by_name("C6"), name="C6-64k", grouping=big_kernel
    )
    variants.append(
        ("C6 64^3 34GB/s", CharmDesign(big_config, allow_neighbor_kernels=True))
    )
    return variants


def _estimate(design: CharmDesign, workload: GemmShape):
    """Model estimate; what-if designs whose native tile exceeds the
    usable PL budget (the 64^3 kernel) fall back to the raw PL capacity,
    mirroring the paper's analytical-only treatment."""
    model = AnalyticalModel(design)
    try:
        return model.estimate(workload)
    except ValueError:
        plan = plan_tiling(
            workload,
            design.native_size,
            design.precision,
            device=design.device,
            double_buffered=design.pl_double_buffered,
            budget_bytes=design.device.pl_memory_bytes,
        )
        return model.estimate(workload, plan)


@experiment("fig14")
def fig14_real_workloads() -> ExperimentResult:
    """Latency + bottleneck of Table III workloads under design variants."""
    rows = []
    for variant_name, design in _design_variants():
        for workload in DNN_WORKLOADS:
            estimate = _estimate(design, workload.shape)
            bottleneck = str(estimate.bottleneck)
            rows.append(
                {
                    "workload": workload.workload_id,
                    "variant": variant_name,
                    "ms": round(estimate.total_seconds * 1e3, 2),
                    "bottleneck": bottleneck,
                    "input_load_bound": bottleneck in ("load_a", "load_b"),
                    "tflops": round(estimate.throughput_ops / 1e12, 2),
                }
            )
    return ExperimentResult(
        experiment_id="fig14",
        title="Real-world DNN workloads under kernel/DRAM/AIE variations",
        paper_reference="Fig. 14 / Section V-I",
        rows=rows,
        notes=[
            "B1/V1/L1/L2 are DRAM-input-load bound at 20 GB/s (the paper "
            "attributes the binding stream to the A load; our plans make "
            "the B re-reads the larger term — both are the same hatched "
            "'input load' region of Fig. 14)",
            "L3/L4 are store-C bound (big M*N, small K), matching the paper",
            "raising DRAM bandwidth 20 -> 34 GB/s cuts latency but does not "
            "change L3/L4's primary bottleneck, matching the paper",
        ],
    )
