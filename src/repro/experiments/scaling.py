"""Figs. 9 and 10: strong and weak scaling over the Table II configs."""

from __future__ import annotations

from repro.core.efficiency import array_efficiency
from repro.experiments.runner import ExperimentResult, experiment
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import FP32_CONFIGS, INT8_CONFIGS, HardwareConfig
from repro.sim.hwsim import HwSimulator
from repro.workloads.gemm import GemmShape

STRONG_SCALING_WORKLOAD = GemmShape(4096, 4096, 4096)


def _strong_row(config: HardwareConfig, workload: GemmShape) -> dict:
    design = CharmDesign(config)
    run = HwSimulator(design).run(workload)
    return {
        "configuration": config.name,
        "aies": config.num_aies,
        "seconds": run.total_seconds,
        "ms": round(run.total_seconds * 1e3, 3),
        "tops": round(run.throughput_ops / 1e12, 3),
        "efficiency": round(
            array_efficiency(
                workload, config.precision, run.total_seconds, config.num_aies
            ),
            3,
        ),
        "bottleneck": str(run.bottleneck),
    }


@experiment("fig9")
def fig9_strong_scaling() -> ExperimentResult:
    """Strong scaling: fixed 4096^3 workload, growing AIE counts."""
    panels = {
        "FP32": [_strong_row(c, STRONG_SCALING_WORKLOAD) for c in FP32_CONFIGS],
        "INT8": [_strong_row(c, STRONG_SCALING_WORKLOAD) for c in INT8_CONFIGS],
    }
    return ExperimentResult(
        experiment_id="fig9",
        title=f"Strong scaling, workload {STRONG_SCALING_WORKLOAD}",
        paper_reference="Fig. 9 / Section V-E",
        rows=[],
        panels=panels,
        notes=[
            "latency drops steeply while the configs are compute-bound and "
            "flattens once DRAM binds (memory-bound tail)",
        ],
    )


@experiment("fig10")
def fig10_weak_scaling() -> ExperimentResult:
    """Weak scaling: each config runs its own native size."""
    panels = {}
    for label, configs in (("FP32", FP32_CONFIGS), ("INT8", INT8_CONFIGS)):
        rows = []
        for config in configs:
            design = CharmDesign(config)
            run = HwSimulator(design).run(config.native_size)
            rows.append(
                {
                    "configuration": config.name,
                    "aies": config.num_aies,
                    "native_size": str(config.native_size),
                    "us": round(run.total_seconds * 1e6, 1),
                    "io_bytes": config.native_size.total_io_bytes(
                        config.precision.element_bytes
                    ),
                }
            )
        base = rows[0]["us"]
        for row in rows:
            row["vs_smallest"] = round(row["us"] / base, 2)
        panels[label] = rows
    return ExperimentResult(
        experiment_id="fig10",
        title="Weak scaling: workload = native size per configuration",
        paper_reference="Fig. 10 / Section V-F",
        rows=[],
        panels=panels,
        notes=[
            "execution time rises with configuration size because memory "
            "transactions grow while per-invocation compute stays constant",
        ],
    )
