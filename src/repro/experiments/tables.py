"""Tables I, II and III of the paper, reproduced from the library's data."""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, experiment
from repro.mapping.configs import ALL_CONFIGS
from repro.sim.platforms import PLATFORMS
from repro.workloads.dnn import DNN_WORKLOADS


@experiment("table1")
def table1_platforms() -> ExperimentResult:
    """Table I: Versal execution platforms."""
    rows = [
        {
            "platform": p.name,
            "simulation_target": p.simulation_target,
            "speed": "Fast" if p.fast else "Slow",
            "usecase": p.usecase,
        }
        for p in PLATFORMS
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Versal execution platforms",
        paper_reference="Table I",
        rows=rows,
    )


@experiment("table2")
def table2_configs() -> ExperimentResult:
    """Table II: hardware configurations involving multiple AIEs."""
    rows = [
        {
            "configuration": c.name,
            "precision": str(c.precision).upper(),
            "aies": c.num_aies,
            "native_size": str(c.native_size),
            "plios": c.num_plios,
            "grouping": f"{c.grouping.gm}x{c.grouping.gk}x{c.grouping.gn}",
        }
        for c in ALL_CONFIGS
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Hardware configurations involving multiple AIEs",
        paper_reference="Table II",
        rows=rows,
        notes=[
            "native sizes are derived from the grouping algebra "
            "(gm*Mk x gk*Kk x gn*Nk) and match the published column"
        ],
    )


@experiment("table3")
def table3_workloads() -> ExperimentResult:
    """Table III: selected GEMM workloads from popular DNNs."""
    rows = [
        {
            "workload": w.network,
            "M": w.shape.m,
            "K": w.shape.k,
            "N": w.shape.n,
            "id": w.workload_id,
            "aspect": w.shape.aspect(),
            "gflop": round(w.shape.flops / 1e9, 1),
        }
        for w in DNN_WORKLOADS
    ]
    return ExperimentResult(
        experiment_id="table3",
        title="Selected GEMM workloads from popular DNNs",
        paper_reference="Table III",
        rows=rows,
    )
