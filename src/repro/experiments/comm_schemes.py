"""Fig. 8: AIE-to-AIE communication scheme comparison."""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, experiment
from repro.hw.interconnect import CommScheme, CommTimingModel
from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape

#: The four panels of Fig. 8: (precision, kernel, AIE counts).
PANELS = (
    (Precision.FP32, GemmShape.square(32), (16, 384)),
    (Precision.INT8, GemmShape.square(64), (16, 256)),
)


@experiment("fig8")
def fig8_comm_schemes() -> ExperimentResult:
    """Execution time of AIE-AIE communication schemes vs cascade."""
    model = CommTimingModel()
    panels: dict[str, list[dict]] = {}
    for precision, kernel, aie_counts in PANELS:
        for num_aies in aie_counts:
            rows = []
            for scheme in CommScheme:
                timing = model.chain_timing(scheme, precision, kernel, num_aies)
                rows.append(
                    {
                        "scheme": str(scheme),
                        "normalized_time": (
                            round(timing.overhead_ratio, 3) if timing.feasible else None
                        ),
                        "overhead_pct": (
                            round((timing.overhead_ratio - 1) * 100, 1)
                            if timing.feasible
                            else None
                        ),
                        "feasible": timing.feasible,
                        "source": "calibrated" if timing.calibrated else "mechanistic",
                    }
                )
            panels[f"{precision} {num_aies} AIEs"] = rows
    return ExperimentResult(
        experiment_id="fig8",
        title="AIE-to-AIE communication schemes, normalized to cascade",
        paper_reference="Fig. 8 / Section V-D",
        rows=[],
        panels=panels,
        notes=[
            "cascade has the lowest latency everywhere, as the paper concludes",
            "via-switch far is infeasible at maximum AIE counts (no free "
            "far-away tiles), matching the paper",
            "maximum-AIE rows apply the documented Fig. 8 calibration; "
            "16-AIE rows are fully mechanistic",
        ],
    )
