"""Experiment framework: uniform results and a registry of drivers.

Each driver function reproduces one of the paper's tables or figures and
returns an :class:`ExperimentResult` whose ``rows`` are the data the
artifact plots/tabulates.  The registry maps experiment ids (``fig9``,
``table2``, ...) to drivers so the CLI and the benchmark harness share
one entry point.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.reporting import render_table


@dataclass
class ExperimentResult:
    """Output of one experiment driver."""

    experiment_id: str
    title: str
    paper_reference: str
    rows: list[dict[str, Any]]
    notes: list[str] = field(default_factory=list)
    #: optional named sub-tables (e.g. FP32 vs INT8 panels of one figure)
    panels: dict[str, list[dict[str, Any]]] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"{self.experiment_id}: {self.title}", f"[{self.paper_reference}]"]
        if self.rows:
            parts.append(render_table(self.rows))
        for name, rows in self.panels.items():
            parts.append("")
            parts.append(render_table(rows, title=name))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def column(self, key: str, panel: str | None = None) -> list[Any]:
        rows = self.rows if panel is None else self.panels[panel]
        return [row[key] for row in rows]

    def row_by(self, key: str, value: Any, panel: str | None = None) -> dict[str, Any]:
        rows = self.rows if panel is None else self.panels[panel]
        for row in rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r}")


ExperimentDriver = Callable[..., ExperimentResult]

_REGISTRY: dict[str, ExperimentDriver] = {}


def experiment(experiment_id: str) -> Callable[[ExperimentDriver], ExperimentDriver]:
    """Decorator registering a driver under an experiment id."""

    def register(driver: ExperimentDriver) -> ExperimentDriver:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = driver
        return driver

    return register


def run_experiment(experiment_id: str, jobs: int = 1) -> ExperimentResult:
    """Run one registered driver.

    ``jobs`` is forwarded to drivers that declare a ``jobs`` parameter
    (batch-heavy drivers fan their candidate evaluations out through
    :func:`repro.perf.parallel.parallel_map`); drivers without one run
    unchanged, so the flag is always safe to pass.
    """
    try:
        driver = _REGISTRY[experiment_id.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None
    if "jobs" in inspect.signature(driver).parameters:
        return driver(jobs=jobs)
    return driver()


def available_experiments() -> list[str]:
    return sorted(_REGISTRY)
