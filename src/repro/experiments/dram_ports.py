"""Section IV-C: DRAM bandwidth vs design port count (the 20/34 GB/s plateau)."""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, experiment
from repro.hw.dram import DramModel, DramPorts
from repro.hw.noc import NocModel


@experiment("dram_ports")
def dram_ports_study() -> ExperimentResult:
    """Achieved DRAM bandwidth as HLS read/write ports are added."""
    noc = NocModel()
    rows = []
    for reads, writes in ((1, 1), (2, 1), (3, 2), (4, 2), (6, 3), (8, 4)):
        ports = DramPorts(reads, writes)
        dram = DramModel(ports=ports)
        rows.append(
            {
                "ports": str(ports),
                "total_ports": ports.total,
                "achieved_gb_s": round(dram.total_bandwidth() / 1e9, 1),
                "utilization_pct": round(dram.utilization() * 100, 0),
                "noc_lanes_used": noc.lanes_used(ports.total),
            }
        )
    return ExperimentResult(
        experiment_id="dram_ports",
        title="Achieved DRAM bandwidth vs design port count",
        paper_reference="Section IV-C",
        rows=rows,
        notes=[
            "paper: 2r1w -> 20 GB/s, 4r2w -> 34 GB/s, more ports don't help "
            "(34% of the 102.4 GB/s theoretical)",
            "cause: the Vitis NoC compiler packs ports onto virtual channels "
            "of the same vertical lanes; the assignment is not user-steerable",
        ],
    )
