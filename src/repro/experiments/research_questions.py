"""The paper's research questions, mapped to the experiments that answer
them (Section IV-B's list, made navigable)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentResult, experiment


@dataclass(frozen=True)
class ResearchQuestion:
    """One Section IV-B question with its answering artifacts."""

    question: str
    paper_sections: str
    experiments: tuple[str, ...]
    answer: str


RESEARCH_QUESTIONS: tuple[ResearchQuestion, ...] = (
    ResearchQuestion(
        "How much performance can be achieved vs the theoretical peak "
        "(what's the efficiency)?",
        "V-C",
        ("fig6", "fig7", "fig9"),
        "70-98% at the kernel level (FP32); at the array level the DRAM "
        "wall caps large configs far below peak",
    ),
    ResearchQuestion(
        "How much is the data-transfer overhead (DRAM->PL and PL->AIE) "
        "compared to compute?",
        "V-G",
        ("fig11",),
        "beyond C4 the DRAM-to-PL transfer dominates; exposed PL-AIE "
        "fill repeats once per DRAM tile",
    ),
    ResearchQuestion(
        "How does performance vary with the programming model "
        "(intrinsics vs API)?",
        "V-B",
        ("fig5",),
        "intrinsics win: the API costs 46% for FP32 and 7% for INT8",
    ),
    ResearchQuestion(
        "How does performance scale (weak and strong scaling)?",
        "V-E, V-F",
        ("fig9", "fig10"),
        "strong scaling is near-ideal while compute-bound and flattens "
        "at the memory wall; weak scaling degrades as IO grows",
    ),
    ResearchQuestion(
        "How sensitive is performance to workload parameters "
        "(size, shape)? What about tall/skinny DNN matrices?",
        "V-C, V-E, V-F, V-I",
        ("fig6", "fig7", "fig14"),
        "shape decides the bottleneck: small-K layers are store-bound, "
        "large-K layers input-load bound",
    ),
    ResearchQuestion(
        "How sensitive is performance to architecture parameters "
        "(#AIEs, #PLIOs, PL memory)?",
        "V-E, V-F, V-H",
        ("fig9", "fig13", "ext_sensitivity"),
        "AIEs help until bandwidth binds; PLIOs have diminishing "
        "returns; PL memory buys tiling-overhead reduction",
    ),
    ResearchQuestion(
        "What is the performance impact of different communication "
        "schemes between AIEs?",
        "V-D, V-H",
        ("fig8", "fig13"),
        "cascade is lowest-latency everywhere; via-switch hurts INT8 "
        "3x at small scale; packet switching trades time for PLIOs",
    ),
    ResearchQuestion(
        "What are the maximum compute/memory bounds? Are real workloads "
        "compute- or memory-bound?",
        "V-J",
        ("fig15", "dram_ports"),
        "with tiling overhead every Table III workload is DRAM-bound; "
        "the achieved DRAM bandwidth caps at 34% of theoretical",
    ),
)


@experiment("questions")
def research_question_index() -> ExperimentResult:
    """Navigable index: question -> experiments -> one-line answer."""
    rows = [
        {
            "question": q.question,
            "sections": q.paper_sections,
            "experiments": ", ".join(q.experiments),
            "answer": q.answer,
        }
        for q in RESEARCH_QUESTIONS
    ]
    return ExperimentResult(
        experiment_id="questions",
        title="Research questions and the experiments that answer them",
        paper_reference="Section IV-B",
        rows=rows,
    )
