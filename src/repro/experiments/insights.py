"""The paper's summary-box insights as executable checks.

Each Section V subsection ends in a boxed "Summary on ..." guidance
paragraph.  This module turns every one of them into a predicate
evaluated against the library's models, so `versal-gemm run insights`
audits that the reproduction actually supports the paper's conclusions —
not just its numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.analytical_model import AnalyticalModel
from repro.core.roofline import Roofline
from repro.experiments.runner import ExperimentResult, experiment
from repro.hw.dram import DramModel, DramPorts
from repro.hw.interconnect import CommScheme, CommTimingModel
from repro.hw.specs import VCK5000
from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.mapping.plio_schemes import reference_schemes
from repro.workloads.dnn import workload_by_id
from repro.workloads.gemm import GemmShape


@dataclass(frozen=True)
class Insight:
    """One boxed guidance claim from the paper."""

    insight_id: str
    section: str
    statement: str
    check: Callable[[], tuple[bool, str]]


def _check_intrinsics_vs_api() -> tuple[bool, str]:
    def eff(style, shape, precision):
        return SingleAieGemmKernel(shape, precision, style).efficiency()

    fp32_gap = 1 - eff(KernelStyle.API, GemmShape.square(32), Precision.FP32) / eff(
        KernelStyle.INTRINSIC, GemmShape.square(32), Precision.FP32
    )
    int8_gap = 1 - eff(KernelStyle.API, GemmShape.square(64), Precision.INT8) / eff(
        KernelStyle.INTRINSIC, GemmShape.square(64), Precision.INT8
    )
    passed = fp32_gap > 0.3 and int8_gap < 0.15
    return passed, f"FP32 API loss {fp32_gap:.0%}, INT8 API loss {int8_gap:.0%}"


def _check_kernel_scalability() -> tuple[bool, str]:
    efficient = SingleAieGemmKernel(GemmShape(16, 128, 16), Precision.FP32)
    chosen = SingleAieGemmKernel(GemmShape.square(32), Precision.FP32)
    passed = (
        efficient.efficiency() > chosen.efficiency()
        and not efficient.is_scalable()
        and chosen.is_scalable()
    )
    return passed, (
        f"16x128x16 eff {efficient.efficiency():.2f} (not scalable) vs "
        f"32x32x32 eff {chosen.efficiency():.2f} (scalable)"
    )


def _check_cascade_lowest() -> tuple[bool, str]:
    model = CommTimingModel()
    worst_margin = float("inf")
    for precision, kernel, counts in (
        (Precision.FP32, GemmShape.square(32), (16, 384)),
        (Precision.INT8, GemmShape.square(64), (16, 256)),
    ):
        for count in counts:
            for scheme in CommScheme:
                ratio = model.normalized_to_cascade(scheme, precision, kernel, count)
                if ratio is not None:
                    worst_margin = min(worst_margin, ratio)
    return worst_margin >= 1.0, f"lowest competitor ratio {worst_margin:.3f} (cascade = 1.0)"


def _check_max_aies_not_always_best() -> tuple[bool, str]:
    workload = GemmShape(2048, 2048, 2048)
    c5 = AnalyticalModel(CharmDesign(config_by_name("C5"))).estimate(workload)
    c6 = AnalyticalModel(CharmDesign(config_by_name("C6"))).estimate(workload)
    passed = c6.total_seconds >= c5.total_seconds and c6.breakdown.memory_bound
    return passed, (
        f"C5 (256 AIEs) {c5.total_seconds * 1e3:.2f} ms vs "
        f"C6 (384 AIEs) {c6.total_seconds * 1e3:.2f} ms, C6 memory-bound"
    )


def _check_single_buffering_guidance() -> tuple[bool, str]:
    import dataclasses

    workload = GemmShape(2048, 2048, 2048)
    design = CharmDesign(config_by_name("C6"))
    plan = design.tile_plan(workload)
    model = AnalyticalModel(design)
    level = model.dram_level_times(plan)
    # C6: AIE time comparable to DRAM time -> serialising must hurt
    single_plan = dataclasses.replace(plan, double_buffered=False)
    single = AnalyticalModel(design.with_single_buffering()).estimate(
        workload, single_plan
    )
    double = model.estimate(workload, plan)
    passed = (
        single.total_seconds > double.total_seconds
        and level.aie > 0.3 * level.load_inputs
    )
    return passed, (
        f"C6 AIE/DRAM per-tile ratio {level.aie / level.load_inputs:.2f}; "
        f"single buffering {single.total_seconds / double.total_seconds:.2f}x slower"
    )


def _check_plio_diminishing_returns() -> tuple[bool, str]:
    schemes = reference_schemes(config_by_name("C1"))
    cycles = [s.invocation_cycles() for s in schemes]
    plios = [s.total_plios for s in schemes]
    first_gain = (cycles[0] - cycles[1]) / (plios[1] - plios[0])
    last_gain = (cycles[-2] - cycles[-1]) / (plios[-1] - plios[-2])
    utilization_drops = schemes[-1].array_utilization() < schemes[0].array_utilization()
    passed = first_gain > last_gain and utilization_drops
    return passed, (
        f"cycles saved per added PLIO: {first_gain:.0f} (first step) vs "
        f"{last_gain:.0f} (last step); utilization 100% -> "
        f"{schemes[-1].array_utilization():.0%}"
    )


def _check_tiling_makes_dram_bound() -> tuple[bool, str]:
    roofline = Roofline(Precision.INT8)
    config = config_by_name("C11")
    flipped = []
    for workload_id in ("B1", "V1", "L1", "L2"):
        shape = workload_by_id(workload_id).shape
        ideal = roofline.point(workload_id, shape)
        tiled = roofline.tiled_point(workload_id, shape, config)
        flipped.append(ideal.compute_bound and not tiled.compute_bound)
    return all(flipped), f"{sum(flipped)}/4 compute-bound workloads flip to DRAM-bound"


def _check_dram_plateau() -> tuple[bool, str]:
    few = DramModel(ports=DramPorts(2, 1)).total_bandwidth()
    more = DramModel(ports=DramPorts(4, 2)).total_bandwidth()
    many = DramModel(ports=DramPorts(8, 4)).total_bandwidth()
    passed = more > few and abs(many - more) / more < 0.01
    return passed, f"{few / 1e9:.0f} -> {more / 1e9:.0f} -> {many / 1e9:.0f} GB/s"


def _check_store_bound_shapes() -> tuple[bool, str]:
    design = CharmDesign(config_by_name("C6"))
    model = AnalyticalModel(design)
    bottlenecks = {
        wid: str(model.estimate(workload_by_id(wid).shape).bottleneck)
        for wid in ("L3", "L4")
    }
    passed = all(b == "store_c" for b in bottlenecks.values())
    return passed, f"bottlenecks: {bottlenecks}"


def _check_plio_bw_needs_on_chip_fit() -> tuple[bool, str]:
    roofline = Roofline(Precision.INT8)
    ratio = roofline.plio_bandwidth() / roofline.achieved_dram_bandwidth()
    # exploiting the PLIO slope requires the working set in PL memory;
    # Table III workloads exceed it by an order of magnitude
    biggest = max(
        workload_by_id(w).shape.total_io_bytes(1) for w in ("B1", "L1", "L2")
    )
    passed = ratio > 10 and biggest > VCK5000.pl_memory_bytes
    return passed, (
        f"PLIO/DRAM bandwidth ratio {ratio:.0f}x; largest Table III "
        f"working set {biggest / 1e6:.0f} MB vs "
        f"{VCK5000.pl_memory_bytes / 1e6:.0f} MB PL"
    )


INSIGHTS: tuple[Insight, ...] = (
    Insight(
        "intrinsics-vs-api",
        "V-B",
        "Use intrinsics for FP32; the API is near-par for INT8 only",
        _check_intrinsics_vs_api,
    ),
    Insight(
        "kernel-scalability",
        "V-C",
        "The most efficient kernels borrow neighbour memory and don't "
        "scale; pick slightly less efficient, scalable kernels",
        _check_kernel_scalability,
    ),
    Insight(
        "cascade-lowest-latency",
        "V-D",
        "Cascade connections have the lowest AIE-AIE latency everywhere",
        _check_cascade_lowest,
    ),
    Insight(
        "max-aies-not-always-best",
        "V-G",
        "Using the maximum number of AIEs may not improve performance "
        "once DRAM/PLIO bandwidth binds",
        _check_max_aies_not_always_best,
    ),
    Insight(
        "single-buffering-guidance",
        "V-G",
        "Single buffering is advisable only when DRAM-to-PL time "
        "considerably exceeds AIE compute time",
        _check_single_buffering_guidance,
    ),
    Insight(
        "plio-diminishing-returns",
        "V-H",
        "Adding PLIOs yields diminishing returns and strands AIEs",
        _check_plio_diminishing_returns,
    ),
    Insight(
        "tiling-oi-collapse",
        "V-J",
        "Tiling overhead pushes real workloads into the DRAM-bound "
        "region; the 128 TOPS ceiling is unattainable",
        _check_tiling_makes_dram_bound,
    ),
    Insight(
        "dram-port-plateau",
        "IV-C",
        "DRAM bandwidth plateaus at 34 GB/s regardless of port count",
        _check_dram_plateau,
    ),
    Insight(
        "store-bound-projections",
        "V-I",
        "Small-K DNN layers (L3, L4) are bound by the C store",
        _check_store_bound_shapes,
    ),
    Insight(
        "plio-bw-needs-on-chip",
        "V-J",
        "The PLIO bandwidth advantage is only usable when the "
        "application fits in PL memory",
        _check_plio_bw_needs_on_chip_fit,
    ),
)


@experiment("insights")
def insights_audit() -> ExperimentResult:
    """Evaluate every boxed paper insight against the models."""
    rows = []
    for insight in INSIGHTS:
        passed, detail = insight.check()
        rows.append(
            {
                "insight": insight.insight_id,
                "section": insight.section,
                "holds": passed,
                "evidence": detail,
            }
        )
    return ExperimentResult(
        experiment_id="insights",
        title="Paper summary-box insights, audited against the models",
        paper_reference="Section V summary boxes",
        rows=rows,
    )
