"""Figs. 12/13: PLIO connectivity schemes and their performance/utilisation."""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, experiment
from repro.hw.specs import VCK5000
from repro.mapping.configs import config_by_name
from repro.mapping.plio_schemes import reference_schemes
from repro.perf.parallel import parallel_map
from repro.sim.aiesim import simulate_graph


@experiment("fig13")
def fig13_plio_sensitivity(jobs: int = 1) -> ExperimentResult:
    """GEMM performance sensitivity to PLIO count, 16-AIE designs."""

    def evaluate(scheme):
        report = simulate_graph(scheme, invocations=8)
        return {
            "plios": scheme.total_plios,
            "split_abc": "{}/{}/{}".format(
                scheme.conn_a.num_plios,
                scheme.conn_b.num_plios,
                scheme.conn_c.num_plios,
            ),
            "cycles_per_tile": round(report.per_invocation, 0),
            "exec_us": round(report.seconds() * 1e6, 2),
            "bottleneck": report.bottleneck,
            "max_replicas": scheme.max_replicas(),
            "array_utilization_pct": round(scheme.array_utilization() * 100, 0),
        }

    panels = {}
    for label, config_name in (("FP32 (C1)", "C1"), ("INT8 (C7)", "C7")):
        config = config_by_name(config_name)
        rows = parallel_map(evaluate, reference_schemes(config), jobs=jobs)
        rows.sort(key=lambda r: r["plios"])
        base, best = rows[0]["cycles_per_tile"], rows[-1]["cycles_per_tile"]
        for row in rows:
            row["speedup_vs_3plio"] = round(base / row["cycles_per_tile"], 2)
        panels[label] = rows
    return ExperimentResult(
        experiment_id="fig13",
        title="PLIO sensitivity and achievable AIE-array utilization (16 AIEs)",
        paper_reference="Figs. 12-13 / Section V-H",
        rows=[],
        panels=panels,
        notes=[
            "paper: 3 -> 36 PLIOs improves FP32 performance 4.63x at the "
            "cost of array utilization dropping from 100% to 28%",
            "7 PLIOs (FP32) and 14 PLIOs (INT8) are the balance points "
            "(Fig. 12(b)/(c))",
        ],
    )


@experiment("fig12")
def fig12_reference_schemes() -> ExperimentResult:
    """The four highlighted schemes of Fig. 12 (subset of the Fig. 13 sweep)."""
    config = config_by_name("C1")
    schemes = reference_schemes(config)
    by_plios = {s.total_plios: s for s in schemes}
    highlights = [
        (3, "(a) pure packet switching; the 16th AIE waits 16 time steps"),
        (7, "(b) 2 A + 4 B + 1 C; circuit-broadcast A rows, packet along K"),
        (14, "(c) INT8 counterpart: 8 A + 4 B + 2 C (see the INT8 panel of fig13)"),
        (36, "(d) one PLIO per AIE: full circuit switching, best performance"),
    ]
    rows = []
    int8_schemes = {s.total_plios: s for s in reference_schemes(config_by_name("C7"))}
    for plios, description in highlights:
        scheme = by_plios.get(plios) or int8_schemes.get(plios)
        if scheme is None:
            continue
        report = simulate_graph(scheme, invocations=8)
        rows.append(
            {
                "scheme": description,
                "plios": plios,
                "precision": str(scheme.config.precision),
                "cycles_per_tile": round(report.per_invocation, 0),
                "array_utilization_pct": round(
                    scheme.array_utilization(VCK5000) * 100, 0
                ),
            }
        )
    return ExperimentResult(
        experiment_id="fig12",
        title="Highlighted PLIO connectivity schemes",
        paper_reference="Fig. 12 / Section V-H",
        rows=rows,
    )
