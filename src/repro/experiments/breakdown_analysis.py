"""Fig. 11 and Sections V-A/V-G: breakdowns, model accuracy, buffering."""

from __future__ import annotations

import dataclasses

from repro.core.analytical_model import AnalyticalModel
from repro.experiments.runner import ExperimentResult, experiment
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import ALL_CONFIGS, config_by_name
from repro.sim.hwsim import HwSimulator
from repro.workloads.gemm import GemmShape

BREAKDOWN_WORKLOAD = GemmShape(2048, 2048, 2048)


@experiment("fig11")
def fig11_breakdown() -> ExperimentResult:
    """Execution time + breakdown for 2048^3, model vs simulated HW."""
    rows = []
    for config in ALL_CONFIGS:
        design = CharmDesign(config)
        model = AnalyticalModel(design)
        estimate = model.estimate(BREAKDOWN_WORKLOAD)
        hw = HwSimulator(design).run(BREAKDOWN_WORKLOAD)
        b = estimate.breakdown
        rows.append(
            {
                "configuration": config.name,
                "precision": str(config.precision),
                "model_ms": round(estimate.total_seconds * 1e3, 3),
                "hw_ms": round(hw.total_seconds * 1e3, 3),
                "model_error_pct": round(
                    (estimate.total_seconds - hw.total_seconds) / hw.total_seconds * 100, 1
                ),
                "dram_ms": round(b.dram_seconds * 1e3, 3),
                "aie_ms": round(b.aie_seconds * 1e3, 3),
                "compute_ms": round(b.compute_seconds * 1e3, 3),
                "exposed_plio_ms": round(b.exposed_plio_seconds * 1e3, 3),
                "memory_bound": b.memory_bound,
                "bottleneck": str(estimate.bottleneck),
            }
        )
    return ExperimentResult(
        experiment_id="fig11",
        title=f"Execution breakdown for {BREAKDOWN_WORKLOAD}",
        paper_reference="Fig. 11 / Section V-G",
        rows=rows,
        notes=[
            "the workload turns memory-bound for the large configurations "
            "(right of C4), as the paper observes",
            "model error stays within the paper's +/-5% claim",
        ],
    )


@experiment("model_accuracy")
def model_accuracy() -> ExperimentResult:
    """Section V-A: analytical model vs (simulated) hardware, +/-5%."""
    workloads = [
        GemmShape(1024, 1024, 1024),
        GemmShape(2048, 2048, 2048),
        GemmShape(4096, 4096, 4096),
        GemmShape(8192, 512, 1024),
        GemmShape(512, 8192, 1024),
        GemmShape(1024, 2048, 4096),
    ]
    rows = []
    for config in ALL_CONFIGS:
        design = CharmDesign(config)
        sim = HwSimulator(design)
        for workload in workloads:
            run, error = sim.compare_with_model(workload)
            rows.append(
                {
                    "configuration": config.name,
                    "workload": str(workload),
                    "hw_ms": round(run.total_seconds * 1e3, 3),
                    "error_pct": round(error * 100, 2),
                }
            )
    worst = max(abs(r["error_pct"]) for r in rows)
    return ExperimentResult(
        experiment_id="model_accuracy",
        title="Analytical model accuracy vs simulated hardware",
        paper_reference="Section V-A",
        rows=rows,
        notes=[f"worst-case |error| = {worst:.1f}% (paper: within +/-5%)"],
    )


@experiment("buffering")
def buffering_study() -> ExperimentResult:
    """Section V-G: PL double vs single buffering on C6 (FP32) and C11
    (INT8).

    Two single-buffering variants are reported: *same tiles* keeps the
    double-buffered tile plan and only serialises (the paper's FP32
    experiment behaves this way: 9.95 -> 14.72 ms), while *re-tiled*
    lets the freed BRAM grow the tiles (the paper's INT8 observation
    that single buffering can reduce tiling overhead: 0.92 -> 0.77 ms).
    """
    rows = []
    for name in ("C6", "C11"):
        design = CharmDesign(config_by_name(name))
        plan_db = design.tile_plan(BREAKDOWN_WORKLOAD)
        double = HwSimulator(design).run(BREAKDOWN_WORKLOAD, plan_db)
        single_design = design.with_single_buffering()
        same_plan = dataclasses.replace(plan_db, double_buffered=False)
        single_same = HwSimulator(single_design).run(BREAKDOWN_WORKLOAD, same_plan)
        single_retiled = HwSimulator(single_design).run(BREAKDOWN_WORKLOAD)
        rows.append(
            {
                "configuration": name,
                "precision": str(design.precision),
                "double_ms": round(double.total_seconds * 1e3, 3),
                "single_same_tiles_ms": round(single_same.total_seconds * 1e3, 3),
                "single_retiled_ms": round(single_retiled.total_seconds * 1e3, 3),
                "same_tiles_ratio": round(
                    single_same.total_seconds / double.total_seconds, 2
                ),
                "retiled_ratio": round(
                    single_retiled.total_seconds / double.total_seconds, 2
                ),
            }
        )
    return ExperimentResult(
        experiment_id="buffering",
        title="PL double vs single buffering",
        paper_reference="Section V-G",
        rows=rows,
        notes=[
            "paper: C6 FP32 9.95 -> 14.72 ms (1.48x, matched by the "
            "same-tiles column); C11 INT8 0.92 -> 0.77 ms (0.84x) — our "
            "re-tiled column recovers most but not all of the "
            "serialisation cost because the double-buffered plan is "
            "already traffic-optimal (see EXPERIMENTS.md)",
            "single buffering helps only when DRAM-to-PL time considerably "
            "exceeds AIE compute time (the paper's guidance)",
        ],
    )
