"""Fig. 15: the INT8 roofline with Table III workloads."""

from __future__ import annotations

from repro.core.roofline import Roofline
from repro.experiments.runner import ExperimentResult, experiment
from repro.kernels.precision import Precision
from repro.mapping.configs import config_by_name
from repro.workloads.dnn import DNN_WORKLOADS


@experiment("fig15")
def fig15_roofline() -> ExperimentResult:
    """Roofline ceilings, bandwidth slopes, and workload points."""
    roofline = Roofline(Precision.INT8)
    ceilings = [
        {
            "kind": "ceiling",
            "label": c.label,
            "peak_tops": round(c.peak_ops / 1e12, 2),
            "ridge_oi_dram": round(c.ridge_point(roofline.dram_bandwidth()), 0),
            "ridge_oi_plio": round(c.ridge_point(roofline.plio_bandwidth()), 1),
        }
        for c in roofline.ceilings()
    ]
    points = []
    tiling_config = config_by_name("C11")  # largest INT8 configuration
    for workload in DNN_WORKLOADS:
        ideal = roofline.point(workload.workload_id, workload.shape)
        tiled = roofline.tiled_point(workload.workload_id, workload.shape, tiling_config)
        points.append(
            {
                "workload": workload.workload_id,
                "ideal_oi": round(ideal.operational_intensity, 1),
                "ideal_bound": "compute" if ideal.compute_bound else "dram",
                "ideal_attainable_tops": round(ideal.attainable_ops / 1e12, 1),
                "tiled_oi": round(tiled.operational_intensity, 1),
                "tiled_bound": "compute" if tiled.compute_bound else "dram",
                "tiled_attainable_tops": round(tiled.attainable_ops / 1e12, 1),
            }
        )
    return ExperimentResult(
        experiment_id="fig15",
        title="Roofline (INT8): ceilings per configuration + Table III points",
        paper_reference="Fig. 15 / Section V-J",
        rows=points,
        panels={
            "ceilings": ceilings,
            "bandwidth_lines": [
                {
                    "line": "DRAM (theoretical)",
                    "gb_per_s": round(roofline.dram_bandwidth() / 1e9, 1),
                },
                {
                    "line": "DRAM (achieved, 4r2w)",
                    "gb_per_s": round(roofline.achieved_dram_bandwidth() / 1e9, 1),
                },
                {
                    "line": "PLIO (PL->AIE)",
                    "gb_per_s": round(roofline.plio_bandwidth() / 1e9, 1),
                },
            ],
        },
        notes=[
            "red dots: B1/V1/L1/L2 compute-bound, L3/L4 DRAM-bound (paper)",
            "green circles (with tiling overhead): every workload becomes "
            "DRAM-bound, so the 128 TOPS ceiling is unattainable (paper)",
            "the PLIO bandwidth line sits far above DRAM: it can only be "
            "exploited when the working set fits in PL memory",
        ],
    )
