"""Single-AIE kernel experiments: Figs. 5, 6 and 7.

Fig. 5 compares intrinsic vs API kernels at the scalable kernel sizes
(32x32x32 FP32, 64x64x64 INT8), including the hardware execution time
the paper prints in pink boxes.  Figs. 6/7 sweep kernel shape and size,
marking kernels that borrow neighbour memory (the dotted bars).
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, experiment
from repro.hw.specs import VCK5000
from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle, intrinsic_name
from repro.mapping.configs import HardwareConfig
from repro.mapping.grouping import AieGrouping
from repro.mapping.charm import CharmDesign
from repro.sim.aiesim import simulate_kernel
from repro.sim.hwsim import HwSimulator
from repro.workloads.gemm import GemmShape

#: The sweep shapes of Figs. 6/7: squares plus fat/skinny/tall kernels.
FP32_SWEEP = [
    GemmShape(16, 16, 16),
    GemmShape(32, 32, 32),
    GemmShape(64, 64, 64),
    GemmShape(16, 128, 16),
    GemmShape(32, 128, 32),
    GemmShape(64, 32, 16),
    GemmShape(16, 32, 64),
    GemmShape(128, 16, 32),
]
INT8_SWEEP = [
    GemmShape(32, 32, 32),
    GemmShape(64, 64, 64),
    GemmShape(128, 128, 128),
    GemmShape(32, 256, 32),
    GemmShape(64, 128, 64),
    GemmShape(128, 64, 32),
    GemmShape(32, 64, 128),
    GemmShape(256, 32, 64),
]


def single_aie_config(precision: Precision) -> HardwareConfig:
    """A one-AIE design (3 PLIOs: A, B and C) for Fig. 5's HW runs."""
    kernel = {
        Precision.FP32: GemmShape.square(32),
        Precision.INT8: GemmShape.square(64),
        Precision.INT16: GemmShape.square(64),
    }[precision]
    grouping = AieGrouping(1, 1, 1, kernel, precision)
    return HardwareConfig(f"single-{precision}", grouping, num_plios=3)


def _kernel_row(kernel: SingleAieGemmKernel, device=VCK5000) -> dict:
    # enough invocations that the pipeline fill/drain does not dilute the
    # steady-state efficiency the paper reports
    report = simulate_kernel(kernel, invocations=64)
    timing = kernel.timing()
    return {
        "shape": str(kernel.shape),
        "precision": str(kernel.precision),
        "style": str(kernel.style),
        "efficiency": round(report.efficiency, 3),
        "compute_cycles": round(timing.compute, 1),
        "read_cycles": round(max(timing.read_a, timing.read_b), 1),
        "write_cycles": round(timing.write_c, 1),
        "overlap_cycles": round(timing.overlap_cycles, 1),
        "bound": timing.bound,
        "needs_neighbor_memory": kernel.needs_neighbor_memory(),
        "aiesim_us": round(device.cycles_to_seconds(report.per_invocation) * 1e6, 2),
    }


@experiment("fig5")
def fig5_api_vs_intrinsic() -> ExperimentResult:
    """Fig. 5: intrinsic vs API single-AIE kernels."""
    rows = []
    for precision in (Precision.FP32, Precision.INT8):
        config = single_aie_config(precision)
        shape = config.kernel
        for style in (KernelStyle.INTRINSIC, KernelStyle.API):
            kernel = SingleAieGemmKernel(shape, precision, style)
            row = _kernel_row(kernel)
            row["kernel_api"] = (
                intrinsic_name(precision) if style is KernelStyle.INTRINSIC else "aie::mmul"
            )
            design = CharmDesign(config, kernel_style=style)
            hw = HwSimulator(design).run(shape)
            row["hw_us"] = round(hw.total_seconds * 1e6, 1)
            rows.append(row)

    def perf_drop(precision: Precision) -> float:
        intr = next(
            r for r in rows if r["precision"] == str(precision) and r["style"] == "intrinsic"
        )
        api = next(
            r for r in rows if r["precision"] == str(precision) and r["style"] == "api"
        )
        return 1.0 - api["efficiency"] / intr["efficiency"]

    return ExperimentResult(
        experiment_id="fig5",
        title="Single-AIE kernels: intrinsic vs API",
        paper_reference="Fig. 5 / Section V-B",
        rows=rows,
        notes=[
            f"API performance reduction: FP32 {perf_drop(Precision.FP32):.0%} "
            f"(paper: 46%), INT8 {perf_drop(Precision.INT8):.0%} (paper: 7%)",
            "hw_us exceeds aiesim_us because of DRAM transfer time and the "
            "100 us AIE setup, as on the real board",
        ],
    )


def _sweep_result(
    experiment_id: str, precision: Precision, shapes: list[GemmShape], figure: str
) -> ExperimentResult:
    rows = []
    for shape in shapes:
        kernel = SingleAieGemmKernel(shape, precision)
        if not kernel.is_feasible():
            continue
        rows.append(_kernel_row(kernel))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"Single-AIE kernel efficiency sweep ({precision})",
        paper_reference=figure,
        rows=rows,
        notes=[
            "needs_neighbor_memory marks the dotted bars (not scalable "
            "across the array)",
        ],
    )


@experiment("fig6")
def fig6_single_aie_fp32() -> ExperimentResult:
    """Fig. 6: FP32 single-AIE efficiency and breakdown across shapes."""
    return _sweep_result("fig6", Precision.FP32, FP32_SWEEP, "Fig. 6 / Section V-C")


@experiment("fig7")
def fig7_single_aie_int8() -> ExperimentResult:
    """Fig. 7: INT8 single-AIE efficiency and breakdown across shapes."""
    return _sweep_result("fig7", Precision.INT8, INT8_SWEEP, "Fig. 7 / Section V-C")
