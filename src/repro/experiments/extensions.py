"""Extension experiments beyond the paper's figures.

These cover the paper's explicit suggestions and future work:

* ``ext_fusion`` — post-op fusion on spare AIEs (Section V-G's summary
  recommendation), as an ablation against PL/DRAM round trips.
* ``ext_fragmentation`` — tile-size vs padding trade-off for DNN
  workloads (Section IV-A's declared future work).
* ``ext_sensitivity`` — single-parameter architecture sensitivity
  curves (the research-question machinery generalised).
* ``ext_transformer`` — end-to-end transformer forward-pass estimates
  built from the Table III networks.
* ``ext_energy`` — energy/efficiency comparison across configurations
  (the paper's energy-efficiency motivation, quantified).
"""

from __future__ import annotations

from repro.core.e2e import ModelEstimator
from repro.core.energy import EnergyModel
from repro.core.fusion import FusionPlanner, PostOp
from repro.core.multi_acc import AcceleratorPartition, GemmJob, MultiAccScheduler
from repro.core.sensitivity import SensitivityAnalysis
from repro.experiments.runner import ExperimentResult, experiment
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import ALL_CONFIGS, config_by_name
from repro.mapping.fragmentation import FragmentationAnalysis
from repro.workloads.dnn import DNN_WORKLOADS
from repro.workloads.transformer import MODEL_ZOO
from repro.workloads.gemm import GemmShape

_WORKLOAD = GemmShape(2048, 2048, 2048)


@experiment("ext_fusion")
def ext_fusion() -> ExperimentResult:
    """Ablation: post-ops fused onto spare AIEs vs a separate pass."""
    planner = FusionPlanner(CharmDesign(config_by_name("C5")))
    rows = []
    for post_op in PostOp:
        estimate = planner.estimate(post_op, _WORKLOAD)
        rows.append(
            {
                "post_op": str(post_op),
                "spare_aies_used": estimate.spare_aies,
                "unfused_ms": round(estimate.unfused_total * 1e3, 3),
                "fused_ms": round(estimate.fused_total * 1e3, 3),
                "speedup": round(estimate.speedup, 3),
                "dram_bytes_avoided_mb": round(estimate.avoided_dram_bytes / 1e6, 1),
            }
        )
    return ExperimentResult(
        experiment_id="ext_fusion",
        title=f"Post-op fusion on spare AIEs, {_WORKLOAD} on C5",
        paper_reference="Section V-G summary (suggested optimisation)",
        rows=rows,
        notes=[
            "fusing avoids re-reading and re-writing C through DRAM, as the "
            "paper recommends; light post-ops hide entirely under the GEMM"
        ],
    )


@experiment("ext_fragmentation")
def ext_fragmentation() -> ExperimentResult:
    """Tile-size vs padding trade-off for the Table III DNN workloads."""
    analysis = FragmentationAnalysis(Precision.FP32)
    rows = []
    for workload in DNN_WORKLOADS:
        for report in analysis.sweep(workload.shape):
            rows.append(
                {
                    "workload": workload.workload_id,
                    "configuration": report.config.name,
                    "native": str(report.config.native_size),
                    "waste_pct": round(report.waste_fraction * 100, 2),
                    "ms": round(report.seconds * 1e3, 2),
                    "useful_tflops": round(report.useful_throughput_ops / 1e12, 3),
                }
            )
    return ExperimentResult(
        experiment_id="ext_fragmentation",
        title="Padding/fragmentation across configurations (paper future work)",
        paper_reference="Section IV-A (future work)",
        rows=rows,
        notes=[
            "Table III shapes are large, so padding stays small on every "
            "configuration; awkward (non-multiple) small shapes instead "
            "favour smaller native sizes — see mapping/fragmentation.py"
        ],
    )


@experiment("ext_sensitivity")
def ext_sensitivity() -> ExperimentResult:
    """Architecture-parameter sensitivity of C6 on 2048^3."""
    analysis = SensitivityAnalysis(CharmDesign(config_by_name("C6")), _WORKLOAD)
    rows = []
    for axis, points in analysis.summary().items():
        for point in points:
            rows.append(
                {
                    "parameter": axis,
                    "value": point.value,
                    "ms": round(point.seconds * 1e3, 3),
                    "bottleneck": point.bottleneck,
                }
            )
    return ExperimentResult(
        experiment_id="ext_sensitivity",
        title=f"Architecture sensitivity, {_WORKLOAD} on C6",
        paper_reference="Section V-B research questions (arch. parameters)",
        rows=rows,
    )


@experiment("ext_transformer")
def ext_transformer() -> ExperimentResult:
    """End-to-end transformer forward passes on the Table II configs."""
    estimator = ModelEstimator(Precision.FP32)
    rows = []
    for model in MODEL_ZOO:
        estimate = estimator.estimate(model, tokens=2048)
        dominant = estimate.dominant_layer()
        rows.append(
            {
                "model": model.name,
                "tokens": estimate.tokens,
                "gflop": round(estimate.total_flops / 1e9, 0),
                "ms": round(estimate.total_seconds * 1e3, 1),
                "tflops": round(estimate.throughput_ops / 1e12, 2),
                "dominant_layer": dominant.gemm.name,
                "dominant_config": dominant.config_name,
            }
        )
    return ExperimentResult(
        experiment_id="ext_transformer",
        title="End-to-end transformer forward passes (FP32, per-layer config)",
        paper_reference="Section V-I extended",
        rows=rows,
    )


@experiment("ext_multi_acc")
def ext_multi_acc() -> ExperimentResult:
    """Composed heterogeneous accelerators vs one serial device (CHARM)."""
    from repro.workloads.transformer import BERT_LARGE

    partition = AcceleratorPartition(
        [config_by_name("C5"), config_by_name("C3"), config_by_name("C1")]
    )
    jobs = [
        GemmJob(g.name, g.shape, count=g.count)
        for g in BERT_LARGE.forward_gemms(tokens=2048)
    ]
    schedule = MultiAccScheduler(partition).schedule(jobs)
    rows = [
        {
            "job": a.job.name,
            "shape": str(a.job.shape),
            "count": a.job.count,
            "accelerator": a.accelerator,
            "total_ms": round(a.total_seconds * 1e3, 2),
        }
        for a in schedule.assignments
    ]
    utilization = schedule.utilization()
    return ExperimentResult(
        experiment_id="ext_multi_acc",
        title="BERT-large forward pass on a composed C5+C3+C1 partition",
        paper_reference="CHARM composition (Section II / IV-A)",
        rows=rows,
        panels={
            "summary": [
                {
                    "makespan_ms": round(schedule.makespan * 1e3, 2),
                    "serial_ms": round(schedule.serial_seconds * 1e3, 2),
                    "speedup_vs_serial": round(schedule.speedup_vs_serial, 2),
                    "dram_sharing_factor": round(schedule.dram_sharing_factor, 2),
                    **{
                        f"util_{name}": round(value, 2)
                        for name, value in utilization.items()
                    },
                }
            ]
        },
        notes=[
            "composing differently-shaped accelerators lets layer GEMMs run "
            "concurrently; the DRAM read pool is the shared resource that "
            "limits the composition (the paper's bandwidth wall)"
        ],
    )


@experiment("ext_consistency")
def ext_consistency() -> ExperimentResult:
    """Three-way agreement: emulator vs closed-form model vs aiesimulator.

    The same kernel is timed three independent ways — the issue-accurate
    emulator executes the vector schedule, the closed-form model
    computes it, and the aiesimulator pipeline converges to it in steady
    state.  Disagreement means a modeling bug; this experiment is the
    cross-validation harness.
    """
    from repro.kernels.emulator import AieKernelEmulator
    from repro.kernels.gemm_kernel import SingleAieGemmKernel
    from repro.kernels.kernel_timing import compute_cycles
    from repro.sim.aiesim import simulate_kernel
    from repro.workloads.gemm import GemmShape

    cases = [
        (GemmShape(16, 16, 16), Precision.FP32),
        (GemmShape(32, 32, 32), Precision.FP32),
        (GemmShape(16, 128, 16), Precision.FP32),
        (GemmShape(32, 32, 32), Precision.INT8),
        (GemmShape(64, 64, 64), Precision.INT8),
        (GemmShape(32, 64, 32), Precision.INT16),
    ]
    rows = []
    for shape, precision in cases:
        kernel = SingleAieGemmKernel(shape, precision)
        emulated, reference = AieKernelEmulator(kernel).run_random(seed=0)
        model = compute_cycles(shape, precision)
        report = simulate_kernel(kernel, invocations=256)
        steady = report.per_invocation
        timing_total = kernel.timing().total
        rows.append(
            {
                "kernel": str(shape),
                "precision": str(precision),
                "emulator_cycles": round(emulated.cycles, 1),
                "model_cycles": round(model, 1),
                "aiesim_steady_cycles": round(steady, 1),
                "emulator_vs_model_pct": round((emulated.cycles / model - 1) * 100, 2),
                "aiesim_vs_timing_pct": round((steady / timing_total - 1) * 100, 2),
                "numerics_match": emulated.matches(reference),
            }
        )
    return ExperimentResult(
        experiment_id="ext_consistency",
        title="Cross-validation: emulator vs closed-form vs aiesimulator",
        paper_reference="internal consistency harness",
        rows=rows,
        notes=[
            "the aiesim steady state tracks max(compute, streams), not "
            "compute alone, so its column compares against the kernel "
            "timing total",
        ],
    )


@experiment("ext_serving")
def ext_serving() -> ExperimentResult:
    """Tail latency vs offered load for a served GEMM mix."""
    from repro.core.multi_acc import AcceleratorPartition
    from repro.sim.serving import ServingSimulator, generate_trace
    from repro.workloads.gemm import GemmShape

    partition = AcceleratorPartition(
        [config_by_name("C5"), config_by_name("C3"), config_by_name("C1")]
    )
    simulator = ServingSimulator(partition)
    shapes = [GemmShape(1024, 1024, 1024), GemmShape(2048, 1024, 1024),
              GemmShape(512, 2048, 512)]
    rows = []
    for mean_interarrival in (20e-3, 5e-3, 2e-3, 1e-3, 0.5e-3):
        trace = generate_trace(shapes, num_requests=120, mean_interarrival=mean_interarrival, seed=11)
        report = simulator.run(trace)
        p50, p95, p99 = report.latency_percentiles([50, 95, 99])
        rows.append(
            {
                "offered_rps": round(1.0 / mean_interarrival, 0),
                "achieved_rps": round(report.throughput_rps, 0),
                "p50_ms": round(p50 * 1e3, 2),
                "p95_ms": round(p95 * 1e3, 2),
                "p99_ms": round(p99 * 1e3, 2),
                "busiest_accelerator": max(
                    report.accelerator_load(), key=report.accelerator_load().get
                ),
            }
        )
    return ExperimentResult(
        experiment_id="ext_serving",
        title="Serving a GEMM request mix on a C5+C3+C1 partition",
        paper_reference="deployment extension (repro.sim.serving)",
        rows=rows,
        notes=[
            "past the partition's capacity the queue grows and tail latency "
            "explodes — the knee locates the board's serviceable load",
        ],
    )


@experiment("ext_spmm")
def ext_spmm() -> ExperimentResult:
    """Sparse-vs-dense execution crossover for SpMM (H-GCN's territory)."""
    from repro.workloads.gemm import GemmShape
    from repro.workloads.sparse import SpmmEstimator, SpmmWorkload

    design = CharmDesign(config_by_name("C5"))
    estimator = SpmmEstimator(design)
    shape = GemmShape(4096, 4096, 512)
    rows = []
    for density in (0.01, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0):
        comparison = estimator.compare(SpmmWorkload(shape, density))
        rows.append(
            {
                "density": density,
                "dense_ms": round(comparison.dense_seconds * 1e3, 3),
                "sparse_ms": round(comparison.sparse_seconds * 1e3, 3),
                "winner": "sparse" if comparison.sparse_wins else "dense",
                "sparse_speedup": round(comparison.speedup, 2),
            }
        )
    crossover = estimator.crossover_density(shape)
    return ExperimentResult(
        experiment_id="ext_spmm",
        title=f"SpMM on C5: sparse vs dense execution, A = {shape}",
        paper_reference="SpMM extension (H-GCN [18])",
        rows=rows,
        notes=[
            f"crossover density ~{crossover:.2f}: below it the gather "
            "kernel's nnz-proportional compute beats the dense datapath "
            "despite its derated vector efficiency",
        ],
    )


@experiment("ext_decode")
def ext_decode() -> ExperimentResult:
    """LLM decode (M = batch) vs prefill: padding waste and throughput."""
    from repro.core.analytical_model import AnalyticalModel
    from repro.mapping.fragmentation import FragmentationAnalysis
    from repro.workloads.transformer import LLAMA2_13B

    analysis = FragmentationAnalysis(Precision.FP32)
    rows = []
    for batch in (1, 8, 32, 128, 512):
        mlp_up = next(
            g for g in LLAMA2_13B.decode_gemms(batch) if g.name == "mlp_up"
        )
        best = analysis.best(mlp_up.shape)
        estimate = AnalyticalModel(CharmDesign(best.config)).estimate(mlp_up.shape)
        rows.append(
            {
                "batch": batch,
                "gemm": str(mlp_up.shape),
                "best_config": best.config.name,
                "padding_waste_pct": round(best.waste_fraction * 100, 1),
                "us_per_layer_gemm": round(estimate.total_seconds * 1e6, 1),
                "useful_tflops": round(best.useful_throughput_ops / 1e12, 3),
            }
        )
    return ExperimentResult(
        experiment_id="ext_decode",
        title="LLM decode-phase GEMMs (Llama2-13B mlp_up) vs batch size",
        paper_reference="fragmentation future work, sharpest case",
        rows=rows,
        notes=[
            "single-request decode (batch 1) pads M up to the native size, "
            "wasting almost the whole array; batching restores utilisation — "
            "the serving-system batching imperative, derived from the "
            "architecture model",
        ],
    )


@experiment("ext_faults")
def ext_faults() -> ExperimentResult:
    """Graceful degradation: estimates under injected hardware faults."""
    from repro.core.analytical_model import AnalyticalModel
    from repro.hw.faults import (
        derate_clock,
        disable_aie_columns,
        disable_dram_channels,
        surviving_configs,
    )
    from repro.hw.specs import VCK5000

    scenarios = [
        ("healthy", VCK5000),
        ("2 AIE columns fused off", disable_aie_columns(VCK5000, 2)),
        ("5 AIE columns fused off", disable_aie_columns(VCK5000, 5)),
        ("1 DDR channel down", disable_dram_channels(VCK5000, 1)),
        ("2 DDR channels down", disable_dram_channels(VCK5000, 2)),
        ("20% thermal clock derate", derate_clock(VCK5000, 0.8)),
    ]
    rows = []
    for label, device in scenarios:
        survivors = surviving_configs(device)
        record: dict = {
            "scenario": label,
            "surviving_configs": len(survivors),
            "largest_survivor": survivors[-1] if survivors else "-",
        }
        for name in ("C3", "C5"):
            if name in survivors:
                design = CharmDesign(config_by_name(name), device=device)
                ms = AnalyticalModel(design).estimate(_WORKLOAD).total_seconds * 1e3
                record[f"{name.lower()}_ms"] = round(ms, 3)
            else:
                record[f"{name.lower()}_ms"] = None
        rows.append(record)
    return ExperimentResult(
        experiment_id="ext_faults",
        title=f"Fault injection: {_WORKLOAD} under degraded devices",
        paper_reference="robustness extension (repro.hw.faults)",
        rows=rows,
        notes=[
            "compute-bound configs suffer from clock derating; memory-bound "
            "configs suffer from DDR-channel loss; column fuses kill the "
            "largest configurations first",
        ],
    )


@experiment("ext_chaos")
def ext_chaos() -> ExperimentResult:
    """Serving through injected runtime faults: availability vs damage."""
    from repro.core.multi_acc import AcceleratorPartition
    from repro.sim.chaos import FaultPolicy, FaultSchedule, chaos_schedule
    from repro.sim.serving import ServingSimulator, generate_trace
    from repro.workloads.gemm import GemmShape

    partition = AcceleratorPartition(
        [config_by_name("C5"), config_by_name("C3"), config_by_name("C1")]
    )
    shapes = [GemmShape(1024, 1024, 1024), GemmShape(512, 2048, 512)]
    trace = generate_trace(shapes, num_requests=150, mean_interarrival=600e-6, seed=7)
    horizon = 150 * 600e-6
    scenarios = [
        ("fault-free", None),
        ("C5 down 20% of the run", FaultSchedule.down("C5", 0.1 * horizon, 0.3 * horizon)),
        (
            "C5 down + C3 3x slower",
            FaultSchedule.down("C5", 0.1 * horizon, 0.3 * horizon)
            + FaultSchedule.degraded("C3", 0.05 * horizon, 0.5 * horizon, factor=3.0),
        ),
        ("seeded chaos", chaos_schedule(["C5", "C3", "C1"], horizon, seed=5,
                                        device=partition.device)),
    ]
    policy = FaultPolicy(max_retries=3)
    rows = []
    for label, faults in scenarios:
        simulator = ServingSimulator(partition)
        report = simulator.run(trace, faults=faults, fault_policy=policy)
        p99 = report.latency_percentile(99)
        rows.append(
            {
                "scenario": label,
                "completed": len(report.completed),
                "shed": report.shed_count,
                "kills": report.kills,
                "retries": report.total_retries,
                "p99_ms": round(p99 * 1e3, 2),
                "request_availability_pct": round(
                    report.request_availability * 100, 1
                ),
            }
        )
    return ExperimentResult(
        experiment_id="ext_chaos",
        title="Runtime fault injection while serving (C5+C3+C1 partition)",
        paper_reference="robustness extension (repro.sim.chaos)",
        rows=rows,
        notes=[
            "outages kill in-flight executions, which retry with backoff and "
            "fail over to the survivors; tail latency absorbs the damage "
            "until the retry budget sheds load — the graceful-degradation "
            "curve a deployed board needs",
        ],
    )


@experiment("ext_conv")
def ext_conv() -> ExperimentResult:
    """CNN layers (im2col-lowered) through the same analysis pipeline."""
    from repro.core.analytical_model import AnalyticalModel
    from repro.workloads.conv import RESNET50_LAYERS

    design = CharmDesign(config_by_name("C5"))
    model = AnalyticalModel(design)
    rows = []
    for layer in RESNET50_LAYERS:
        shape = layer.im2col_shape(batch=8)
        estimate = model.estimate(shape)
        rows.append(
            {
                "layer": layer.name,
                "gemm": str(shape),
                "aspect": shape.aspect(),
                "im2col_expansion": round(layer.im2col_expansion(), 1),
                "ms": round(estimate.total_seconds * 1e3, 3),
                "bottleneck": str(estimate.bottleneck),
            }
        )
    return ExperimentResult(
        experiment_id="ext_conv",
        title="ResNet-50-style conv layers (im2col) on C5, batch 8",
        paper_reference="CNN extension (CHARM's DNN suite, Perryman et al.)",
        rows=rows,
        notes=[
            "im2col GEMMs are tall; 1x1 convolutions lower with no data "
            "expansion, 3x3 convolutions amplify input reads ~9x",
        ],
    )


@experiment("ext_energy")
def ext_energy() -> ExperimentResult:
    """Energy and efficiency of 2048^3 across every configuration."""
    rows = []
    for config in ALL_CONFIGS:
        energy = EnergyModel(CharmDesign(config)).estimate(_WORKLOAD)
        rows.append(
            {
                "configuration": config.name,
                "precision": str(config.precision),
                "ms": round(energy.seconds * 1e3, 3),
                "joules": round(energy.total_joules, 4),
                "avg_watts": round(energy.average_power_watts, 1),
                "gflops_per_watt": round(energy.gflops_per_watt, 1),
                "dram_energy_pct": round(energy.fractions()["dram"] * 100, 1),
                "static_energy_pct": round(energy.fractions()["static"] * 100, 1),
            }
        )
    return ExperimentResult(
        experiment_id="ext_energy",
        title=f"Energy model, {_WORKLOAD} across configurations",
        paper_reference="Section I motivation (energy efficiency)",
        rows=rows,
        notes=[
            "INT8 configurations deliver far more ops/J; DRAM traffic and "
            "static time dominate the memory-bound designs' energy"
        ],
    )
