"""Experiment drivers: one per table/figure of the paper.

Importing this package registers every driver with the runner registry;
use :func:`repro.experiments.run_experiment` (or the CLI) to execute one.
"""

from repro.experiments.runner import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)

# importing the driver modules registers them
from repro.experiments import tables  # noqa: F401
from repro.experiments import single_aie  # noqa: F401
from repro.experiments import comm_schemes  # noqa: F401
from repro.experiments import scaling  # noqa: F401
from repro.experiments import breakdown_analysis  # noqa: F401
from repro.experiments import plio_study  # noqa: F401
from repro.experiments import real_workloads  # noqa: F401
from repro.experiments import roofline_analysis  # noqa: F401
from repro.experiments import dram_ports  # noqa: F401
from repro.experiments import insights  # noqa: F401
from repro.experiments import extensions  # noqa: F401
from repro.experiments import research_questions  # noqa: F401

__all__ = ["ExperimentResult", "available_experiments", "run_experiment"]
