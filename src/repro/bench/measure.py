"""Composable measurement wrappers around one benchmark repeat.

A probe brackets each repeat and contributes metrics to its sample:

* :class:`TimerProbe` — wall seconds (always on);
* :class:`StatsProbe` — the :data:`repro.perf.metrics.GLOBAL_STATS`
  delta attributed to the repeat (model evaluations, cache behaviour);
* :class:`SpanRollupProbe` — enables :data:`repro.obs.spans.GLOBAL_TRACER`
  for the repeat and rolls recorded span durations up by span name
  (opt-in: tracing costs throughput, see ``BENCH_obs.json``).

Probes only *add* metrics; they never touch what the experiment itself
reported, so the ``noise=None`` byte-identity contract is unaffected.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.spans import GLOBAL_TRACER
from repro.perf.metrics import GLOBAL_STATS


class Probe:
    """One measurement wrapper; subclasses bracket a repeat."""

    def start(self) -> None:
        """Called immediately before the repeat runs."""

    def finish(self, metrics: dict[str, float]) -> None:
        """Called after the repeat; adds this probe's metrics."""


class TimerProbe(Probe):
    """Wall-clock seconds for the repeat (``wall_seconds``)."""

    def __init__(self) -> None:
        self._started = 0.0

    def start(self) -> None:
        self._started = time.perf_counter()

    def finish(self, metrics: dict[str, float]) -> None:
        metrics["wall_seconds"] = time.perf_counter() - self._started


class StatsProbe(Probe):
    """GLOBAL_STATS delta: evaluations and cache traffic per repeat."""

    def __init__(self) -> None:
        self._before = None

    def start(self) -> None:
        self._before = GLOBAL_STATS.snapshot()

    def finish(self, metrics: dict[str, float]) -> None:
        delta = GLOBAL_STATS.snapshot().delta_since(self._before)
        metrics["stats_evaluations"] = float(delta.evaluations)
        metrics["stats_cache_hits"] = float(delta.cache_hits)
        metrics["stats_cache_misses"] = float(delta.cache_misses)


class SpanRollupProbe(Probe):
    """Per-span-name duration rollup from the global tracer.

    Enables the tracer for the repeat (clearing the buffer), then sums
    recorded span durations by name into ``span_<name>_seconds``
    metrics plus a ``span_count`` total.  Opt-in: an enabled tracer is
    not free, so wall-clock metrics from the same repeat reflect the
    traced run.
    """

    def __init__(self, top: int = 8):
        if top < 1:
            raise ValueError("need at least one span bucket")
        self.top = top
        self._was_enabled = False

    def start(self) -> None:
        self._was_enabled = GLOBAL_TRACER.enabled
        GLOBAL_TRACER.enable(clear=True)

    def finish(self, metrics: dict[str, float]) -> None:
        spans = GLOBAL_TRACER.drain()
        if not self._was_enabled:
            GLOBAL_TRACER.disable()
        totals: dict[str, float] = {}
        for recorded in spans:
            totals[recorded.name] = totals.get(recorded.name, 0.0) + recorded.duration
        metrics["span_count"] = float(len(spans))
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        for name, seconds in ranked[: self.top]:
            metrics[f"span_{name.replace('.', '_')}_seconds"] = seconds


def default_probes(trace_rollup: bool = False) -> list[Probe]:
    """The standard probe stack: timer + stats (+ span rollup)."""
    probes: list[Probe] = [TimerProbe(), StatsProbe()]
    if trace_rollup:
        probes.append(SpanRollupProbe())
    return probes


def run_probed(run, probes: list[Probe]) -> dict[str, Any]:
    """Run ``run()`` under ``probes``; experiment metrics win name clashes."""
    for probe in probes:
        probe.start()
    result = run()
    measured: dict[str, float] = {}
    # reverse order: the innermost bracket (last started) closes first
    for probe in reversed(probes):
        probe.finish(measured)
    measured.update(result)
    return measured
