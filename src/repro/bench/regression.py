"""Declarative regression gates with a tolerance policy.

A :class:`Gate` names one metric and how to judge it:

* ``floor`` — the metric must not drop below a recorded floor (the
  CI speedup floors); the floor is read from the baseline entry's
  ``floors`` map when present, else from the gate itself;
* ``ceiling`` — the metric must not exceed a bound (error bounds,
  overhead limits);
* ``flag`` — the metric must be truthy (byte-identity contracts);
* ``slo`` — the metric is an SLO verdict: either a plain boolean or a
  dict carrying ``ok`` (and optionally ``alerts``, whose count lands
  in the failure message); the gate fails when the SLO was breached;
* ``baseline`` — the metric is compared against the value recorded in
  a prior ``BENCH_*.json`` entry under a relative tolerance, with a
  direction (``lower``/``higher`` is better) deciding which side is a
  regression and which an improvement.

Each gate resolves to a :class:`Verdict` with one of the statuses
``improvement`` / ``pass`` / ``within_tolerance`` / ``regression`` /
``missing_baseline`` / ``corrupt_baseline``; ``regression`` and
``corrupt_baseline`` fail (``missing_baseline`` only when the gate
requires a baseline).  ``exit_code`` maps verdicts onto the CLI
contract: non-zero exactly when a gate failed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.bench.runner import BenchResult
from repro.bench.trajectory import load_trajectory

EXIT_OK = 0
EXIT_REGRESSION = 1

_KINDS = ("floor", "ceiling", "flag", "slo", "baseline")
_DIRECTIONS = ("lower", "higher")
_FAILING = ("regression", "corrupt_baseline")


class BaselineError(ValueError):
    """A baseline trajectory exists but cannot be used."""


@dataclass(frozen=True)
class Gate:
    """One declarative check on one metric (see module docstring)."""

    metric: str
    kind: str
    #: floor/ceiling bound (overridden by a baseline-recorded floor)
    value: float | None = None
    #: summary statistic compared for harness results
    aggregate: str = "mean"
    #: for ``baseline`` gates: which direction is better
    direction: str = "lower"
    #: relative tolerance band around the baseline value
    tolerance: float = 0.05
    #: dotted path into the baseline entry (defaults to ``metric``)
    baseline_metric: str | None = None
    #: dotted path into the entry; gate disarms when falsy
    when: str | None = None
    #: human-readable failure text (a generic one is derived if unset)
    label: str | None = None
    #: fail (rather than report) when the baseline is missing
    require_baseline: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"gate kind must be one of {_KINDS}, got {self.kind!r}")
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"gate direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )
        if self.kind in ("floor", "ceiling") and self.value is None:
            raise ValueError(f"{self.kind} gate on {self.metric!r} needs a value")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")


@dataclass(frozen=True)
class Verdict:
    """The outcome of evaluating one gate against one run."""

    metric: str
    kind: str
    status: str
    observed: float | None = None
    reference: float | None = None
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in _FAILING

    @property
    def message(self) -> str:
        body = self.detail or (
            f"{self.metric}: observed {self.observed!r} vs "
            f"reference {self.reference!r}"
        )
        return f"[{self.status}] {body}"


def load_baseline(path: Path | str) -> dict | None:
    """The last entry of a BENCH trajectory (None when the file is absent).

    Raises :class:`BaselineError` when the file exists but is corrupt
    (invalid JSON, not a list, or an empty/non-dict entry) — a corrupt
    baseline must fail loudly, never pass silently.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        trajectory = load_trajectory(path)
    except SystemExit as error:
        raise BaselineError(str(error)) from None
    if not trajectory or not isinstance(trajectory[-1], dict):
        raise BaselineError(f"{path} holds no usable baseline entry")
    return trajectory[-1]


def resolve_path(entry: dict | None, dotted: str) -> Any:
    """Walk a dotted path through nested dicts (None when absent)."""
    node: Any = entry
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _expand(entry: dict, dotted: str) -> list[tuple[str, Any]]:
    """Resolve a dotted path, expanding one ``*`` over dict values."""
    if "*" not in dotted:
        return [(dotted, resolve_path(entry, dotted))]
    prefix, _, suffix = dotted.partition(".*")
    parent = resolve_path(entry, prefix)
    if not isinstance(parent, dict):
        return [(dotted, None)]
    expanded = []
    for key in sorted(parent):
        child_path = f"{prefix}.{key}" + suffix
        expanded.append((child_path, resolve_path(entry, child_path)))
    return expanded


def _judge_bound(gate: Gate, path: str, observed: Any, floor_value: float) -> Verdict:
    if observed is None:
        return Verdict(
            metric=path, kind=gate.kind, status="regression",
            detail=gate.label or f"{path} is missing from the run entry",
        )
    observed = float(observed)
    ok = observed >= floor_value if gate.kind == "floor" else observed <= floor_value
    relation = "below the floor" if gate.kind == "floor" else "above the ceiling"
    return Verdict(
        metric=path,
        kind=gate.kind,
        status="pass" if ok else "regression",
        observed=observed,
        reference=floor_value,
        detail="" if ok else (
            gate.label or f"{path} = {observed:g} is {relation} {floor_value:g}"
        ),
    )


def _judge_flag(gate: Gate, path: str, observed: Any) -> Verdict:
    ok = bool(observed)
    return Verdict(
        metric=path,
        kind="flag",
        status="pass" if ok else "regression",
        observed=None if observed is None else float(bool(observed)),
        detail="" if ok else (gate.label or f"{path} contract does not hold"),
    )


def _judge_slo(gate: Gate, path: str, observed: Any) -> Verdict:
    if observed is None:
        return Verdict(
            metric=path, kind="slo", status="regression",
            detail=gate.label or f"{path} is missing from the run entry",
        )
    if isinstance(observed, dict):
        ok = bool(observed.get("ok"))
        alerts = observed.get("alerts") or ()
        tail = f" ({len(alerts)} burn-rate alert(s) fired)" if alerts else ""
    else:
        ok = bool(observed)
        tail = ""
    return Verdict(
        metric=path,
        kind="slo",
        status="pass" if ok else "regression",
        observed=float(ok),
        detail="" if ok else (gate.label or f"{path}: SLO breached{tail}"),
    )


def _judge_baseline(gate: Gate, path: str, observed: Any, baseline: dict | None) -> Verdict:
    if observed is None:
        return Verdict(
            metric=path, kind="baseline", status="regression",
            detail=gate.label or f"{path} is missing from the run entry",
        )
    observed = float(observed)
    reference = resolve_path(baseline, gate.baseline_metric or path)
    if baseline is None or reference is None:
        status = "missing_baseline"
        if gate.require_baseline:
            status = "regression"
        return Verdict(
            metric=path, kind="baseline", status=status, observed=observed,
            detail=f"{path}: no recorded baseline value to compare against",
        )
    reference = float(reference)
    if reference == 0.0:
        worse = observed > 0 if gate.direction == "lower" else observed < 0
        status = "regression" if worse else "pass"
    else:
        ratio = observed / reference
        if gate.direction == "lower":
            better, worse = ratio < 1.0, ratio > 1.0 + gate.tolerance
            improved = ratio < 1.0 - gate.tolerance
        else:
            better, worse = ratio > 1.0, ratio < 1.0 - gate.tolerance
            improved = ratio > 1.0 + gate.tolerance
        if worse:
            status = "regression"
        elif improved:
            status = "improvement"
        elif better:
            status = "pass"
        else:
            status = "within_tolerance"
    return Verdict(
        metric=path,
        kind="baseline",
        status=status,
        observed=observed,
        reference=reference,
        detail="" if status != "regression" else (
            gate.label
            or (
                f"{path} = {observed:g} regressed beyond {gate.tolerance:.0%} "
                f"of the recorded baseline {reference:g}"
            )
        ),
    )


def _recorded_floor(gate: Gate, baseline: dict | None) -> float:
    """A baseline-recorded floor overrides the gate's declared value."""
    recorded = resolve_path(baseline, f"floors.{gate.metric}")
    return float(recorded) if recorded is not None else float(gate.value)


def check_entry(
    entry: dict,
    gates: Sequence[Gate],
    baseline: dict | None = None,
) -> list[Verdict]:
    """Evaluate gates against a plain benchmark entry (dotted paths)."""
    verdicts: list[Verdict] = []
    for gate in gates:
        if gate.when is not None and not resolve_path(entry, gate.when):
            continue
        for path, observed in _expand(entry, gate.metric):
            if gate.kind == "flag":
                verdicts.append(_judge_flag(gate, path, observed))
            elif gate.kind == "slo":
                verdicts.append(_judge_slo(gate, path, observed))
            elif gate.kind == "baseline":
                verdicts.append(_judge_baseline(gate, path, observed, baseline))
            else:
                verdicts.append(
                    _judge_bound(gate, path, observed, _recorded_floor(gate, baseline))
                )
    return verdicts


def check_result(
    result: BenchResult,
    gates: Sequence[Gate],
    baseline: dict | None = None,
) -> list[Verdict]:
    """Evaluate gates against a harness result's metric summaries.

    The observed value is the gate's ``aggregate`` over the repeat
    distribution (``mean`` by default; wall-clock floors usually gate
    ``max`` — best-of-N — to shrug off scheduler noise).
    """
    verdicts: list[Verdict] = []
    for gate in gates:
        summary = result.summaries.get(gate.metric)
        observed = None if summary is None else summary.value(gate.aggregate)
        if gate.kind == "flag":
            # a flag over repeats holds only when every repeat held
            flag = None if summary is None else summary.value("min")
            verdicts.append(_judge_flag(gate, gate.metric, flag))
        elif gate.kind == "slo":
            # like a flag: the SLO held only when every repeat held it
            held = None if summary is None else summary.value("min")
            verdicts.append(_judge_slo(gate, gate.metric, held))
        elif gate.kind == "baseline":
            verdicts.append(_judge_baseline(gate, gate.metric, observed, baseline))
        else:
            verdicts.append(
                _judge_bound(
                    gate, gate.metric, observed, _recorded_floor(gate, baseline)
                )
            )
    return verdicts


def failure_messages(verdicts: Sequence[Verdict]) -> list[str]:
    """The messages of failing verdicts (the old ``check()`` contract)."""
    return [verdict.message for verdict in verdicts if verdict.failed]


def exit_code(verdicts: Sequence[Verdict]) -> int:
    """0 when every gate holds, 1 on any regression/corrupt baseline."""
    return EXIT_REGRESSION if any(v.failed for v in verdicts) else EXIT_OK
