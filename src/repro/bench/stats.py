"""Summary statistics and confidence intervals for repeated-run metrics.

Two interval constructions per metric, both dependency-free:

* a **Student-t interval** on the mean, using an exact critical-value
  table (the classic df rows at the 90/95/99% two-sided levels, with
  harmonic interpolation in ``1/df`` between tabulated rows — the same
  scheme printed tables prescribe);
* a **seeded percentile bootstrap** of the mean, resampling through
  :func:`repro.sim.streaming.splitmix_uniforms` so the interval is a
  pure function of ``(samples, seed)`` — reruns and ``--jobs`` fan-out
  cannot perturb it.

Degenerate inputs follow the obvious limits: one sample or zero
variance collapses both intervals onto the point estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.sim.streaming import derive_seed, splitmix_uniforms

#: two-sided critical values t_{df, 1-alpha/2} for the supported
#: confidence levels; the ``inf`` row is the normal quantile
_T_TABLE: dict[float, dict[int, float]] = {
    0.90: {
        1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015,
        6: 1.943, 7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812,
        11: 1.796, 12: 1.782, 13: 1.771, 14: 1.761, 15: 1.753,
        16: 1.746, 17: 1.740, 18: 1.734, 19: 1.729, 20: 1.725,
        21: 1.721, 22: 1.717, 23: 1.714, 24: 1.711, 25: 1.708,
        26: 1.706, 27: 1.703, 28: 1.701, 29: 1.699, 30: 1.697,
        40: 1.684, 60: 1.671, 120: 1.658,
    },
    0.95: {
        1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
        6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
        11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
        16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
        21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
        26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
        40: 2.021, 60: 2.000, 120: 1.980,
    },
    0.99: {
        1: 63.657, 2: 9.925, 3: 5.841, 4: 4.604, 5: 4.032,
        6: 3.707, 7: 3.499, 8: 3.355, 9: 3.250, 10: 3.169,
        11: 3.106, 12: 3.055, 13: 3.012, 14: 2.977, 15: 2.947,
        16: 2.921, 17: 2.898, 18: 2.878, 19: 2.861, 20: 2.845,
        21: 2.831, 22: 2.819, 23: 2.807, 24: 2.797, 25: 2.787,
        26: 2.779, 27: 2.771, 28: 2.763, 29: 2.756, 30: 2.750,
        40: 2.704, 60: 2.660, 120: 2.617,
    },
}
_Z_INF = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}

CONFIDENCE_LEVELS = tuple(sorted(_T_TABLE))


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom."""
    if confidence not in _T_TABLE:
        raise ValueError(
            f"confidence must be one of {CONFIDENCE_LEVELS}, got {confidence}"
        )
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    table = _T_TABLE[confidence]
    if df in table:
        return table[df]
    if df > 120:
        return _Z_INF[confidence]
    # harmonic interpolation in 1/df between the bracketing table rows
    rows = sorted(table)
    lo = max(row for row in rows if row < df)
    hi = min(row for row in rows if row > df)
    weight = (1.0 / lo - 1.0 / df) / (1.0 / lo - 1.0 / hi)
    return table[lo] + weight * (table[hi] - table[lo])


def bootstrap_interval(
    samples: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> tuple[float, float]:
    """Seeded percentile-bootstrap interval for the mean of ``samples``.

    Resample ``r`` draws its indices from
    ``splitmix_uniforms(derive_seed(seed, r), arange(n))`` — a pure
    function of ``(seed, r, n)``, so the interval never depends on
    evaluation order or parallelism.
    """
    values = np.asarray(list(samples), dtype=np.float64)
    n = values.size
    if n == 0:
        raise ValueError("need at least one sample")
    if resamples < 1:
        raise ValueError("need at least one resample")
    if n == 1 or float(np.ptp(values)) == 0.0:
        point = float(values[0])
        return point, point
    positions = np.arange(n, dtype=np.int64)
    means = np.empty(resamples, dtype=np.float64)
    for r in range(resamples):
        draws = splitmix_uniforms(derive_seed(seed, r), positions)
        indices = np.minimum((draws * n).astype(np.int64), n - 1)
        means[r] = values[indices].mean()
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


@dataclass(frozen=True)
class MetricSummary:
    """Distribution summary of one metric across repeats."""

    n: int
    mean: float
    median: float
    std: float
    min: float
    max: float
    #: Student-t interval on the mean
    ci_low: float
    ci_high: float
    #: seeded percentile-bootstrap interval on the mean
    boot_low: float
    boot_high: float
    confidence: float

    def value(self, aggregate: str) -> float:
        """Resolve an aggregate name (``mean``/``median``/``min``/``max``)."""
        try:
            return float(getattr(self, aggregate))
        except AttributeError:
            raise ValueError(
                f"unknown aggregate {aggregate!r}; expected one of "
                "mean, median, min, max"
            ) from None

    def as_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "mean": self.mean,
            "median": self.median,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "boot_low": self.boot_low,
            "boot_high": self.boot_high,
            "confidence": self.confidence,
        }


def summarize(
    samples: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> MetricSummary:
    """Mean/median/CI summary of ``samples`` (t-interval + bootstrap)."""
    values = np.asarray(list(samples), dtype=np.float64)
    n = values.size
    if n == 0:
        raise ValueError("need at least one sample")
    mean = float(values.mean())
    if n > 1:
        std = float(values.std(ddof=1))
        half = t_critical(n - 1, confidence) * std / math.sqrt(n)
    else:
        std = 0.0
        half = 0.0
    boot_low, boot_high = bootstrap_interval(
        values, confidence=confidence, resamples=resamples, seed=seed
    )
    return MetricSummary(
        n=n,
        mean=mean,
        median=float(np.median(values)),
        std=std,
        min=float(values.min()),
        max=float(values.max()),
        ci_low=mean - half,
        ci_high=mean + half,
        boot_low=boot_low,
        boot_high=boot_high,
        confidence=confidence,
    )
