"""The ``versal-gemm bench --smoke`` specs: CI's statistical gate.

Five seeded repeats of the eval-throughput and serving measurements,
summarized with confidence intervals and judged by declarative gates
against the committed ``BENCH_eval.json`` / ``BENCH_serving.json``
baselines:

* the serving spec pins the committed scenario (the BENCH_serving
  request mix, partition, offered load, and trace seed 7 on the
  vectorized engine), so its simulated ``p50``/``p99`` are
  machine-independent constants — any drift beyond the tolerance is a
  real behaviour change, and an injected slowdown (``--noise``) trips
  the detector deterministically;
* the eval spec measures DSE engine throughput (wall-clock), so its
  gates are the recorded floors (best-of-N against scheduler noise)
  plus a generous baseline band on the vectorized speedup.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.experiments import EvalThroughputExperiment, ServingExperiment
from repro.bench.noise import NoiseModel
from repro.bench.regression import (
    BaselineError,
    Gate,
    Verdict,
    check_result,
    exit_code,
    load_baseline,
)
from repro.bench.runner import run_bench, write_csv, write_json

SMOKE_REPEATS = 5
#: relative band around the deterministic simulated p50/p99 baselines
SERVING_TOLERANCE = 0.05
#: recorded wall-clock floors for the smoke eval spec (best-of-N)
EVAL_PARALLEL_FLOOR = 2.0
EVAL_VECTORIZED_FLOOR = 6.0
#: the vectorized speedup may sit well under the committed full-size
#: run's ratio on a small CI candidate set — regression only below
#: (1 - tolerance) of the recorded value
EVAL_BASELINE_TOLERANCE = 0.75


def serving_smoke_experiment(num_requests: int = 1_000_000) -> ServingExperiment:
    """The committed BENCH_serving scenario, trace pinned to seed 7."""
    return ServingExperiment(
        num_requests=num_requests,
        dispatch="vectorized",
        streaming=True,
        vary_trace=False,
    )


def serving_baseline_gates(tolerance: float = SERVING_TOLERANCE) -> list[Gate]:
    """Gates comparing a serving result to a BENCH_serving.json entry."""
    return [
        Gate(
            metric="p50", kind="baseline", direction="lower",
            tolerance=tolerance, aggregate="median",
            baseline_metric="modes.vectorized.p50", require_baseline=True,
        ),
        Gate(
            metric="p99", kind="baseline", direction="lower",
            tolerance=tolerance, aggregate="median",
            baseline_metric="modes.vectorized.p99", require_baseline=True,
        ),
        Gate(metric="completed_fraction", kind="floor", value=1.0, aggregate="min"),
    ]


def eval_smoke_experiment() -> EvalThroughputExperiment:
    return EvalThroughputExperiment(max_aies=48, inner_repeats=3, jobs=2)


def eval_smoke_gates() -> list[Gate]:
    """Recorded floors + a baseline band for the eval-throughput spec."""
    return [
        Gate(metric="rankings_identical", kind="flag",
             label="serial, parallel, and vectorized rankings differ"),
        Gate(metric="speedup_cached_parallel", kind="floor",
             value=EVAL_PARALLEL_FLOOR, aggregate="max"),
        Gate(metric="speedup_vectorized", kind="floor",
             value=EVAL_VECTORIZED_FLOOR, aggregate="max"),
        Gate(metric="speedup_vectorized", kind="baseline", direction="higher",
             tolerance=EVAL_BASELINE_TOLERANCE, aggregate="max"),
    ]


def _print_verdicts(name: str, verdicts: list[Verdict]) -> None:
    for verdict in verdicts:
        line = (
            f"{name}: [{verdict.status}] {verdict.metric}"
            + (f" = {verdict.observed:g}" if verdict.observed is not None else "")
            + (f" (ref {verdict.reference:g})" if verdict.reference is not None else "")
        )
        print(line, file=sys.stderr if verdict.failed else sys.stdout)


def run_smoke(
    out_dir: Path | str = ".",
    repeats: int = SMOKE_REPEATS,
    seed: int = 7,
    noise: list[NoiseModel] | None = None,
    serving_baseline: Path | str = "BENCH_serving.json",
    eval_baseline: Path | str = "BENCH_eval.json",
    serving_requests: int = 1_000_000,
) -> int:
    """Run both smoke specs, write artifacts, return the exit code.

    ``noise`` exists for slowdown-injection drills: with noise active
    the simulated serving percentiles inflate and the baseline gates
    must report a regression (that path is itself CI-tested).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    verdicts: list[Verdict] = []

    try:
        serving_base = load_baseline(serving_baseline)
        eval_base = load_baseline(eval_baseline)
    except BaselineError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1

    serving = run_bench(
        serving_smoke_experiment(serving_requests),
        repeats=repeats, seed=seed, noise=noise,
    )
    write_csv(serving, out_dir / "bench_smoke_serving.csv")
    write_json(serving, out_dir / "bench_smoke_serving.json")
    p50, wall = serving.metric("p50"), serving.metric("wall_seconds")
    print(
        f"serving: {repeats} repeats  p50 {p50.median:.4f}s  "
        f"wall {wall.mean:.3f}s [{wall.ci_low:.3f}, {wall.ci_high:.3f}] "
        f"@ {serving.confidence:.0%}"
    )
    serving_verdicts = check_result(
        serving, serving_baseline_gates(), serving_base
    )
    _print_verdicts("serving", serving_verdicts)
    verdicts.extend(serving_verdicts)

    # the eval spec is wall-clock only; injected noise does not apply
    evaluation = run_bench(eval_smoke_experiment(), repeats=repeats, seed=seed)
    write_csv(evaluation, out_dir / "bench_smoke_eval.csv")
    write_json(evaluation, out_dir / "bench_smoke_eval.json")
    speedup = evaluation.metric("speedup_vectorized")
    print(
        f"eval: {repeats} repeats  vectorized speedup mean {speedup.mean:.2f}x "
        f"[{speedup.ci_low:.2f}, {speedup.ci_high:.2f}] max {speedup.max:.2f}x"
    )
    eval_verdicts = check_result(evaluation, eval_smoke_gates(), eval_base)
    _print_verdicts("eval", eval_verdicts)
    verdicts.extend(eval_verdicts)

    code = exit_code(verdicts)
    print(f"bench --smoke: {'FAIL' if code else 'ok'} "
          f"({sum(v.failed for v in verdicts)} failing gates)")
    return code
