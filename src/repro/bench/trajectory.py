"""Shared BENCH_*.json trajectory I/O.

One implementation of the append/load pair every benchmark script used
to carry its own copy of: a trajectory file is a JSON list of run
entries, appended to in place, with a loud error (never silent
truncation) when the existing file is not a valid list.
"""

from __future__ import annotations

import json
from pathlib import Path


class TrajectoryError(SystemExit):
    """A trajectory file exists but cannot be extended."""


def load_trajectory(path: Path | str) -> list[dict]:
    """The entries of a trajectory file ([] when it does not exist)."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        trajectory = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise TrajectoryError(
            f"{path} exists but is not valid JSON ({error}); "
            "move it aside to start a fresh trajectory"
        ) from None
    if not isinstance(trajectory, list):
        raise TrajectoryError(f"{path} is not a JSON list trajectory")
    return trajectory


def append_trajectory(entry: dict, output: Path | str) -> None:
    """Append one run to a benchmark's JSON trajectory file."""
    output = Path(output)
    trajectory = load_trajectory(output)
    trajectory.append(entry)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")
