"""Statistical repeated-run benchmarking for every experiment kind.

The paper's measured figures are single-shot numbers; real Versal and
NPU measurements vary run to run.  This package turns any experiment —
an analytical-model estimate, a serving trace, a load sweep, a pipeline
replay — into an N-repeat seeded experiment with pluggable noise
models, per-metric confidence intervals, and a regression detector that
compares new distributions against the committed ``BENCH_*.json``
trajectories.  Exposed on the CLI as ``versal-gemm bench`` (see
``docs/benchmarking.md``).

Determinism contract: every random draw — noise factors, bootstrap
resamples, per-repeat trace seeds — derives from the experiment seed
through :func:`repro.sim.streaming.derive_seed` /
:func:`~repro.sim.streaming.splitmix_uniforms` over *stable* index
grids, never from evaluation order.  Same seed therefore means
byte-identical sample streams regardless of ``--jobs``, ``--shards``,
or dispatch-engine choice, and ``noise=None`` runs are byte-identical
to the un-harnessed paths.
"""

from repro.bench.experiments import (
    EstimateExperiment,
    EvalThroughputExperiment,
    Experiment,
    LoadSweepExperiment,
    PipelineExperiment,
    ServingExperiment,
)
from repro.bench.measure import SpanRollupProbe, StatsProbe, TimerProbe, default_probes
from repro.bench.noise import (
    ClockVariabilityNoise,
    DramJitterNoise,
    NoiseModel,
    ThermalDeratingNoise,
    parse_noise_spec,
)
from repro.bench.regression import (
    EXIT_REGRESSION,
    BaselineError,
    Gate,
    Verdict,
    check_entry,
    check_result,
    exit_code,
    failure_messages,
    load_baseline,
)
from repro.bench.runner import BenchResult, run_bench, write_csv, write_json
from repro.bench.stats import MetricSummary, bootstrap_interval, summarize, t_critical
from repro.bench.trajectory import append_trajectory, load_trajectory

__all__ = [
    "BaselineError",
    "BenchResult",
    "ClockVariabilityNoise",
    "DramJitterNoise",
    "EXIT_REGRESSION",
    "EstimateExperiment",
    "EvalThroughputExperiment",
    "Experiment",
    "Gate",
    "LoadSweepExperiment",
    "MetricSummary",
    "NoiseModel",
    "PipelineExperiment",
    "ServingExperiment",
    "SpanRollupProbe",
    "StatsProbe",
    "ThermalDeratingNoise",
    "TimerProbe",
    "Verdict",
    "append_trajectory",
    "bootstrap_interval",
    "check_entry",
    "check_result",
    "default_probes",
    "exit_code",
    "failure_messages",
    "load_baseline",
    "load_trajectory",
    "parse_noise_spec",
    "run_bench",
    "summarize",
    "t_critical",
    "write_csv",
    "write_json",
]
