"""Canonical benchmark scenarios shared by benchmarks/ and the harness.

The serving/eval/obs benchmark scripts and the ``versal-gemm bench``
smoke specs measure the same workloads against the same committed
``BENCH_*.json`` baselines; this module is the single home for the
scenario constants and setup helpers they used to copy-paste —
baseline comparability requires every consumer to agree on them
byte for byte.
"""

from __future__ import annotations

import json

from repro.core.multi_acc import AcceleratorPartition
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape

#: the BENCH_serving.json scenario: request mix, partition, and load
SERVING_SHAPES = (
    GemmShape(1024, 1024, 1024),
    GemmShape(512, 512, 512),
    GemmShape(2048, 1024, 512),
    GemmShape(1024, 2048, 1024),
)
SERVING_CONFIGS = ("C5", "C3")
MEAN_INTERARRIVAL = 0.5e-3
SERVING_TRACE_SEED = 7
QUANTILE_ERROR = 0.01

#: the BENCH_obs.json scenario (three-shape mix, same partition)
OBS_SHAPES = (
    GemmShape(1024, 1024, 1024),
    GemmShape(512, 512, 512),
    GemmShape(2048, 1024, 512),
)

#: the BENCH_eval.json scenario: the DSE throughput workload
EVAL_WORKLOAD = GemmShape(1024, 1024, 1024)


def build_partition(configs=SERVING_CONFIGS) -> AcceleratorPartition:
    """The named-config partition every serving benchmark dispatches over."""
    return AcceleratorPartition([config_by_name(name) for name in configs])


def dispatch_bytes(report) -> bytes:
    """Serialize dispatch decisions for byte-exact engine comparison."""
    rows = [
        (c.accelerator, repr(c.start), repr(c.finish)) for c in report.completed
    ]
    return json.dumps(rows).encode()


def ranking_bytes(points) -> bytes:
    """Serialize a DSE ranking for byte-exact comparison (full float repr)."""
    rows = [
        {
            "config_grouping": repr(point.config.grouping),
            "num_plios": point.config.num_plios,
            "dram_ports": str(point.config.dram_ports),
            "seconds": repr(point.seconds),
        }
        for point in points
    ]
    return json.dumps(rows, sort_keys=True).encode()
