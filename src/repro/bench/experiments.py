"""Experiment kinds the repeated-run harness can drive.

Every experiment implements the same tiny protocol: :meth:`prepare`
resolves shared state once (partitions, prewarmed service tables),
then :meth:`run_repeat` runs one seeded repeat under a list of noise
models and returns its metrics.  All randomness — per-repeat trace
seeds, noise factors — derives from the repeat seed via
:func:`repro.sim.streaming.derive_seed` on fixed lanes, so repeats are
reproducible independently of execution order, ``--jobs`` fan-out,
``--shards``, or engine choice.

Noise routing per kind:

* ``serving`` / ``sweep`` — service-time factors applied through
  :meth:`repro.sim.serving.ServingSimulator.perturbed` (the perturbed
  cache flows into every dispatch engine and into sharded-cluster
  worker payloads byte-identically);
* ``estimate`` — clock variability re-runs the analytical model on a
  :func:`repro.hw.faults.derate_clock`-derated device; DRAM/thermal
  models contribute a multiplicative slowdown on the modeled total;
* ``pipeline`` — one uniform stage factor via
  :meth:`repro.sim.engine.PipelineSimulator.derated`;
* ``eval`` — a pure wall-clock measurement (DSE engine throughput);
  noise models do not apply and are rejected loudly.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.bench.noise import (
    NoiseModel,
    combined_clock_fraction,
    combined_service_factors,
    combined_stage_factor,
)
from repro.bench.scenarios import (
    EVAL_WORKLOAD,
    MEAN_INTERARRIVAL,
    QUANTILE_ERROR,
    SERVING_CONFIGS,
    SERVING_SHAPES,
    SERVING_TRACE_SEED,
    build_partition,
    ranking_bytes,
)
from repro.sim.streaming import derive_seed, generate_trace_soa
from repro.workloads.gemm import GemmShape

#: derive_seed lanes, fixed so adding a consumer never shifts another
_TRACE_LANE = 0
_SWEEP_LANE = 1


class Experiment:
    """One benchmarkable experiment kind (see module docstring)."""

    kind = "abstract"

    def params(self) -> dict[str, Any]:
        """JSON-serializable parameters, recorded into result entries."""
        raise NotImplementedError

    def prepare(self) -> None:
        """Resolve shared state once before any repeat runs."""

    def run_repeat(
        self, repeat_seed: int, noise: list[NoiseModel] | None
    ) -> dict[str, float]:
        """One seeded repeat; returns this repeat's metric sample."""
        raise NotImplementedError


def _report_metrics(report, wall_seconds: float, num_requests: int) -> dict[str, float]:
    p50, p99 = report.latency_percentiles([50, 99])
    completed = report.count if hasattr(report, "count") else len(report.completed)
    metrics = {
        "p50": p50,
        "p99": p99,
        "mean_latency": report.mean_latency(),
        "throughput_rps": report.throughput_rps,
        "completed_requests": float(completed),
        "completed_fraction": completed / num_requests,
        "wall_rps": num_requests / wall_seconds if wall_seconds > 0 else 0.0,
    }
    summary = report.fault_summary()
    if summary.get("windows"):
        metrics["shed_requests"] = float(summary.get("shed", 0))
        metrics["fault_retries"] = float(summary.get("retries", 0))
    return metrics


class ServingExperiment(Experiment):
    """N repeats of one serving-trace simulation."""

    kind = "serving"

    def __init__(
        self,
        shapes: Sequence[GemmShape] = SERVING_SHAPES,
        configs: Sequence[str] = SERVING_CONFIGS,
        num_requests: int = 100_000,
        mean_interarrival: float = MEAN_INTERARRIVAL,
        dispatch: str = "auto",
        streaming: bool = True,
        quantile_error: float = QUANTILE_ERROR,
        shards: int = 1,
        start_method: str | None = None,
        faults=None,
        fault_policy=None,
        vary_trace: bool = True,
        trace_seed: int = SERVING_TRACE_SEED,
    ):
        self.shapes = tuple(shapes)
        self.configs = tuple(configs)
        self.num_requests = num_requests
        self.mean_interarrival = mean_interarrival
        self.dispatch = dispatch
        self.streaming = streaming
        self.quantile_error = quantile_error
        self.shards = shards
        self.start_method = start_method
        self.faults = faults
        self.fault_policy = fault_policy
        #: False pins every repeat to ``trace_seed`` — simulated metrics
        #: become constants (baseline-comparable) and repeats measure
        #: wall-clock variability only
        self.vary_trace = vary_trace
        self.trace_seed = trace_seed
        self._simulator = None
        self._names: tuple[str, ...] = ()

    def params(self) -> dict[str, Any]:
        return {
            "shapes": [str(shape) for shape in self.shapes],
            "configs": list(self.configs),
            "requests": self.num_requests,
            "mean_interarrival": self.mean_interarrival,
            "dispatch": self.dispatch,
            "streaming": self.streaming,
            "quantile_error": self.quantile_error,
            "shards": self.shards,
            "faulted": self.faults is not None and not self.faults.is_empty,
            "vary_trace": self.vary_trace,
            "trace_seed": self.trace_seed,
        }

    def prepare(self) -> None:
        from repro.sim.serving import ServingSimulator

        partition = build_partition(self.configs)
        self._simulator = ServingSimulator(partition)
        self._simulator.prewarm(self.shapes)
        self._names = tuple(partition.designs)

    def _perturbed(self, repeat_seed: int, noise: list[NoiseModel] | None):
        """The repeat's simulator: base, or a noise-perturbed copy."""
        factors = combined_service_factors(
            noise, repeat_seed, len(self._names), len(self.shapes)
        )
        if factors is None:
            return self._simulator
        table = {
            (name, shape): factors[i, j]
            for i, name in enumerate(self._names)
            for j, shape in enumerate(self.shapes)
        }
        return self._simulator.perturbed(lambda name, shape: table[(name, shape)])

    def run_repeat(
        self, repeat_seed: int, noise: list[NoiseModel] | None
    ) -> dict[str, float]:
        if self._simulator is None:
            self.prepare()
        trace_seed = (
            derive_seed(repeat_seed, _TRACE_LANE)
            if self.vary_trace
            else self.trace_seed
        )
        simulator = self._perturbed(repeat_seed, noise)
        started = time.perf_counter()
        if self.shards > 1:
            from repro.sim.cluster_serving import serve_sharded

            fleet = serve_sharded(
                simulator,
                self.shapes,
                self.num_requests,
                self.mean_interarrival,
                shards=self.shards,
                seed=trace_seed,
                dispatch=self.dispatch,
                quantile_error=self.quantile_error,
                start_method=self.start_method,
                faults=self.faults,
                fault_policy=self.fault_policy,
            )
            report = fleet.report
        else:
            trace = generate_trace_soa(
                self.shapes, self.num_requests, self.mean_interarrival,
                seed=trace_seed,
            )
            report = simulator.run(
                trace,
                streaming=self.streaming,
                dispatch=self.dispatch,
                quantile_error=self.quantile_error,
                faults=self.faults,
                fault_policy=self.fault_policy,
            )
        wall = time.perf_counter() - started
        return _report_metrics(report, wall, self.num_requests)


class LoadSweepExperiment(Experiment):
    """N repeats of an offered-load sweep (knee/plateau detection)."""

    kind = "sweep"

    def __init__(
        self,
        shapes: Sequence[GemmShape] = SERVING_SHAPES,
        configs: Sequence[str] = SERVING_CONFIGS,
        offered_loads: Sequence[float] | None = None,
        num_requests: int = 2000,
        jobs: int = 1,
        shards: int = 1,
        start_method: str | None = None,
        faults=None,
        fault_policy=None,
        quantile_error: float = QUANTILE_ERROR,
    ):
        self.shapes = tuple(shapes)
        self.configs = tuple(configs)
        self.offered_loads = list(offered_loads) if offered_loads else None
        self.num_requests = num_requests
        self.jobs = jobs
        self.shards = shards
        self.start_method = start_method
        self.faults = faults
        self.fault_policy = fault_policy
        self.quantile_error = quantile_error
        self._simulator = None
        self._names: tuple[str, ...] = ()

    def params(self) -> dict[str, Any]:
        return {
            "shapes": [str(shape) for shape in self.shapes],
            "configs": list(self.configs),
            "offered_loads": self.offered_loads,
            "requests_per_point": self.num_requests,
            "jobs": self.jobs,
            "shards": self.shards,
            "faulted": self.faults is not None and not self.faults.is_empty,
        }

    def prepare(self) -> None:
        from repro.sim.serving import ServingSimulator

        partition = build_partition(self.configs)
        self._simulator = ServingSimulator(partition)
        self._simulator.prewarm(self.shapes)
        self._names = tuple(partition.designs)

    def run_repeat(
        self, repeat_seed: int, noise: list[NoiseModel] | None
    ) -> dict[str, float]:
        from repro.sim.serving import load_sweep

        if self._simulator is None:
            self.prepare()
        factors = combined_service_factors(
            noise, repeat_seed, len(self._names), len(self.shapes)
        )
        simulator = self._simulator
        if factors is not None:
            table = {
                (name, shape): factors[i, j]
                for i, name in enumerate(self._names)
                for j, shape in enumerate(self.shapes)
            }
            simulator = simulator.perturbed(
                lambda name, shape: table[(name, shape)]
            )
        started = time.perf_counter()
        result = load_sweep(
            simulator,
            self.shapes,
            self.offered_loads,
            num_requests=self.num_requests,
            seed=derive_seed(repeat_seed, _SWEEP_LANE),
            quantile_error=self.quantile_error,
            jobs=self.jobs,
            shards=self.shards,
            start_method=self.start_method,
            faults=self.faults,
            fault_policy=self.fault_policy,
        )
        wall = time.perf_counter() - started
        last = result.points[-1]
        metrics = {
            "wall_seconds_sweep": wall,
            "points": float(len(result.points)),
            "max_achieved_rps": max(p.achieved_rps for p in result.points),
            "last_p99": last.p99,
            "early_exit": 1.0 if result.early_exit else 0.0,
        }
        # knee/plateau only exist once the sweep saturates; absent
        # metrics are summarized over the repeats that produced them
        if result.knee_rps is not None:
            metrics["knee_rps"] = result.knee_rps
        if result.plateau_rps is not None:
            metrics["plateau_rps"] = result.plateau_rps
        return metrics


class EstimateExperiment(Experiment):
    """N repeats of one analytical-model estimate."""

    kind = "estimate"

    def __init__(self, config: str = "C5", workload: GemmShape = EVAL_WORKLOAD):
        self.config_name = config
        self.workload = workload
        self._config = None

    def params(self) -> dict[str, Any]:
        return {"config": self.config_name, "workload": str(self.workload)}

    def prepare(self) -> None:
        from repro.mapping.configs import config_by_name

        self._config = config_by_name(self.config_name)

    def run_repeat(
        self, repeat_seed: int, noise: list[NoiseModel] | None
    ) -> dict[str, float]:
        from repro.core.analytical_model import AnalyticalModel
        from repro.hw.faults import derate_clock
        from repro.mapping.charm import CharmDesign

        if self._config is None:
            self.prepare()
        fraction = combined_clock_fraction(noise, repeat_seed)
        design = CharmDesign(self._config)
        if fraction < 1.0:
            design = CharmDesign(self._config, device=derate_clock(design.device, fraction))
        estimate = AnalyticalModel(design).estimate(self.workload)
        # DRAM/thermal contention on top of the (possibly clock-derated)
        # model output — the model itself has no contention term
        slowdown = combined_stage_factor(noise, repeat_seed)
        total = estimate.total_seconds * slowdown
        return {
            "total_seconds": total,
            "throughput_gops": self.workload.flops / total / 1e9,
            "efficiency": estimate.efficiency / slowdown,
            "clock_fraction": fraction,
        }


class EvalThroughputExperiment(Experiment):
    """N repeats of the DSE evaluation-engine throughput measurement.

    A pure wall-clock experiment (the harness analogue of
    ``benchmarks/bench_eval_throughput.py``): serial seed-path
    exploration vs cached+parallel vs vectorized, with byte-identical
    ranking verification.  Noise models make no sense here — wall time
    is the measured quantity — so passing any is an error.
    """

    kind = "eval"

    def __init__(
        self,
        workload: GemmShape = EVAL_WORKLOAD,
        max_aies: int = 48,
        inner_repeats: int = 3,
        jobs: int = 2,
    ):
        self.workload = workload
        self.max_aies = max_aies
        self.inner_repeats = inner_repeats
        self.jobs = jobs

    def params(self) -> dict[str, Any]:
        return {
            "workload": str(self.workload),
            "max_aies": self.max_aies,
            "inner_repeats": self.inner_repeats,
            "jobs": self.jobs,
        }

    def _explore(self, jobs: int, cache, vectorize: bool = False):
        from repro.core.dse import DesignSpaceExplorer

        from repro.kernels.precision import Precision

        explorer = DesignSpaceExplorer(
            Precision.FP32,
            max_aies=self.max_aies,
            explore_ports=True,
            jobs=jobs,
            cache=cache,
            vectorize=vectorize,
        )
        started = time.perf_counter()
        result = explorer.explore(self.workload)
        for _ in range(self.inner_repeats - 1):
            result = explorer.explore(self.workload)
        return time.perf_counter() - started, result

    def run_repeat(
        self, repeat_seed: int, noise: list[NoiseModel] | None
    ) -> dict[str, float]:
        from repro.perf.cache import EvalCache, NullCache

        if noise:
            raise ValueError(
                "the eval experiment measures wall-clock engine throughput; "
                "noise models do not apply"
            )
        serial_seconds, serial = self._explore(1, NullCache())
        parallel_seconds, parallel = self._explore(self.jobs, EvalCache())
        vectorized_seconds, vectorized = self._explore(
            self.jobs, EvalCache(), vectorize=True
        )
        identical = (
            ranking_bytes(serial) == ranking_bytes(parallel) == ranking_bytes(vectorized)
        )
        return {
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "vectorized_seconds": vectorized_seconds,
            "speedup_cached_parallel": serial_seconds / parallel_seconds,
            "speedup_vectorized": serial_seconds / vectorized_seconds,
            "rankings_identical": 1.0 if identical else 0.0,
        }


#: CHARM-flavoured load/compute/store dataflow for the pipeline kind
DEFAULT_PIPELINE_STAGES = (
    ("load", 1.2e-4, 2),
    ("compute", 8.0e-5, 4),
    ("store", 6.0e-5, 2),
)


class PipelineExperiment(Experiment):
    """N repeats of a pipeline fill/drain replay under derating."""

    kind = "pipeline"

    def __init__(
        self,
        stages: Sequence[tuple[str, float, int]] = DEFAULT_PIPELINE_STAGES,
        items: int = 4096,
    ):
        self.stages = tuple(stages)
        self.items = items
        self._simulator = None

    def params(self) -> dict[str, Any]:
        return {
            "stages": [list(stage) for stage in self.stages],
            "items": self.items,
        }

    def prepare(self) -> None:
        from repro.sim.engine import PipelineSimulator, PipelineStage

        self._simulator = PipelineSimulator(
            [
                PipelineStage(name, service, slots)
                for name, service, slots in self.stages
            ]
        )

    def run_repeat(
        self, repeat_seed: int, noise: list[NoiseModel] | None
    ) -> dict[str, float]:
        if self._simulator is None:
            self.prepare()
        # thermal/DRAM slowdowns and clock derating all scale constant
        # stage services uniformly; PipelineSimulator.derated keeps the
        # derated stages vectorize-eligible
        factor = combined_stage_factor(noise, repeat_seed) / combined_clock_fraction(
            noise, repeat_seed
        )
        simulator = self._simulator
        if factor != 1.0:
            simulator = simulator.derated(
                {name: factor for name, _, _ in self.stages}
            )
        result = simulator.run(self.items)
        makespan = result.makespan
        bottleneck = max(
            range(len(self.stages)), key=lambda index: result.stage_busy(index)
        )
        return {
            "makespan_seconds": makespan,
            "items_per_sec": self.items / makespan if makespan > 0 else 0.0,
            "bottleneck_busy_fraction": (
                result.stage_busy(bottleneck) / makespan if makespan > 0 else 0.0
            ),
        }
