"""Seeded noise models for repeated-run experiments.

Each model perturbs one physical source of run-to-run variability:

* :class:`DramJitterNoise` — DRAM-contention jitter: an independent
  multiplicative slowdown per (accelerator, request-class) service
  time, drawn on a stable (accelerator index x class index) grid;
* :class:`ThermalDeratingNoise` — one thermal derate factor per
  repeat, applied uniformly (serving services, pipeline stages via
  :meth:`repro.sim.engine.PipelineSimulator.derated`, estimate totals);
* :class:`ClockVariabilityNoise` — AIE clock variability: a per-repeat
  frequency fraction; the estimate experiment re-runs the analytical
  model on :func:`repro.hw.faults.derate_clock`'s derated
  :class:`~repro.hw.specs.DeviceSpec`, serving/pipeline experiments
  scale service times by ``1/fraction``.

Determinism contract: every draw comes from
``splitmix_uniforms(derive_seed(repeat_seed, stream), grid)`` where
``stream`` is a per-model constant and ``grid`` indexes stable
identities (accelerator order x class index), never evaluation order.
Same seed -> byte-identical factors regardless of ``--jobs``,
``--shards``, or dispatch-engine choice; composed models draw from
disjoint streams, so adding one never shifts another's factors.
"""

from __future__ import annotations

import numpy as np

from repro.sim.streaming import derive_seed, splitmix_uniforms

__all__ = [
    "ClockVariabilityNoise",
    "DramJitterNoise",
    "NoiseModel",
    "ThermalDeratingNoise",
    "combined_clock_fraction",
    "combined_service_factors",
    "combined_stage_factor",
    "parse_noise_spec",
]


def _require_amplitude(amplitude: float, upper: float = 10.0) -> float:
    amplitude = float(amplitude)
    if not (0.0 < amplitude <= upper) or amplitude != amplitude:
        raise ValueError(
            f"noise amplitude must be in (0, {upper}], got {amplitude}"
        )
    return amplitude


class NoiseModel:
    """Base class: identity noise on every hook.

    Subclasses override the hooks they model; every hook is a pure
    function of ``(repeat_seed, model parameters)``.  ``stream`` keeps
    composed models on disjoint splitmix streams.
    """

    name = "none"
    stream = 0

    def _uniforms(self, repeat_seed: int, count: int, lane: int = 0) -> np.ndarray:
        """``count`` U(0,1) draws on this model's stream for one repeat."""
        seed = derive_seed(derive_seed(repeat_seed, self.stream), lane)
        return splitmix_uniforms(seed, np.arange(count, dtype=np.int64))

    def service_factors(
        self, repeat_seed: int, accelerators: int, classes: int
    ) -> np.ndarray:
        """Multiplicative slowdown per (accelerator, class) service time."""
        return np.ones((accelerators, classes), dtype=np.float64)

    def stage_factor(self, repeat_seed: int) -> float:
        """Uniform slowdown for pipeline stages / estimate totals."""
        return 1.0

    def clock_fraction(self, repeat_seed: int) -> float:
        """Fraction of nominal AIE frequency (1.0 = no derating)."""
        return 1.0

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()!r})"


class DramJitterNoise(NoiseModel):
    """DRAM-contention jitter: per-(accelerator, class) service slowdown.

    Factor ``1 + amplitude * u`` with an independent ``u`` per grid
    cell — contention only ever slows a transfer down.
    """

    name = "dram"
    stream = 1

    def __init__(self, amplitude: float = 0.1):
        self.amplitude = _require_amplitude(amplitude)

    def service_factors(
        self, repeat_seed: int, accelerators: int, classes: int
    ) -> np.ndarray:
        draws = self._uniforms(repeat_seed, accelerators * classes)
        return 1.0 + self.amplitude * draws.reshape(accelerators, classes)

    def stage_factor(self, repeat_seed: int) -> float:
        return 1.0 + self.amplitude * float(self._uniforms(repeat_seed, 1)[0])

    def describe(self) -> str:
        return f"dram:{self.amplitude:g}"


class ThermalDeratingNoise(NoiseModel):
    """Thermal derating: one uniform slowdown factor per repeat."""

    name = "thermal"
    stream = 2

    def __init__(self, amplitude: float = 0.2):
        self.amplitude = _require_amplitude(amplitude)

    def _factor(self, repeat_seed: int) -> float:
        return 1.0 + self.amplitude * float(self._uniforms(repeat_seed, 1)[0])

    def service_factors(
        self, repeat_seed: int, accelerators: int, classes: int
    ) -> np.ndarray:
        return np.full(
            (accelerators, classes), self._factor(repeat_seed), dtype=np.float64
        )

    def stage_factor(self, repeat_seed: int) -> float:
        return self._factor(repeat_seed)

    def describe(self) -> str:
        return f"thermal:{self.amplitude:g}"


class ClockVariabilityNoise(NoiseModel):
    """AIE clock variability: a per-repeat frequency fraction.

    ``fraction`` is drawn uniformly from ``[1 - amplitude, 1]`` — the
    array never overclocks.  The estimate experiment rebuilds its
    device through :func:`repro.hw.faults.derate_clock`; serving and
    pipeline experiments scale services by ``1/fraction`` (compute
    time is inversely proportional to frequency).
    """

    name = "clock"
    stream = 3

    def __init__(self, amplitude: float = 0.05):
        self.amplitude = _require_amplitude(amplitude, upper=0.99)

    def clock_fraction(self, repeat_seed: int) -> float:
        return 1.0 - self.amplitude * float(self._uniforms(repeat_seed, 1)[0])

    def service_factors(
        self, repeat_seed: int, accelerators: int, classes: int
    ) -> np.ndarray:
        factor = 1.0 / self.clock_fraction(repeat_seed)
        return np.full((accelerators, classes), factor, dtype=np.float64)

    # stage_factor stays 1.0: experiments that honour clock_fraction
    # (estimate via derate_clock, pipeline via 1/fraction) would count
    # the slowdown twice if this model also inflated the stage factor.

    def describe(self) -> str:
        return f"clock:{self.amplitude:g}"


_NOISE_KINDS = {
    "dram": DramJitterNoise,
    "thermal": ThermalDeratingNoise,
    "clock": ClockVariabilityNoise,
}


def parse_noise_spec(spec: str | None) -> list[NoiseModel]:
    """Parse the CLI's ``--noise`` grammar into composed noise models.

    ``spec`` is a comma-separated list of ``kind`` or ``kind:amplitude``
    terms with kinds ``dram``, ``thermal``, ``clock``; ``none`` (or an
    empty/absent spec) disables noise.  Example:
    ``dram:0.1,thermal:0.15,clock:0.05``.
    """
    if spec is None or not spec.strip() or spec.strip() == "none":
        return []
    models: list[NoiseModel] = []
    seen: set[str] = set()
    for term in spec.split(","):
        term = term.strip()
        if not term:
            continue
        kind, _, amplitude = term.partition(":")
        if kind not in _NOISE_KINDS:
            raise ValueError(
                f"unknown noise kind {kind!r}; expected one of "
                f"{sorted(_NOISE_KINDS)} or 'none'"
            )
        if kind in seen:
            raise ValueError(f"noise kind {kind!r} given twice")
        seen.add(kind)
        if amplitude:
            try:
                models.append(_NOISE_KINDS[kind](float(amplitude)))
            except ValueError as error:
                raise ValueError(f"bad noise term {term!r}: {error}") from None
        else:
            models.append(_NOISE_KINDS[kind]())
    return models


def combined_service_factors(
    models: list[NoiseModel] | None,
    repeat_seed: int,
    accelerators: int,
    classes: int,
) -> np.ndarray | None:
    """Product of every model's service-factor grid (None = identity)."""
    if not models:
        return None
    factors = np.ones((accelerators, classes), dtype=np.float64)
    for model in models:
        factors *= model.service_factors(repeat_seed, accelerators, classes)
    if not np.all(np.isfinite(factors)) or np.any(factors <= 0):
        raise ValueError("composed noise produced non-positive service factors")
    return factors


def combined_stage_factor(
    models: list[NoiseModel] | None, repeat_seed: int
) -> float:
    """Product of every model's uniform stage/estimate slowdown."""
    factor = 1.0
    for model in models or ():
        factor *= model.stage_factor(repeat_seed)
    return factor


def combined_clock_fraction(
    models: list[NoiseModel] | None, repeat_seed: int
) -> float:
    """Product of every model's clock fraction (1.0 = nominal)."""
    fraction = 1.0
    for model in models or ():
        fraction *= model.clock_fraction(repeat_seed)
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"composed clock fraction {fraction} out of (0, 1]")
    return fraction
