"""The repeated-run driver: N seeded repeats -> per-metric summaries.

``run_bench`` derives one seed per repeat up front
(``derive_seed(seed, repeat)``), runs the repeats serially or through
:func:`repro.perf.parallel.parallel_map` (thread-based,
order-preserving), and summarizes every metric across repeats with
:func:`repro.bench.stats.summarize`.  Because each repeat's randomness
is a pure function of its own derived seed, a ``--jobs N`` run
produces the identical sample stream to a serial run — only wall-clock
measurements (which are *measurements*, not draws) can differ.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.experiments import Experiment
from repro.bench.measure import Probe, default_probes, run_probed
from repro.bench.noise import NoiseModel
from repro.bench.stats import MetricSummary, summarize
from repro.sim.streaming import derive_seed

#: bootstrap-resample stream lane, disjoint from repeat lanes
_BOOTSTRAP_LANE = 0x5EED


@dataclass
class BenchResult:
    """All repeats of one benched experiment, summarized per metric."""

    kind: str
    params: dict[str, Any]
    repeats: int
    seed: int
    noise: list[str]
    confidence: float
    samples: list[dict[str, float]]
    summaries: dict[str, MetricSummary] = field(default_factory=dict)

    def metric(self, name: str) -> MetricSummary:
        try:
            return self.summaries[name]
        except KeyError:
            raise KeyError(
                f"no metric {name!r}; have {sorted(self.summaries)}"
            ) from None

    def entry(self) -> dict[str, Any]:
        """The JSON trajectory entry for this result."""
        return {
            "timestamp": time.time(),
            "kind": self.kind,
            "params": self.params,
            "repeats": self.repeats,
            "seed": self.seed,
            "noise": self.noise,
            "confidence": self.confidence,
            "metrics": {
                name: summary.as_dict()
                for name, summary in sorted(self.summaries.items())
            },
            "samples": self.samples,
        }


def run_bench(
    experiment: Experiment,
    repeats: int = 5,
    seed: int = 0,
    noise: list[NoiseModel] | None = None,
    jobs: int = 1,
    confidence: float = 0.95,
    bootstrap_resamples: int = 1000,
    probes: list[Probe] | None = None,
    trace_rollup: bool = False,
) -> BenchResult:
    """Run ``repeats`` seeded repeats of ``experiment`` and summarize.

    ``jobs > 1`` runs repeats concurrently (threads); per-repeat seeds
    are derived up front, so the sample stream is byte-identical to a
    serial run.  Probes default to timer + stats
    (:func:`repro.bench.measure.default_probes`); note that with
    ``jobs > 1`` concurrent repeats share the process-global stats and
    tracer, so the probe-attributed deltas are only exact at
    ``jobs=1``.
    """
    if repeats < 1:
        raise ValueError("need at least one repeat")
    from repro.perf.parallel import parallel_map

    experiment.prepare()
    repeat_seeds = [derive_seed(seed, repeat) for repeat in range(repeats)]

    def one(repeat_seed: int) -> dict[str, float]:
        stack = probes if probes is not None else default_probes(trace_rollup)
        return run_probed(
            lambda: experiment.run_repeat(repeat_seed, noise), stack
        )

    if jobs == 1:
        samples = [one(repeat_seed) for repeat_seed in repeat_seeds]
    else:
        samples = parallel_map(one, repeat_seeds, jobs=jobs, chunksize=1)

    names = sorted({name for sample in samples for name in sample})
    summaries = {}
    for name in names:
        values = [sample[name] for sample in samples if name in sample]
        summaries[name] = summarize(
            values,
            confidence=confidence,
            resamples=bootstrap_resamples,
            seed=derive_seed(seed, _BOOTSTRAP_LANE),
        )
    return BenchResult(
        kind=experiment.kind,
        params=experiment.params(),
        repeats=repeats,
        seed=seed,
        noise=[model.describe() for model in noise or ()],
        confidence=confidence,
        samples=samples,
        summaries=summaries,
    )


_CSV_COLUMNS = (
    "metric", "n", "mean", "median", "std", "min", "max",
    "ci_low", "ci_high", "boot_low", "boot_high", "confidence",
)


def write_csv(result: BenchResult, path: Path | str) -> None:
    """Per-metric summary rows (one line per metric)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_COLUMNS)
        for name in sorted(result.summaries):
            summary = result.summaries[name]
            writer.writerow(
                [name]
                + [getattr(summary, column) for column in _CSV_COLUMNS[1:]]
            )


def write_json(result: BenchResult, path: Path | str) -> None:
    """The full result entry (params, summaries, raw samples)."""
    Path(path).write_text(json.dumps(result.entry(), indent=2) + "\n")
