"""Plain-text/CSV/JSON rendering of experiment results.

The benchmarks print the same rows/series the paper's tables and figures
report; this module owns the formatting so drivers stay data-only.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Mapping, Sequence


def format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if value is None:
        return "-"
    return str(value)


def format_seconds(seconds: float) -> str:
    """Human-scaled time: s / ms / us."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows of dicts as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in cells
    )
    parts = [title, header, rule, body] if title else [header, rule, body]
    return "\n".join(p for p in parts if p)


def render_csv(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({col: row.get(col) for col in columns})
    return buffer.getvalue()


def render_json(rows: Sequence[Mapping[str, Any]]) -> str:
    return json.dumps(list(rows), indent=2, default=str)


def render_bars(
    rows: Sequence[Mapping[str, Any]],
    label_key: str,
    value_key: str,
    width: int = 50,
    title: str | None = None,
    log_scale: bool = False,
) -> str:
    """Horizontal ASCII bar chart — the terminal rendering of a figure.

    ``log_scale`` suits series spanning orders of magnitude (e.g. the
    strong-scaling latencies of Fig. 9).
    """
    import math

    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    values = [float(row[value_key]) for row in rows]
    if any(v < 0 for v in values):
        raise ValueError("bar charts need non-negative values")
    if log_scale:
        floor = min(v for v in values if v > 0) / 2
        scaled = [math.log(max(v, floor) / floor) for v in values]
    else:
        scaled = values
    peak = max(scaled) or 1.0
    label_width = max(len(str(row[label_key])) for row in rows)
    lines = []
    for row, raw, s in zip(rows, values, scaled):
        bar = "#" * max(1 if raw > 0 else 0, round(s / peak * width))
        lines.append(
            f"{str(row[label_key]):>{label_width}} |{bar:<{width}}| {format_value(raw)}"
        )
    if title:
        lines.insert(0, title)
    return "\n".join(lines)


RENDERERS = {"table": render_table, "csv": render_csv, "json": render_json}
