"""Vectorized batch evaluation of the analytical model.

The batch drivers (DSE, sweeps, sensitivity, serving prewarm) are
embarrassingly data-parallel: the same Eq. 1 / Eq. 2 closed forms applied
to thousands of ``(design, workload)`` candidates.  The scalar path pays
full Python object overhead per candidate — a :class:`CharmDesign`, an
``AnalyticalModel``, a 16x16x16 ``plan_tiling`` search building a
``TilePlan`` per grid cell.  This module evaluates *arrays* of candidates
instead:

* :class:`CandidateGrid` — a structure-of-arrays batch: grouping factors
  ``gm/gk/gn``, kernel tile sizes, PLIO allocations, DRAM port
  bandwidths, per-candidate device scalars and workload shapes.
* :func:`batch_estimate` — NumPy array expressions mirroring
  ``AnalyticalModel.estimate`` operation-for-operation: the PL<->AIE
  stream/compute times (Eq. 1), the vectorized DRAM-level tile-plan
  search (the exact ``plan_tiling`` objective and tie-breaks), the
  DRAM<->PL phase times (Eq. 2) and the total latency, plus a
  feasibility mask so infeasible candidates are *counted*, not silently
  dropped.

Faithfulness contract: every arithmetic step replicates the scalar
model's operation order in float64, so batch totals agree with the
scalar ``estimate`` to at least 1e-9 relative (bit-identical in
practice), and the feasibility mask reproduces the scalar
``DesignError``/``ValueError`` outcomes exactly.  The batch drivers keep
their byte-identical guarantees by re-ranking vectorized survivors
through the scalar, cached path (see ``DesignSpaceExplorer.explore``).

The feasibility mask mirrors ``CharmDesign.validate`` (AIE budget, PLIO
budgets, kernel memory rules, cascade pack-depth divisibility) plus
``plan_tiling``'s "no tile plan fits" failure, which is what the scalar
batch drivers swallow as a skipped candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.hw.dram import TRANSFER_LATENCY_SECONDS, DramPorts
from repro.kernels.gemm_kernel import (
    AIE_DATA_MEMORY_BYTES,
    MAX_DOUBLE_BUFFER_OPERAND_BYTES,
    NEIGHBOR_MEMORY_BYTES,
)
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle, style_parameters
from repro.mapping.grouping import pack_depth_for
from repro.workloads.gemm import GemmShape

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports perf)
    from repro.core.analytical_model import Estimate
    from repro.mapping.charm import CharmDesign

#: mirror of ``plan_tiling``'s default PL-tile multiple ceiling
MAX_TILE_MULTIPLE = 16

#: candidates processed per tile-planning chunk: bounds the transient
#: (chunk, 16, 16, 16) grids to a few MB regardless of batch size
_PLAN_CHUNK = 128


def _int_array(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


def _float_array(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


@dataclass
class CandidateGrid:
    """A structure-of-arrays batch of design candidates for evaluation.

    All arrays have one entry per candidate.  The precision and kernel
    programming style are batch-wide (one vectorized pass per precision);
    everything else — grouping, kernel tile size, PLIO split, DRAM port
    bandwidths, device scalars, workload shape — varies per candidate, so
    sensitivity studies that perturb the *device* and serving prewarms
    that vary the *workload* use the same kernel as the DSE.
    """

    precision: Precision
    kernel_style: KernelStyle
    # --- grouping / kernel geometry ---
    gm: np.ndarray
    gk: np.ndarray
    gn: np.ndarray
    km: np.ndarray  # single-AIE kernel tile dimensions
    kk: np.ndarray
    kn: np.ndarray
    # --- PLIO allocation ---
    num_plios: np.ndarray
    plios_a: np.ndarray
    plios_b: np.ndarray
    plios_c: np.ndarray
    # --- workload shape (per candidate: prewarm batches mix shapes) ---
    wm: np.ndarray
    wk: np.ndarray
    wn: np.ndarray
    # --- device / DRAM scalars ---
    device_num_aies: np.ndarray
    usable_plios: np.ndarray
    total_plio_in: np.ndarray
    total_plio_out: np.ndarray
    pl_budget_bytes: np.ndarray
    plio_rate: np.ndarray  # bytes per AIE cycle of one PLIO stream
    datapath_scale: np.ndarray
    aie_freq_hz: np.ndarray
    setup_seconds: np.ndarray
    read_bandwidth: np.ndarray  # DRAM read-port pool, bytes/s
    write_bandwidth: np.ndarray
    # --- design switches ---
    pl_double_buffered: np.ndarray  # bool
    allow_neighbor_kernels: np.ndarray  # bool
    #: candidates whose PLIO split could not even be computed (< 3 PLIOs)
    split_failed: np.ndarray  # bool
    #: original objects, kept when built from designs so results can be
    #: materialized back into scalar ``Estimate`` dataclasses
    designs: list | None = None
    workloads: list[GemmShape] | None = None

    def __len__(self) -> int:
        return int(self.gm.shape[0])

    # ------------------------------------------------------------------
    @property
    def num_aies(self) -> np.ndarray:
        return self.gm * self.gk * self.gn

    @property
    def native_m(self) -> np.ndarray:
        return self.gm * self.km

    @property
    def native_k(self) -> np.ndarray:
        return self.gk * self.kk

    @property
    def native_n(self) -> np.ndarray:
        return self.gn * self.kn

    # ------------------------------------------------------------------
    @classmethod
    def from_designs(
        cls,
        designs: Sequence["CharmDesign"],
        workload: GemmShape | Sequence[GemmShape],
    ) -> "CandidateGrid":
        """Build a grid from scalar design objects.

        ``workload`` is either one shape (DSE, sensitivity) or a
        per-candidate sequence (serving prewarm pairs).  The designs'
        precisions and kernel styles must agree — one vectorized pass
        covers one (precision, style) family.
        """
        if not designs:
            raise ValueError("need at least one candidate design")
        if isinstance(workload, GemmShape):
            workloads = [workload] * len(designs)
        else:
            workloads = list(workload)
            if len(workloads) != len(designs):
                raise ValueError(
                    f"{len(workloads)} workloads for {len(designs)} designs"
                )
        precision = designs[0].precision
        style = designs[0].kernel_style
        for design in designs:
            if design.precision is not precision or design.kernel_style is not style:
                raise ValueError(
                    "a CandidateGrid evaluates one (precision, kernel style) family"
                )
        splits = []
        split_failed = []
        for design in designs:
            try:
                splits.append(design.config.plio_split())
                split_failed.append(False)
            except ValueError:
                splits.append((1, 1, 1))
                split_failed.append(True)
        return cls(
            precision=precision,
            kernel_style=style,
            gm=_int_array([d.config.grouping.gm for d in designs]),
            gk=_int_array([d.config.grouping.gk for d in designs]),
            gn=_int_array([d.config.grouping.gn for d in designs]),
            km=_int_array([d.config.kernel.m for d in designs]),
            kk=_int_array([d.config.kernel.k for d in designs]),
            kn=_int_array([d.config.kernel.n for d in designs]),
            num_plios=_int_array([d.config.num_plios for d in designs]),
            plios_a=_int_array([s[0] for s in splits]),
            plios_b=_int_array([s[1] for s in splits]),
            plios_c=_int_array([s[2] for s in splits]),
            wm=_int_array([w.m for w in workloads]),
            wk=_int_array([w.k for w in workloads]),
            wn=_int_array([w.n for w in workloads]),
            device_num_aies=_int_array([d.device.num_aies for d in designs]),
            usable_plios=_int_array([d.device.usable_plios for d in designs]),
            total_plio_in=_int_array([d.device.total_plio_in for d in designs]),
            total_plio_out=_int_array([d.device.total_plio_out for d in designs]),
            pl_budget_bytes=_int_array([d.device.pl_usable_bytes for d in designs]),
            plio_rate=_float_array(
                [d.device.plio_bytes_per_aie_cycle() for d in designs]
            ),
            datapath_scale=_float_array(
                [
                    d.precision.macs_per_cycle / d.device.macs_per_cycle[d.precision]
                    for d in designs
                ]
            ),
            aie_freq_hz=_float_array([d.device.aie_freq_hz for d in designs]),
            setup_seconds=_float_array([d.device.aie_setup_seconds for d in designs]),
            read_bandwidth=_float_array([d.dram.read_bandwidth() for d in designs]),
            write_bandwidth=_float_array([d.dram.write_bandwidth() for d in designs]),
            pl_double_buffered=np.asarray(
                [d.pl_double_buffered for d in designs], dtype=bool
            ),
            allow_neighbor_kernels=np.asarray(
                [d.allow_neighbor_kernels for d in designs], dtype=bool
            ),
            split_failed=np.asarray(split_failed, dtype=bool),
            designs=list(designs),
            workloads=workloads,
        )

    @classmethod
    def from_arrays(
        cls,
        precision: Precision,
        gm,
        gk,
        gn,
        num_plios,
        workload: GemmShape,
        dram_ports: DramPorts | Sequence[DramPorts] | None = None,
        device=None,
        kernel_style: KernelStyle = KernelStyle.INTRINSIC,
    ) -> "CandidateGrid":
        """Build a grid straight from grouping/PLIO arrays.

        The raw-array entry point for DSE-style axes: the kernel shape
        comes from ``KERNEL_BY_PRECISION``, the PLIO split from the same
        largest-remainder allocation the scalar configs use, and DRAM
        bandwidths from the NoC model.  Candidates that violate a
        hardware budget are kept and masked, mirroring how the scalar
        drivers count them as skipped.
        """
        from repro.hw.dram import IMPROVED_PORTS, DramModel
        from repro.hw.specs import VCK5000
        from repro.mapping.configs import KERNEL_BY_PRECISION, _proportional_split

        device = VCK5000 if device is None else device
        gm, gk, gn = np.broadcast_arrays(_int_array(gm), _int_array(gk), _int_array(gn))
        num_plios = np.broadcast_to(_int_array(num_plios), gm.shape).copy()
        n = gm.shape[0]
        kernel = KERNEL_BY_PRECISION[precision]
        if dram_ports is None:
            ports_list = [IMPROVED_PORTS] * n
        elif isinstance(dram_ports, DramPorts):
            ports_list = [dram_ports] * n
        else:
            ports_list = list(dram_ports)
        read_bw, write_bw = [], []
        for ports in ports_list:
            dram = DramModel(device, ports)
            read_bw.append(dram.read_bandwidth())
            write_bw.append(dram.write_bandwidth())
        native = [
            GemmShape(int(a) * kernel.m, int(b) * kernel.k, int(c) * kernel.n)
            for a, b, c in zip(gm, gk, gn)
        ]
        splits, split_failed = [], []
        for nat, total in zip(native, num_plios):
            try:
                splits.append(_proportional_split(nat, precision, int(total)))
                split_failed.append(False)
            except ValueError:
                splits.append((1, 1, 1))
                split_failed.append(True)
        ones = np.ones(n, dtype=np.int64)
        return cls(
            precision=precision,
            kernel_style=kernel_style,
            gm=gm,
            gk=gk,
            gn=gn,
            km=ones * kernel.m,
            kk=ones * kernel.k,
            kn=ones * kernel.n,
            num_plios=num_plios,
            plios_a=_int_array([s[0] for s in splits]),
            plios_b=_int_array([s[1] for s in splits]),
            plios_c=_int_array([s[2] for s in splits]),
            wm=ones * workload.m,
            wk=ones * workload.k,
            wn=ones * workload.n,
            device_num_aies=ones * device.num_aies,
            usable_plios=ones * device.usable_plios,
            total_plio_in=ones * device.total_plio_in,
            total_plio_out=ones * device.total_plio_out,
            pl_budget_bytes=ones * device.pl_usable_bytes,
            plio_rate=np.full(n, device.plio_bytes_per_aie_cycle()),
            datapath_scale=np.full(
                n, precision.macs_per_cycle / device.macs_per_cycle[precision]
            ),
            aie_freq_hz=np.full(n, device.aie_freq_hz),
            setup_seconds=np.full(n, device.aie_setup_seconds),
            read_bandwidth=_float_array(read_bw),
            write_bandwidth=_float_array(write_bw),
            pl_double_buffered=np.ones(n, dtype=bool),
            allow_neighbor_kernels=np.zeros(n, dtype=bool),
            split_failed=np.asarray(split_failed, dtype=bool),
            designs=None,
            workloads=[workload] * n,
        )


@dataclass
class BatchEstimate:
    """Array outputs of one vectorized batch evaluation.

    Infeasible candidates (``feasible[i] == False``) hold ``inf`` in
    ``total_seconds`` and undefined values in the component arrays; the
    mask is the source of truth, exactly as the scalar drivers treat a
    raised ``DesignError``/``ValueError``.
    """

    grid: CandidateGrid
    feasible: np.ndarray
    #: why a candidate was masked: '' | 'design' | 'tiling'
    design_valid: np.ndarray
    total_seconds: np.ndarray
    multiples: np.ndarray  # (N, 3) chosen PL-tile multiples
    num_dram_tiles: np.ndarray
    dram_tile_counts: np.ndarray  # (N, 3)
    # Eq. 1 components (AIE cycles)
    plio_a: np.ndarray
    plio_b: np.ndarray
    compute: np.ndarray
    plio_c: np.ndarray
    # Eq. 2 components (seconds)
    load_a: np.ndarray
    load_b: np.ndarray
    aie_seconds: np.ndarray
    store_c: np.ndarray

    def __len__(self) -> int:
        return int(self.feasible.shape[0])

    @property
    def num_feasible(self) -> int:
        return int(np.count_nonzero(self.feasible))

    @property
    def num_infeasible(self) -> int:
        return len(self) - self.num_feasible

    # ------------------------------------------------------------------
    def estimate(self, index: int) -> "Estimate":
        """Materialize candidate ``index`` as a scalar :class:`Estimate`.

        Requires the grid to have been built ``from_designs`` (the
        Estimate embeds the design object).  The floats come straight
        from the batch arrays; the dataclass structure (plan, levels,
        breakdown, bottlenecks) is rebuilt exactly as the scalar model
        builds it.
        """
        from repro.core.analytical_model import (
            AieLevelTimes,
            DramLevelTimes,
            Estimate,
        )
        from repro.core.breakdown import ExecutionBreakdown
        from repro.mapping.tiling import TilePlan

        if self.grid.designs is None or self.grid.workloads is None:
            raise ValueError("grid was not built from designs; cannot materialize")
        if not self.feasible[index]:
            raise ValueError(f"candidate {index} is infeasible")
        design = self.grid.designs[index]
        workload = self.grid.workloads[index]
        plan = TilePlan(
            workload=workload,
            native=design.native_size,
            precision=self.grid.precision,
            multiples=tuple(int(x) for x in self.multiples[index]),
            double_buffered=bool(self.grid.pl_double_buffered[index]),
        )
        aie_level = AieLevelTimes(
            plio_a=float(self.plio_a[index]),
            plio_b=float(self.plio_b[index]),
            compute=float(self.compute[index]),
            plio_c=float(self.plio_c[index]),
        )
        dram_level = DramLevelTimes(
            load_a=float(self.load_a[index]),
            load_b=float(self.load_b[index]),
            aie=float(self.aie_seconds[index]),
            store_c=float(self.store_c[index]),
        )
        total = float(self.total_seconds[index])
        num_tiles = int(self.num_dram_tiles[index])
        freq = float(self.grid.aie_freq_hz[index])
        pl_tiles = plan.pl_tiles_per_dram_tile
        compute_seconds = (pl_tiles * aie_level.compute * num_tiles) / freq
        exposed = (aie_level.exposed_fill * num_tiles) / freq
        breakdown = ExecutionBreakdown(
            total_seconds=total,
            load_a_seconds=dram_level.load_a * num_tiles,
            load_b_seconds=dram_level.load_b * num_tiles,
            aie_seconds=dram_level.aie * num_tiles,
            store_c_seconds=dram_level.store_c * num_tiles,
            setup_seconds=float(self.grid.setup_seconds[index]),
            compute_seconds=compute_seconds,
            exposed_plio_seconds=exposed,
            dram_bottleneck=dram_level.bottleneck,
            aie_bottleneck=aie_level.bottleneck,
        )
        return Estimate(
            design=design,
            workload=workload,
            plan=plan,
            aie_level=aie_level,
            dram_level=dram_level,
            total_seconds=total,
            breakdown=breakdown,
        )


# ----------------------------------------------------------------------
# Feasibility masking (mirrors CharmDesign.validate)
# ----------------------------------------------------------------------
def _design_valid_mask(grid: CandidateGrid) -> np.ndarray:
    """Vectorized ``CharmDesign.validate``: True where no budget raises."""
    eb = grid.precision.element_bytes
    ka = grid.km * grid.kk * eb
    kb = grid.kk * grid.kn * eb
    kc = grid.km * grid.kn * eb
    # the kernel is always double buffered at the AIE level
    footprint = 2 * (ka + kb + kc)
    kernel_feasible = (footprint <= AIE_DATA_MEMORY_BYTES + NEIGHBOR_MEMORY_BYTES) & (
        np.maximum(np.maximum(ka, kb), kc) <= MAX_DOUBLE_BUFFER_OPERAND_BYTES
    )
    kernel_scalable = footprint <= AIE_DATA_MEMORY_BYTES
    depth = pack_depth_for(grid.precision)
    pack = np.minimum(grid.gk, depth)
    return (
        (grid.num_aies <= grid.device_num_aies)
        & (grid.num_plios <= grid.usable_plios)
        & ~grid.split_failed
        & (grid.plios_a + grid.plios_b <= grid.total_plio_in)
        & (grid.plios_c <= grid.total_plio_out)
        & kernel_feasible
        & (kernel_scalable | grid.allow_neighbor_kernels)
        & (grid.gk % pack == 0)
    )


# ----------------------------------------------------------------------
# Vectorized tile planning (mirrors mapping.tiling.plan_tiling)
# ----------------------------------------------------------------------
def _plan_tiles(
    grid: CandidateGrid, max_multiple: int = MAX_TILE_MULTIPLE
) -> tuple[np.ndarray, np.ndarray]:
    """Choose PL-tile multiples per candidate; returns (multiples, found).

    Evaluates the full ``(am, ak, an)`` grid per candidate with the exact
    scalar objective — total DRAM traffic, tile count as tie-breaker,
    first-in-iteration-order winning further ties — and masks candidates
    for which no plan fits the PL memory (the scalar ``ValueError``).
    """
    n = len(grid)
    nm, nk, nn = grid.native_m, grid.native_k, grid.native_n
    padded_m = ((grid.wm + nm - 1) // nm) * nm
    padded_k = ((grid.wk + nk - 1) // nk) * nk
    padded_n = ((grid.wn + nn - 1) // nn) * nn
    lim_m = np.minimum(max_multiple, padded_m // nm)
    lim_k = np.minimum(max_multiple, padded_k // nk)
    lim_n = np.minimum(max_multiple, padded_n // nn)
    lm = int(lim_m.max(initial=1))
    lk = int(lim_k.max(initial=1))
    ln = int(lim_n.max(initial=1))
    am = np.arange(1, lm + 1, dtype=np.int64)[None, :, None, None]
    ak = np.arange(1, lk + 1, dtype=np.int64)[None, None, :, None]
    an = np.arange(1, ln + 1, dtype=np.int64)[None, None, None, :]
    eb = grid.precision.element_bytes
    factor = np.where(grid.pl_double_buffered, 2, 1).astype(np.int64)

    multiples = np.ones((n, 3), dtype=np.int64)
    found = np.zeros(n, dtype=bool)
    for start in range(0, n, _PLAN_CHUNK):
        sl = slice(start, min(start + _PLAN_CHUNK, n))

        def per(v: np.ndarray) -> np.ndarray:
            return v[sl, None, None, None]

        tile_m = per(nm) * am
        tile_k = per(nk) * ak
        tile_n = per(nn) * an
        footprint = per(factor) * (
            (tile_m * tile_k + tile_k * tile_n + tile_m * tile_n) * eb
        )
        valid = (
            (am <= per(lim_m))
            & (ak <= per(lim_k))
            & (an <= per(lim_n))
            & (footprint <= per(grid.pl_budget_bytes))
        )
        tm = -(-per(padded_m) // tile_m)
        tk = -(-per(padded_k) // tile_k)
        tn = -(-per(padded_n) // tile_n)
        score = (
            per(padded_m * padded_k * eb) * tn
            + per(padded_k * padded_n * eb) * tm
            + per(padded_m * padded_n * eb)
        ).astype(np.float64)
        tiles = (tm * tk * tn).astype(np.float64)

        c = sl.stop - sl.start
        score_flat = np.where(valid, score, np.inf).reshape(c, -1)
        best_score = score_flat.min(axis=1)
        chunk_found = np.isfinite(best_score)
        tiles_flat = np.where(
            score_flat == best_score[:, None], tiles.reshape(c, -1), np.inf
        )
        best_tiles = tiles_flat.min(axis=1)
        # argmax finds the first cell matching both keys — the same
        # candidate the scalar loop keeps (strict < never replaces ties)
        first = (tiles_flat == best_tiles[:, None]).argmax(axis=1)
        ia, ik, in_ = np.unravel_index(first, (lm, lk, ln))
        multiples[sl, 0] = ia + 1
        multiples[sl, 1] = ik + 1
        multiples[sl, 2] = in_ + 1
        found[sl] = chunk_found
    return multiples, found


# ----------------------------------------------------------------------
# The batch kernel
# ----------------------------------------------------------------------
def batch_estimate(
    grid: CandidateGrid, max_multiple: int = MAX_TILE_MULTIPLE
) -> BatchEstimate:
    """Evaluate Eqs. 1 and 2 for every candidate in ``grid`` at once.

    Every expression below mirrors one line of the scalar model (noted
    in comments) with identical float64 operation order.
    """
    design_valid = _design_valid_mask(grid)
    multiples, plan_found = _plan_tiles(grid, max_multiple)
    feasible = design_valid & plan_found
    am, ak, an = multiples[:, 0], multiples[:, 1], multiples[:, 2]

    eb = grid.precision.element_bytes
    nm, nk, nn = grid.native_m, grid.native_k, grid.native_n

    # ---- Eq. 1: PL <-> AIE, AIE cycles (AnalyticalModel._compute_aie_level_times)
    rate = grid.plio_rate
    plio_a = (nm * nk * eb) / (grid.plios_a * rate)
    plio_b = (nk * nn * eb) / (grid.plios_b * rate)
    plio_c = (nm * nn * eb) / (grid.plios_c * rate)
    # kernel_timing.compute_cycles: blocks * (K/k_per_cycle + drain) * ii + ramp
    params = style_parameters(grid.kernel_style, grid.precision)
    lanes = grid.precision.lanes
    blocks = -(-(grid.km * grid.kn) // lanes)
    cycles_per_block = grid.kk / grid.precision.k_per_cycle + grid.precision.drain_cycles
    kernel_cycles = blocks * cycles_per_block * params.ii_multiplier + params.ramp_cycles
    compute = grid.datapath_scale * kernel_cycles
    # AieLevelTimes.period / .exposed_fill
    period = np.maximum(np.maximum(np.maximum(plio_a, plio_b), compute), plio_c)
    exposed_fill = plio_a + plio_b + plio_c

    # ---- geometry of the chosen plan (TilePlan properties)
    tile_m, tile_k, tile_n = nm * am, nk * ak, nn * an
    padded_m = ((grid.wm + nm - 1) // nm) * nm
    padded_k = ((grid.wk + nk - 1) // nk) * nk
    padded_n = ((grid.wn + nn - 1) // nn) * nn
    tm = -(-padded_m // tile_m)
    tk = -(-padded_k // tile_k)
    tn = -(-padded_n // tile_n)
    num_dram_tiles = tm * tk * tn
    pl_tiles_per_dram_tile = am * ak * an

    # ---- Eq. 1 total per DRAM tile (aie_cycles_per_dram_tile)
    aie_cycles = pl_tiles_per_dram_tile * period + exposed_fill
    aie_seconds = aie_cycles / grid.aie_freq_hz  # cycles_to_seconds

    # ---- Eq. 2: DRAM <-> PL, seconds (_compute_dram_level_times)
    bytes_a = tile_m * tile_k * eb
    bytes_b = tile_k * tile_n * eb
    bytes_c = tile_m * tile_n * eb
    # DramModel.transfer_seconds: bytes / bw + burst latency
    load_a = bytes_a / grid.read_bandwidth + TRANSFER_LATENCY_SECONDS
    load_b = bytes_b / grid.read_bandwidth + TRANSFER_LATENCY_SECONDS
    store_raw = bytes_c / grid.write_bandwidth + TRANSFER_LATENCY_SECONDS
    store_c = store_raw * (1.0 / tk)  # * plan.c_write_fraction

    # ---- total latency (_compute_estimate)
    load_inputs = load_a + load_b
    steady_db = np.maximum(np.maximum(load_inputs, aie_seconds), store_c)
    steady_sb = np.maximum(load_inputs, store_c) + aie_seconds
    steady = np.where(grid.pl_double_buffered, steady_db, steady_sb)
    traversal = load_inputs + aie_seconds + store_c * tk
    total = traversal + np.maximum(num_dram_tiles - 1, 0) * steady + grid.setup_seconds
    total = np.where(feasible, total, np.inf)

    return BatchEstimate(
        grid=grid,
        feasible=feasible,
        design_valid=design_valid,
        total_seconds=total,
        multiples=multiples,
        num_dram_tiles=num_dram_tiles,
        dram_tile_counts=np.stack([tm, tk, tn], axis=1),
        plio_a=plio_a,
        plio_b=plio_b,
        compute=compute,
        plio_c=plio_c,
        load_a=load_a,
        load_b=load_b,
        aie_seconds=aie_seconds,
        store_c=store_c,
    )


def batch_estimate_designs(
    designs: Sequence["CharmDesign"],
    workload: GemmShape | Sequence[GemmShape],
) -> BatchEstimate:
    """One-call convenience: grid construction plus evaluation."""
    return batch_estimate(CandidateGrid.from_designs(designs, workload))


def rank_feasible(batch: BatchEstimate) -> list[int]:
    """Feasible candidate indices, ranked exactly like the scalar DSE.

    The scalar explorer sorts points by ``(seconds, num_aies,
    num_plios)`` with a stable sort, so full ties keep candidate order;
    ``np.lexsort`` is stable with the same key priority, which makes the
    returned order byte-identical to the serial ranking (the batch totals
    themselves are bit-identical to the scalar ones).
    """
    index = np.flatnonzero(batch.feasible)
    grid = batch.grid
    order = np.lexsort(
        (
            grid.num_plios[index],
            grid.num_aies[index],
            batch.total_seconds[index],
        )
    )
    return [int(i) for i in index[order]]
