"""Deterministic parallel mapping for batched model evaluations.

``parallel_map`` is the one fan-out primitive every batch driver uses:
it chunks the item list, dispatches chunks to a thread pool, and stitches
results back in input order, so parallel output is bit-identical to the
serial output for any pure ``fn``.  Threads (not processes) because the
evaluated objects hold unpicklable ``MappingProxyType`` device tables and
the work is fine-grained; on free-threaded builds the pool scales across
cores, elsewhere it still overlaps any I/O and keeps one code path.

Failure semantics: if a chunk's future raises, the chunk is retried
serially item-by-item — a transient worker failure degrades to the
serial path without losing items, while a deterministic ``fn`` error
surfaces exactly as it would have serially.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: chunks submitted per worker: small enough to amortise dispatch
#: overhead, large enough to balance uneven per-item cost
_CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a jobs request: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def default_chunksize(num_items: int, jobs: int) -> int:
    return max(1, math.ceil(num_items / (jobs * _CHUNKS_PER_WORKER)))


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    return [fn(item) for item in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` with ``jobs`` workers, order preserved.

    ``jobs=1`` (the default) runs the plain serial loop with zero pool
    overhead; ``jobs=0``/``None`` uses one worker per CPU.  Results are
    always returned in input order regardless of completion order.
    """
    materialized = list(items)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(materialized) <= 1:
        return [fn(item) for item in materialized]
    if chunksize is None:
        chunksize = default_chunksize(len(materialized), jobs)
    chunks = [
        materialized[start : start + chunksize]
        for start in range(0, len(materialized), chunksize)
    ]
    results: list[R] = []
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
        for future, chunk in zip(futures, chunks):
            try:
                results.extend(future.result())
            except Exception:
                # degrade to serial for this chunk; deterministic fn
                # errors re-raise here with serial semantics
                results.extend(fn(item) for item in chunk)
    return results
