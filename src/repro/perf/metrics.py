"""Lightweight timing/counter instrumentation for the evaluation engine.

Every batched evaluation path (DSE exploration, parameter sweeps,
sensitivity curves, serving prewarm) reports an :class:`EvalStats`
describing how much work it did and how much of it the memoization layer
absorbed.  The CLI surfaces the aggregate after a run (``--stats``).

The dataclasses remain the in-process *views* call sites read, but
:class:`StatsRegistry` also publishes every recorded batch into
:data:`repro.obs.metrics.GLOBAL_METRICS`, so ``--metrics-out`` exposes
the same counters in Prometheus/JSON form under the
``repro_eval_*`` / ``repro_fault_*`` names documented in
``docs/observability.md``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Iterator

from repro.obs.metrics import GLOBAL_METRICS


@dataclass
class EvalStats:
    """Counters for one batch of model evaluations.

    ``evaluations`` counts candidates actually pushed through the model
    (skipped/infeasible candidates count in ``skipped`` instead);
    ``cache_hits``/``cache_misses`` describe how the memoization layer
    behaved during the batch; ``wall_seconds`` is the batch wall time.
    """

    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    skipped: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1

    @property
    def attempted(self) -> int:
        """Candidates considered, feasible or not."""
        return self.evaluations + self.skipped

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups served from memory."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def evals_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.evaluations / self.wall_seconds

    def merge(self, other: "EvalStats") -> "EvalStats":
        """Fold ``other`` into this instance (returns self for chaining)."""
        self.evaluations += other.evaluations
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.skipped += other.skipped
        self.wall_seconds += other.wall_seconds
        self.jobs = max(self.jobs, other.jobs)
        return self

    def snapshot(self) -> "EvalStats":
        """An immutable-by-convention copy of the current counters."""
        return EvalStats(
            evaluations=self.evaluations,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            skipped=self.skipped,
            wall_seconds=self.wall_seconds,
            jobs=self.jobs,
        )

    def delta_since(self, snapshot: "EvalStats") -> "EvalStats":
        """Counters accumulated since ``snapshot`` was taken.

        The standard way to publish one operation's contribution to
        ``GLOBAL_STATS`` when the operation mutates a long-lived stats
        object: take a snapshot before, record the delta after.
        """
        return EvalStats(
            evaluations=self.evaluations - snapshot.evaluations,
            cache_hits=self.cache_hits - snapshot.cache_hits,
            cache_misses=self.cache_misses - snapshot.cache_misses,
            skipped=self.skipped - snapshot.skipped,
            wall_seconds=self.wall_seconds - snapshot.wall_seconds,
            jobs=self.jobs,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "skipped": self.skipped,
            "wall_seconds": self.wall_seconds,
            "jobs": self.jobs,
            "hit_rate": self.hit_rate,
            "evals_per_second": self.evals_per_second,
        }

    def summary(self) -> str:
        return (
            f"{self.evaluations} evaluations ({self.skipped} skipped) in "
            f"{self.wall_seconds * 1e3:.1f} ms with jobs={self.jobs}; "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.hit_rate:.0%})"
        )


@contextmanager
def track(stats: EvalStats) -> Iterator[EvalStats]:
    """Time a block of work into ``stats.wall_seconds``."""
    start = time.perf_counter()
    try:
        yield stats
    finally:
        stats.wall_seconds += time.perf_counter() - start


@dataclass
class FaultStats:
    """Counters for one fault-injected serving run.

    ``windows`` is the schedule size; ``kills`` counts executions a down
    window interrupted; ``retries`` the retry attempts consumed;
    ``requeues`` the attempts deferred to a schedule transition because
    nothing was usable; ``shed``/``completed`` partition the offered
    requests.
    """

    windows: int = 0
    kills: int = 0
    retries: int = 0
    requeues: int = 0
    shed: int = 0
    completed: int = 0

    def merge(self, other: "FaultStats") -> "FaultStats":
        self.windows += other.windows
        self.kills += other.kills
        self.retries += other.retries
        self.requeues += other.requeues
        self.shed += other.shed
        self.completed += other.completed
        return self

    def as_dict(self) -> dict[str, Any]:
        return {
            "windows": self.windows,
            "kills": self.kills,
            "retries": self.retries,
            "requeues": self.requeues,
            "shed": self.shed,
            "completed": self.completed,
        }

    def summary(self) -> str:
        return (
            f"{self.windows} fault windows: {self.kills} kills, "
            f"{self.retries} retries, {self.requeues} requeues, "
            f"{self.shed} shed / {self.completed} completed"
        )


class StatsRegistry:
    """Session-scoped accumulator the CLI drains for ``--stats``.

    Thread-safe: parallel ``jobs=N`` evaluators and the serving
    simulator publish concurrently, so ``record``/``record_faults`` and
    ``reset`` hold a lock around the merge (dataclass ``merge`` is a
    multi-field read-modify-write and would lose updates otherwise).
    Each recorded batch is mirrored into the process-wide
    :data:`repro.obs.metrics.GLOBAL_METRICS` registry; the dataclass
    attributes stay as views so existing call sites keep working.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.total = EvalStats()
        self.batches = 0
        self.faults = FaultStats()
        self.fault_runs = 0

    def record(self, stats: EvalStats) -> None:
        with self._lock:
            self.total.merge(stats)
            self.batches += 1
        _publish_eval(stats)

    def record_faults(self, stats: FaultStats) -> None:
        with self._lock:
            self.faults.merge(stats)
            self.fault_runs += 1
        _publish_faults(stats)

    def snapshot(self) -> EvalStats:
        """A lock-consistent copy of the aggregate evaluation counters.

        Pairs with :meth:`EvalStats.delta_since` so measurement
        wrappers (``repro.bench``) can attribute exactly the
        evaluations one operation contributed:
        ``before = GLOBAL_STATS.snapshot(); ...;
        delta = GLOBAL_STATS.snapshot().delta_since(before)``.
        """
        with self._lock:
            return self.total.snapshot()

    def reset(self) -> None:
        with self._lock:
            self.total = EvalStats()
            self.batches = 0
            self.faults = FaultStats()
            self.fault_runs = 0
        GLOBAL_METRICS.reset("repro_eval_")
        GLOBAL_METRICS.reset("repro_fault_")

    # -- cross-process merge --------------------------------------------
    def dump(self) -> dict[str, Any]:
        """A picklable snapshot a shard worker ships to its parent."""
        with self._lock:
            return {
                "total": self.total.snapshot(),
                "batches": self.batches,
                "faults": replace(self.faults),
                "fault_runs": self.fault_runs,
            }

    def merge_dump(self, dump: dict[str, Any]) -> None:
        """Fold a worker's :meth:`dump` into this registry.

        Deliberately does **not** mirror the merged counters into
        ``GLOBAL_METRICS``: the worker's own metrics registry already
        published them, and its dump is merged separately through
        :meth:`repro.obs.metrics.MetricsRegistry.merge_dump` — routing
        them here too would double-count every ``repro_eval_*`` /
        ``repro_fault_*`` series.
        """
        with self._lock:
            self.total.merge(dump["total"])
            self.batches += dump["batches"]
            self.faults.merge(dump["faults"])
            self.fault_runs += dump["fault_runs"]


def _publish_eval(stats: EvalStats) -> None:
    """Mirror one evaluation batch onto the metrics registry."""
    metrics = GLOBAL_METRICS
    metrics.counter(
        "repro_eval_evaluations_total", "Model evaluations performed"
    ).inc(stats.evaluations)
    metrics.counter(
        "repro_eval_cache_hits_total", "Evaluations served from the memo cache"
    ).inc(stats.cache_hits)
    metrics.counter(
        "repro_eval_cache_misses_total", "Evaluations that missed the memo cache"
    ).inc(stats.cache_misses)
    metrics.counter(
        "repro_eval_skipped_total", "Infeasible candidates skipped"
    ).inc(stats.skipped)
    metrics.counter(
        "repro_eval_wall_seconds_total", "Wall time spent in evaluation batches"
    ).inc(max(stats.wall_seconds, 0.0))
    metrics.counter(
        "repro_eval_batches_total", "Evaluation batches recorded"
    ).inc(1)
    metrics.gauge(
        "repro_eval_jobs", "Peak worker count across recorded batches"
    ).max_(stats.jobs)


def _publish_faults(stats: FaultStats) -> None:
    """Mirror one fault-injected serving run onto the metrics registry."""
    metrics = GLOBAL_METRICS
    metrics.counter(
        "repro_fault_windows_total", "Fault windows in injected schedules"
    ).inc(stats.windows)
    metrics.counter(
        "repro_fault_kills_total", "Executions interrupted by a down window"
    ).inc(stats.kills)
    metrics.counter(
        "repro_fault_retries_total", "Retry attempts consumed"
    ).inc(stats.retries)
    metrics.counter(
        "repro_fault_requeues_total", "Attempts deferred to a schedule transition"
    ).inc(stats.requeues)
    metrics.counter(
        "repro_fault_shed_total", "Requests shed after exhausting retries"
    ).inc(stats.shed)
    metrics.counter(
        "repro_fault_completed_total", "Requests completed under faults"
    ).inc(stats.completed)
    metrics.counter(
        "repro_fault_runs_total", "Fault-injected serving runs recorded"
    ).inc(1)


#: process-wide registry; batch evaluators publish here so the CLI can
#: report one aggregate line regardless of which subsystems ran
GLOBAL_STATS = StatsRegistry()
