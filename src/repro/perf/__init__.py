"""Evaluation engine: memoization, parallel fan-out and instrumentation.

The batch drivers (DSE, sweeps, sensitivity, serving, experiments) all
funnel their candidate evaluations through this package so one cache,
one fan-out primitive and one stats format serve the whole library.
"""

from repro.perf.cache import (
    DEFAULT_CACHE,
    NULL_CACHE,
    EvalCache,
    NullCache,
    clear_cache,
    design_fingerprint,
    get_cache,
)
from repro.perf.metrics import GLOBAL_STATS, EvalStats, StatsRegistry, track
from repro.perf.parallel import default_chunksize, parallel_map, resolve_jobs
from repro.perf.vectorized import (
    BatchEstimate,
    CandidateGrid,
    batch_estimate,
    batch_estimate_designs,
    rank_feasible,
)

__all__ = [
    "DEFAULT_CACHE",
    "NULL_CACHE",
    "EvalCache",
    "NullCache",
    "clear_cache",
    "design_fingerprint",
    "get_cache",
    "GLOBAL_STATS",
    "EvalStats",
    "StatsRegistry",
    "track",
    "default_chunksize",
    "parallel_map",
    "resolve_jobs",
    "BatchEstimate",
    "CandidateGrid",
    "batch_estimate",
    "batch_estimate_designs",
    "rank_feasible",
]
