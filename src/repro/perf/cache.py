"""Keyed memoization for the analytical-model evaluation path.

The model is a pure function of ``(design, workload, plan)``, yet the
batch drivers (DSE, sweeps, sensitivity, serving) historically re-derived
identical sub-results thousands of times.  :class:`EvalCache` memoizes
the three levels of the computation:

* design fingerprint            -> :class:`~repro.core.analytical_model.AieLevelTimes`
* (fingerprint, plan)           -> :class:`~repro.core.analytical_model.DramLevelTimes`
* (fingerprint, workload, plan) -> :class:`~repro.core.analytical_model.Estimate`

Designs are frozen dataclasses but hold a :class:`types.MappingProxyType`
(the device's MACs/cycle table), so they are not directly hashable;
:func:`design_fingerprint` canonicalises a design into a hashable tuple.

Thread-safe: batch evaluators share one cache across worker threads.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
from typing import TYPE_CHECKING, Any, Callable, Hashable, Mapping, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports perf)
    from repro.mapping.charm import CharmDesign

T = TypeVar("T")

#: entries per table before the oldest half is evicted (FIFO); bounds
#: memory during long serving runs without LRU bookkeeping on the hot path
DEFAULT_MAX_ENTRIES = 65536


def _freeze(value: Any) -> Hashable:
    """Recursively convert a value into a hashable canonical form."""
    if isinstance(value, enum.Enum):
        return (type(value).__qualname__, value.name)
    if isinstance(value, Mapping):
        return tuple(
            sorted(((_freeze(k), _freeze(v)) for k, v in value.items()), key=repr)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_freeze(v) for v in value), key=repr))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__qualname__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    return value


def design_fingerprint(design: "CharmDesign") -> Hashable:
    """A hashable key capturing everything the model reads from a design.

    Two designs with equal fingerprints produce bit-identical estimates
    for any workload: the fingerprint covers the hardware configuration,
    the full device spec (sensitivity studies perturb frequency, PL
    memory fraction, DRAM bandwidth...), and the design-level switches
    (kernel style, comm scheme, buffering).
    """
    return _freeze(design)


class EvalCache:
    """Hit/miss-counted memo tables for the three evaluation levels."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.max_entries = max_entries
        self._tables: dict[str, dict[Hashable, Any]] = {
            "aie_level": {},
            "dram_level": {},
            "estimate": {},
        }
        self._hits: dict[str, int] = {name: 0 for name in self._tables}
        self._misses: dict[str, int] = {name: 0 for name in self._tables}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def get_or_compute(
        self, table: str, key: Hashable, compute: Callable[[], T]
    ) -> T:
        """Return the memoized value for ``key``, computing it on a miss.

        ``compute`` runs outside the lock; concurrent misses on the same
        key may both compute, but the model is pure so either result is
        correct and only one is retained.
        """
        entries = self._tables[table]
        with self._lock:
            if key in entries:
                self._hits[table] += 1
                return entries[key]
            self._misses[table] += 1
        value = compute()
        with self._lock:
            if len(entries) >= self.max_entries:
                # FIFO eviction of the oldest half (dicts preserve order)
                for stale in list(entries)[: self.max_entries // 2]:
                    del entries[stale]
            entries.setdefault(key, value)
            return entries[key]

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return sum(self._hits.values())

    @property
    def misses(self) -> int:
        return sum(self._misses.values())

    @property
    def entries(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-table hit/miss/size counters (a snapshot)."""
        with self._lock:
            return {
                name: {
                    "hits": self._hits[name],
                    "misses": self._misses[name],
                    "entries": len(table),
                }
                for name, table in self._tables.items()
            }

    def reset_counters(self) -> None:
        """Zero the hit/miss counters without dropping any entries.

        The CLI calls this at the start of every invocation so ``--stats``
        reports per-run numbers even when ``main`` runs repeatedly in one
        process (tests, notebooks) against the warm process-wide cache.
        """
        with self._lock:
            for name in self._hits:
                self._hits[name] = 0
                self._misses[name] = 0

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            for table in self._tables.values():
                table.clear()
            for name in self._hits:
                self._hits[name] = 0
                self._misses[name] = 0


class NullCache(EvalCache):
    """A cache that never retains anything — the uncached baseline.

    Used by benchmarks to measure the seed serial path, and available to
    callers that must bound memory at exactly zero.
    """

    def __init__(self):
        super().__init__(max_entries=0)

    def get_or_compute(
        self, table: str, key: Hashable, compute: Callable[[], T]
    ) -> T:
        with self._lock:
            self._misses[table] += 1
        return compute()


#: process-wide default shared by every model instance unless overridden
DEFAULT_CACHE = EvalCache()

#: singleton uncached baseline
NULL_CACHE = NullCache()


def get_cache() -> EvalCache:
    """The process-wide evaluation cache."""
    return DEFAULT_CACHE


def clear_cache() -> None:
    """Reset the process-wide cache (tests, benchmarks)."""
    DEFAULT_CACHE.clear()
