"""Keyed memoization for the analytical-model evaluation path.

The model is a pure function of ``(design, workload, plan)``, yet the
batch drivers (DSE, sweeps, sensitivity, serving) historically re-derived
identical sub-results thousands of times.  :class:`EvalCache` memoizes
the three levels of the computation:

* design fingerprint            -> :class:`~repro.core.analytical_model.AieLevelTimes`
* (fingerprint, plan)           -> :class:`~repro.core.analytical_model.DramLevelTimes`
* (fingerprint, workload, plan) -> :class:`~repro.core.analytical_model.Estimate`

Designs are frozen dataclasses but hold a :class:`types.MappingProxyType`
(the device's MACs/cycle table), so they are not directly hashable;
:func:`design_fingerprint` canonicalises a design into a hashable tuple.

Thread-safe: batch evaluators share one cache across worker threads.

The cache can also persist across processes: :meth:`EvalCache.load_disk`
and :meth:`EvalCache.save_disk` read/write a versioned snapshot under a
cache directory (the CLI's ``--cache-dir``), so ``versal-gemm serve`` /
``dse`` warm-start instead of re-deriving every estimate.  The snapshot
is written atomically (temp file + ``os.replace``) and stamped with
:data:`CACHE_SCHEMA_VERSION`; a missing, corrupt, or version-mismatched
file silently degrades to a cold start — persistence is an optimization,
never a correctness dependency.
"""

from __future__ import annotations

import dataclasses
import enum
import os
import pickle
import tempfile
import threading
import types
from typing import TYPE_CHECKING, Any, Callable, Hashable, Mapping, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports perf)
    from repro.mapping.charm import CharmDesign

T = TypeVar("T")

#: entries per table before the oldest half is evicted (FIFO); bounds
#: memory during long serving runs without LRU bookkeeping on the hot path
DEFAULT_MAX_ENTRIES = 65536

#: bump whenever the fingerprint scheme or a cached value type changes
#: shape — old snapshots then cold-start instead of poisoning the cache
CACHE_SCHEMA_VERSION = 1

#: snapshot file name inside a cache directory; the version is part of
#: the name so a schema bump never even opens an old snapshot
DISK_BASENAME = f"evalcache-v{CACHE_SCHEMA_VERSION}.pkl"


def _restore_mapping_proxy(data: dict) -> types.MappingProxyType:
    """Unpickle target for proxies (the type itself has no pickle name)."""
    return types.MappingProxyType(data)


class _CachePickler(pickle.Pickler):
    """Pickler that round-trips ``MappingProxyType`` faithfully.

    Cached estimates reference their design, and designs carry the
    device's read-only MACs/cycle table as a mapping proxy — which the
    stock pickler rejects.  Reducing it through
    :func:`_restore_mapping_proxy` reconstructs an equal proxy on load.
    """

    def reducer_override(self, obj):
        if isinstance(obj, types.MappingProxyType):
            return _restore_mapping_proxy, (dict(obj),)
        return NotImplemented


def _freeze(value: Any) -> Hashable:
    """Recursively convert a value into a hashable canonical form."""
    if isinstance(value, enum.Enum):
        return (type(value).__qualname__, value.name)
    if isinstance(value, Mapping):
        return tuple(
            sorted(((_freeze(k), _freeze(v)) for k, v in value.items()), key=repr)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_freeze(v) for v in value), key=repr))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__qualname__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    return value


def design_fingerprint(design: "CharmDesign") -> Hashable:
    """A hashable key capturing everything the model reads from a design.

    Two designs with equal fingerprints produce bit-identical estimates
    for any workload: the fingerprint covers the hardware configuration,
    the full device spec (sensitivity studies perturb frequency, PL
    memory fraction, DRAM bandwidth...), and the design-level switches
    (kernel style, comm scheme, buffering).
    """
    return _freeze(design)


class EvalCache:
    """Hit/miss-counted memo tables for the three evaluation levels."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        self.max_entries = max_entries
        self._tables: dict[str, dict[Hashable, Any]] = {
            "aie_level": {},
            "dram_level": {},
            "estimate": {},
        }
        self._hits: dict[str, int] = {name: 0 for name in self._tables}
        self._misses: dict[str, int] = {name: 0 for name in self._tables}
        self._disk: dict[str, int] = {"loaded": 0, "saved": 0, "cold_starts": 0}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def get_or_compute(
        self, table: str, key: Hashable, compute: Callable[[], T]
    ) -> T:
        """Return the memoized value for ``key``, computing it on a miss.

        ``compute`` runs outside the lock; concurrent misses on the same
        key may both compute, but the model is pure so either result is
        correct and only one is retained.
        """
        entries = self._tables[table]
        with self._lock:
            if key in entries:
                self._hits[table] += 1
                return entries[key]
            self._misses[table] += 1
        value = compute()
        with self._lock:
            if len(entries) >= self.max_entries:
                # FIFO eviction of the oldest half (dicts preserve order)
                for stale in list(entries)[: self.max_entries // 2]:
                    del entries[stale]
            entries.setdefault(key, value)
            return entries[key]

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return sum(self._hits.values())

    @property
    def misses(self) -> int:
        return sum(self._misses.values())

    @property
    def entries(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-table hit/miss/size counters (a snapshot)."""
        with self._lock:
            return {
                name: {
                    "hits": self._hits[name],
                    "misses": self._misses[name],
                    "entries": len(table),
                }
                for name, table in self._tables.items()
            }

    def disk_stats(self) -> dict[str, int]:
        """Entries loaded from / saved to disk and silent cold starts."""
        with self._lock:
            return dict(self._disk)

    # ------------------------------------------------------------------
    def load_disk(self, directory: str) -> int:
        """Warm-start from a snapshot under ``directory``.

        Returns the number of entries loaded.  A missing, corrupt,
        truncated, or schema-mismatched snapshot is a silent cold start
        (returns 0): the cache must never make a run worse than running
        cold.  Loaded entries never evict fresher in-memory ones and
        respect ``max_entries`` per table.
        """
        path = os.path.join(directory, DISK_BASENAME)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            with self._lock:
                self._disk["cold_starts"] += 1
            return 0
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_SCHEMA_VERSION
            or not isinstance(payload.get("tables"), dict)
        ):
            with self._lock:
                self._disk["cold_starts"] += 1
            return 0
        loaded = 0
        with self._lock:
            for name, entries in payload["tables"].items():
                table = self._tables.get(name)
                if table is None or not isinstance(entries, dict):
                    continue
                budget = self.max_entries - len(table)
                for key, value in entries.items():
                    if budget <= 0:
                        break
                    if key not in table:
                        table[key] = value
                        loaded += 1
                        budget -= 1
            self._disk["loaded"] += loaded
        return loaded

    def save_disk(self, directory: str) -> int:
        """Atomically snapshot every table under ``directory``.

        Returns the number of entries written, or 0 when the snapshot
        could not be written (read-only filesystem, unpicklable entry) —
        persistence failures never propagate into the run.
        """
        with self._lock:
            snapshot = {name: dict(table) for name, table in self._tables.items()}
        payload = {"version": CACHE_SCHEMA_VERSION, "tables": snapshot}
        count = sum(len(table) for table in snapshot.values())
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=DISK_BASENAME + ".", dir=directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    _CachePickler(
                        handle, protocol=pickle.HIGHEST_PROTOCOL
                    ).dump(payload)
                os.replace(tmp_path, os.path.join(directory, DISK_BASENAME))
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except Exception:
            return 0
        with self._lock:
            self._disk["saved"] += count
        return count

    def reset_counters(self) -> None:
        """Zero the hit/miss counters without dropping any entries.

        The CLI calls this at the start of every invocation so ``--stats``
        reports per-run numbers even when ``main`` runs repeatedly in one
        process (tests, notebooks) against the warm process-wide cache.
        """
        with self._lock:
            for name in self._hits:
                self._hits[name] = 0
                self._misses[name] = 0
            for name in self._disk:
                self._disk[name] = 0

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            for table in self._tables.values():
                table.clear()
            for name in self._hits:
                self._hits[name] = 0
                self._misses[name] = 0
            for name in self._disk:
                self._disk[name] = 0


class NullCache(EvalCache):
    """A cache that never retains anything — the uncached baseline.

    Used by benchmarks to measure the seed serial path, and available to
    callers that must bound memory at exactly zero.
    """

    def __init__(self):
        super().__init__(max_entries=0)

    def get_or_compute(
        self, table: str, key: Hashable, compute: Callable[[], T]
    ) -> T:
        with self._lock:
            self._misses[table] += 1
        return compute()


#: process-wide default shared by every model instance unless overridden
DEFAULT_CACHE = EvalCache()

#: singleton uncached baseline
NULL_CACHE = NullCache()


def get_cache() -> EvalCache:
    """The process-wide evaluation cache."""
    return DEFAULT_CACHE


def clear_cache() -> None:
    """Reset the process-wide cache (tests, benchmarks)."""
    DEFAULT_CACHE.clear()
