"""repro — Performance analysis of GEMM workloads on a simulated AMD Versal.

A faithful, board-free reproduction of *"Performance Analysis of GEMM
Workloads on the AMD Versal Platform"* (ISPASS 2025): the VCK5000 device
model, CHARM-style GEMM mapping (3-level tiling, cascade packs, PLIO
switching schemes), the paper's analytical performance model, and
discrete-event stand-ins for AMD's aiesimulator and hardware platforms.

Quickstart::

    from repro import AnalyticalModel, CharmDesign, GemmShape, config_by_name

    design = CharmDesign(config_by_name("C6"))
    estimate = AnalyticalModel(design).estimate(GemmShape(2048, 2048, 2048))
    print(estimate.total_seconds, estimate.bottleneck)
"""

from repro.workloads.gemm import GemmShape
from repro.workloads.dnn import DNN_WORKLOADS, DnnWorkload, workload_by_id
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.hw.specs import DeviceSpec, VCK5000, AIE_ML_DEVICE, device_by_name
from repro.hw.dram import DramModel, DramPorts
from repro.hw.interconnect import CommScheme, CommTimingModel
from repro.mapping.configs import (
    ALL_CONFIGS,
    FP32_CONFIGS,
    INT8_CONFIGS,
    HardwareConfig,
    config_by_name,
    configs_for,
)
from repro.mapping.grouping import AieGrouping
from repro.mapping.charm import CharmDesign, DesignError
from repro.mapping.tiling import TilePlan, plan_tiling
from repro.mapping.plio_schemes import PlioScheme, reference_schemes, scheme_sweep
from repro.mapping.placement import CharmPlacer, Placement
from repro.mapping.fragmentation import FragmentationAnalysis
from repro.mapping.connectivity import ConnectivityGraph, build_connectivity
from repro.mapping.reduction import estimate_pl_reduction
from repro.core.analytical_model import AnalyticalModel, Estimate
from repro.core.breakdown import Bottleneck, ExecutionBreakdown
from repro.core.roofline import Roofline
from repro.core.dse import DesignSpaceExplorer
from repro.core.fusion import FusionPlanner, PostOp
from repro.core.energy import EnergyModel
from repro.core.sensitivity import SensitivityAnalysis
from repro.core.e2e import ModelEstimator
from repro.core.multi_acc import AcceleratorPartition, GemmJob, MultiAccScheduler
from repro.workloads.transformer import MODEL_ZOO, TransformerConfig, model_by_name
from repro.core.calibrate import fit_noc, fit_pl_fraction
from repro.kernels.emulator import AieKernelEmulator
from repro.sim.aiesim import simulate_kernel, simulate_graph
from repro.sim.cluster import simulate_cluster
from repro.sim.hwsim import HwSimulator, HwRunResult
from repro.sim.functional import FunctionalGemm
from repro.sim.platforms import PLATFORMS, run_on_platform
from repro.sim.trace import ExecutionTrace
from repro.sim.events import EventSimulator, Task
from repro.sim.dnnsim import DnnSimulator
from repro.sim.serving import (
    LoadSweepPoint,
    LoadSweepResult,
    ServingReport,
    ServingSimulator,
    generate_trace,
    load_sweep,
)
from repro.sim.streaming import (
    QuantileSketch,
    SoATrace,
    StreamingServingReport,
    generate_trace_soa,
    generate_trace_shard,
)
from repro.sim.cluster_serving import (
    FleetReport,
    ShardedServingCluster,
    serve_sharded,
)
from repro.core.pareto import pareto_front, knee_point
from repro.core.dse import DseResult
from repro.perf import EvalCache, EvalStats, clear_cache, get_cache, parallel_map
from repro.host import Device as HostDevice

__version__ = "1.0.0"

__all__ = [
    "GemmShape",
    "DNN_WORKLOADS",
    "DnnWorkload",
    "workload_by_id",
    "Precision",
    "KernelStyle",
    "SingleAieGemmKernel",
    "DeviceSpec",
    "VCK5000",
    "AIE_ML_DEVICE",
    "device_by_name",
    "DramModel",
    "DramPorts",
    "CommScheme",
    "CommTimingModel",
    "ALL_CONFIGS",
    "FP32_CONFIGS",
    "INT8_CONFIGS",
    "HardwareConfig",
    "config_by_name",
    "configs_for",
    "AieGrouping",
    "CharmDesign",
    "DesignError",
    "TilePlan",
    "plan_tiling",
    "PlioScheme",
    "reference_schemes",
    "scheme_sweep",
    "AnalyticalModel",
    "Estimate",
    "Bottleneck",
    "ExecutionBreakdown",
    "Roofline",
    "DesignSpaceExplorer",
    "DseResult",
    "EvalCache",
    "EvalStats",
    "clear_cache",
    "get_cache",
    "parallel_map",
    "CharmPlacer",
    "Placement",
    "FragmentationAnalysis",
    "FusionPlanner",
    "PostOp",
    "EnergyModel",
    "SensitivityAnalysis",
    "ModelEstimator",
    "AcceleratorPartition",
    "GemmJob",
    "MultiAccScheduler",
    "MODEL_ZOO",
    "TransformerConfig",
    "model_by_name",
    "fit_noc",
    "fit_pl_fraction",
    "AieKernelEmulator",
    "simulate_kernel",
    "simulate_graph",
    "simulate_cluster",
    "HwSimulator",
    "HwRunResult",
    "FunctionalGemm",
    "PLATFORMS",
    "run_on_platform",
    "ExecutionTrace",
    "EventSimulator",
    "Task",
    "DnnSimulator",
    "ServingSimulator",
    "ServingReport",
    "generate_trace",
    "generate_trace_soa",
    "SoATrace",
    "StreamingServingReport",
    "QuantileSketch",
    "generate_trace_shard",
    "FleetReport",
    "ShardedServingCluster",
    "serve_sharded",
    "load_sweep",
    "LoadSweepPoint",
    "LoadSweepResult",
    "pareto_front",
    "knee_point",
    "HostDevice",
    "ConnectivityGraph",
    "build_connectivity",
    "estimate_pl_reduction",
    "__version__",
]
