"""Programmable-logic memory: BRAM/URAM budgeting for tile buffers.

The PL provides the middle level of the memory hierarchy (Fig. 2): DRAM
tiles of A, B and the C partials live in BRAM/URAM while they are
streamed to/from the AIE array.  Section V-J explains why the raw 24 MB
is not usable in full: feeding the AIEs requires maximising BRAM *ports*,
which spreads data across many half-empty BRAMs, and double buffering
doubles every input footprint.  :class:`PlMemoryBudget` applies those
rules when validating a tile plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import DeviceSpec, VCK5000


@dataclass(frozen=True)
class PlBufferRequirement:
    """Bytes of PL storage a tile plan needs for one matrix."""

    name: str
    bytes_per_buffer: int
    double_buffered: bool

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_buffer * (2 if self.double_buffered else 1)


class PlMemoryBudget:
    """Checks buffer requirements against the usable PL memory."""

    def __init__(self, device: DeviceSpec = VCK5000):
        self.device = device

    @property
    def capacity_bytes(self) -> int:
        """Usable tile-buffer capacity (port-limited fraction of 24 MB)."""
        return self.device.pl_usable_bytes

    @property
    def raw_bytes(self) -> int:
        return self.device.pl_memory_bytes

    def required_bytes(self, requirements: list[PlBufferRequirement]) -> int:
        return sum(r.total_bytes for r in requirements)

    def fits(self, requirements: list[PlBufferRequirement]) -> bool:
        return self.required_bytes(requirements) <= self.capacity_bytes

    def occupancy(self, requirements: list[PlBufferRequirement]) -> float:
        return self.required_bytes(requirements) / self.capacity_bytes

    def bram_banks_for(self, num_bytes: int, port_width_bytes: int = 8) -> int:
        """BRAMs needed for ``num_bytes`` given the banking the AIE feed
        rate forces (one bank per parallel port of ``port_width_bytes``).

        Illustrates Section V-J's underutilisation: small, wide buffers
        consume whole BRAMs.
        """
        if num_bytes <= 0:
            return 0
        bram_bytes = self.device.bram_bits // 8
        by_capacity = -(-num_bytes // bram_bytes)
        return max(by_capacity, 1)
