"""AIE data-memory banks: placement and conflict accounting.

Each AIE tile's 32 KB data memory is physically four 8 KB banks; the
vector unit and the incoming/outgoing DMA streams access banks
concurrently, and two simultaneous accesses to the *same* bank serialise
(a bank conflict).  Kernel buffer placement therefore matters: the
canonical GEMM kernel spreads A/B ping-pong buffers across banks so DMA
writes never collide with the compute reads.

:class:`TileMemory` allocates buffers bank-aware and
:func:`conflict_factor` quantifies the slowdown of a placement — the
micro-level justification for the kernel model's assumption that
double-buffered streams don't steal compute cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bank geometry of a first-generation AIE tile.
NUM_BANKS = 4
BANK_BYTES = 8 * 1024
#: Extra cycles per conflicting access pair (one access stalls).
CONFLICT_PENALTY = 1.0


class AllocationError(MemoryError):
    """The buffer does not fit the remaining bank space."""


@dataclass(frozen=True)
class BufferAllocation:
    """A buffer placed on one or more banks."""

    name: str
    num_bytes: int
    banks: tuple[int, ...]

    @property
    def spans_banks(self) -> int:
        return len(self.banks)


@dataclass
class TileMemory:
    """One tile's banked data memory with a first-fit allocator."""

    bank_free: list[int] = field(default_factory=lambda: [BANK_BYTES] * NUM_BANKS)
    allocations: list[BufferAllocation] = field(default_factory=list)

    @property
    def total_free(self) -> int:
        return sum(self.bank_free)

    def allocate(self, name: str, num_bytes: int, prefer_bank: int | None = None) -> BufferAllocation:
        """Place a buffer; spills across consecutive banks when needed."""
        if num_bytes <= 0:
            raise ValueError("buffer size must be positive")
        if num_bytes > self.total_free:
            raise AllocationError(
                f"{name}: {num_bytes} B requested, {self.total_free} B free"
            )
        order = list(range(NUM_BANKS))
        if prefer_bank is not None:
            if not 0 <= prefer_bank < NUM_BANKS:
                raise ValueError(f"bank {prefer_bank} out of range")
            order = order[prefer_bank:] + order[:prefer_bank]
        # first, try a single bank that fits the whole buffer
        for bank in order:
            if self.bank_free[bank] >= num_bytes:
                self.bank_free[bank] -= num_bytes
                allocation = BufferAllocation(name, num_bytes, (bank,))
                self.allocations.append(allocation)
                return allocation
        # otherwise spill greedily across banks in order
        remaining = num_bytes
        used = []
        for bank in order:
            if remaining == 0:
                break
            take = min(self.bank_free[bank], remaining)
            if take > 0:
                self.bank_free[bank] -= take
                used.append(bank)
                remaining -= take
        allocation = BufferAllocation(name, num_bytes, tuple(used))
        self.allocations.append(allocation)
        return allocation

    def banks_of(self, name: str) -> tuple[int, ...]:
        for allocation in self.allocations:
            if allocation.name == name:
                return allocation.banks
        raise KeyError(name)


def conflict_factor(
    compute_buffers: list[BufferAllocation],
    dma_buffers: list[BufferAllocation],
) -> float:
    """Slowdown multiplier when DMA and compute share banks.

    1.0 = conflict-free placement; each (compute, DMA) buffer pair that
    shares a bank adds :data:`CONFLICT_PENALTY` fractional stall per
    access pair, approximated as a uniform rate multiplier.
    """
    conflicts = 0
    pairs = 0
    for c in compute_buffers:
        for d in dma_buffers:
            pairs += 1
            if set(c.banks) & set(d.banks):
                conflicts += 1
    if pairs == 0:
        return 1.0
    return 1.0 + CONFLICT_PENALTY * conflicts / pairs


def canonical_gemm_placement(
    bytes_a: int, bytes_b: int, bytes_c: int
) -> tuple[TileMemory, float]:
    """The production kernel's placement: ping buffers on banks 0/1,
    pong buffers on banks 2/3, so the DMA's pong writes never collide
    with the compute's ping reads.

    Returns the populated memory and the conflict factor of the active
    phase (compute on ping, DMA on pong).
    """
    memory = TileMemory()
    ping = [
        memory.allocate("a_ping", bytes_a, prefer_bank=0),
        memory.allocate("b_ping", bytes_b, prefer_bank=1),
        memory.allocate("c_ping", bytes_c, prefer_bank=0),
    ]
    pong = [
        memory.allocate("a_pong", bytes_a, prefer_bank=2),
        memory.allocate("b_pong", bytes_b, prefer_bank=3),
        memory.allocate("c_pong", bytes_c, prefer_bank=2),
    ]
    return memory, conflict_factor(ping, pong)
