"""Hardware model of the AMD Versal platform (VCK5000 and AIE-ML)."""

from repro.hw.specs import DeviceSpec, VCK5000, AIE_ML_DEVICE, device_by_name
from repro.hw.dram import DramModel, DramPorts
from repro.hw.noc import NocModel
from repro.hw.plio import PlioDirection, PlioPort, PlioAllocator
from repro.hw.pl import PlMemoryBudget
from repro.hw.aie import AieTile
from repro.hw.aie_array import AieArray
from repro.hw.interconnect import (
    CommScheme,
    CommTimingModel,
    ChainTiming,
)

__all__ = [
    "DeviceSpec",
    "VCK5000",
    "AIE_ML_DEVICE",
    "device_by_name",
    "DramModel",
    "DramPorts",
    "NocModel",
    "PlioDirection",
    "PlioPort",
    "PlioAllocator",
    "PlMemoryBudget",
    "AieTile",
    "AieArray",
    "CommScheme",
    "CommTimingModel",
    "ChainTiming",
]
