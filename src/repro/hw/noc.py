"""Network-on-Chip model: vertical lanes, virtual channels, port assignment.

The VCK5000 exposes four vertical NoC lanes between the PL and the DDR
controllers, each with 8 interleaved virtual channels and 16 GB/s of
bandwidth.  The Vitis NoC compiler infers port-to-channel assignment from
QoS hints and — as the paper found (Section IV-C) — the resulting
placement cannot be steered, so achieved bandwidth saturates at 34 GB/s
(34% of the 102.4 GB/s theoretical) no matter how many HLS ports the
design adds:

* 2r1w (3 ports)  -> 20 GB/s
* 4r2w (6 ports)  -> 34 GB/s
* more ports      -> still 34 GB/s

:class:`NocModel` reproduces those three published operating points with
an inspectable mechanism: ports are placed on VCs lane-major over a
limited ``lane_spread`` (the compiler does not use all four lanes), the
first VC of a lane sustains :data:`VC_EFFECTIVE_BANDWIDTH`, a second
interleaved VC adds only :data:`SECOND_VC_FACTOR` of that, and further
VCs on the same lane add nothing — interleaving contention saturates the
lane.  Both degradation constants are calibrations, documented here, and
the model exposes them so what-if studies (e.g. a steerable NoC) can
override them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import DeviceSpec, VCK5000

#: Bandwidth the first streaming VC of a lane sustains for an HLS port
#: (calibrated: 3 ports spread over 3 lanes -> 20 GB/s).
VC_EFFECTIVE_BANDWIDTH = 20e9 / 3
#: Relative contribution of the second interleaved VC on the same lane
#: (calibrated: 6 ports -> 34 GB/s).  VCs beyond the second add nothing.
SECOND_VC_FACTOR = 0.7
#: Lanes the Vitis-inferred assignment actually spreads ports across.
DEFAULT_LANE_SPREAD = 3


@dataclass(frozen=True)
class PortAssignment:
    """Where one design port landed: (lane index, virtual channel index)."""

    port: int
    lane: int
    vc: int


class NocModel:
    """Simulates Vitis-style NoC port assignment and resulting bandwidth."""

    def __init__(
        self,
        device: DeviceSpec = VCK5000,
        lane_spread: int | None = None,
        vc_bandwidth: float = VC_EFFECTIVE_BANDWIDTH,
        second_vc_factor: float = SECOND_VC_FACTOR,
    ):
        if lane_spread is None:
            # the Vitis-observed spread, clamped for degraded devices
            lane_spread = min(DEFAULT_LANE_SPREAD, device.noc_lanes)
        if not 1 <= lane_spread <= device.noc_lanes:
            raise ValueError(f"lane_spread must be in [1, {device.noc_lanes}]")
        self.device = device
        self.lane_spread = lane_spread
        self.vc_bandwidth = vc_bandwidth
        self.second_vc_factor = second_vc_factor

    def assign_ports(self, num_ports: int) -> list[PortAssignment]:
        """Assign design ports to (lane, VC) pairs, same-lane biased.

        Ports fill VCs round-robin over only ``lane_spread`` lanes,
        mirroring the paper's observation that the NoC compiler does not
        distribute ports across all vertical lanes.
        """
        if num_ports < 1:
            raise ValueError("num_ports must be >= 1")
        capacity = self.lane_spread * self.device.noc_vcs_per_lane
        if num_ports > capacity:
            raise ValueError(
                f"{num_ports} ports exceed the {capacity} virtual channels "
                f"reachable with lane_spread={self.lane_spread}"
            )
        return [
            PortAssignment(port=port, lane=port % self.lane_spread, vc=port // self.lane_spread)
            for port in range(num_ports)
        ]

    def lane_bandwidth(self, vcs_active: int) -> float:
        """Sustained bandwidth of one lane with ``vcs_active`` streaming VCs."""
        if vcs_active <= 0:
            return 0.0
        effective_vcs = 1.0 + self.second_vc_factor * min(vcs_active - 1, 1)
        return min(self.vc_bandwidth * effective_vcs, self.device.noc_lane_bandwidth)

    def achieved_bandwidth(self, num_ports: int) -> float:
        """Aggregate bandwidth of ``num_ports`` ports under this assignment."""
        assignments = self.assign_ports(num_ports)
        vcs_per_lane: dict[int, int] = {}
        for assignment in assignments:
            vcs_per_lane[assignment.lane] = vcs_per_lane.get(assignment.lane, 0) + 1
        return sum(self.lane_bandwidth(count) for count in vcs_per_lane.values())

    def lanes_used(self, num_ports: int) -> int:
        return len({a.lane for a in self.assign_ports(num_ports)})

    def plateau_bandwidth(self) -> float:
        """Bandwidth ceiling of this assignment policy (34 GB/s calibrated)."""
        return self.lane_spread * self.lane_bandwidth(2)

    def utilization(self, num_ports: int) -> float:
        """Fraction of theoretical DRAM bandwidth achieved."""
        return self.achieved_bandwidth(num_ports) / self.device.dram_bandwidth
