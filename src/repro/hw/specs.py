"""Device specifications: every speed and feed from Section III as data.

``VCK5000`` is the board the paper characterises.  ``AIE_ML_DEVICE`` is a
second-generation AIE-ML part (Section V-K) included to demonstrate that
the whole analysis pipeline transfers to newer silicon: more MACs/cycle,
larger local memory, improved AIE-AIE bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.kernels.precision import Precision


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a Versal device + board."""

    name: str
    # ----- AIE array -----
    aie_rows: int
    aie_cols: int
    aie_freq_hz: float
    aie_memory_bytes: int
    macs_per_cycle: Mapping[Precision, int]
    #: cascade (partial-sum) link width, bytes per AIE cycle (384-bit)
    cascade_bytes_per_cycle: float
    #: one switch stream, bytes per AIE cycle (32-bit)
    stream_bytes_per_cycle: float
    # ----- AIE <-> PL interface -----
    num_interface_tiles: int
    plio_in_per_tile: int
    plio_out_per_tile: int
    #: sustained bandwidth of one PLIO stream, bytes/s (64-bit @ 500 MHz)
    plio_bandwidth: float
    #: PLIOs a realistic design can actually claim before routing/placement
    #: fails.  Calibrated from the paper's utilisation arithmetic (a
    #: 36-PLIO scheme replicates 7x before exhausting PLIOs).
    usable_plios: int
    # ----- PL -----
    pl_freq_hz: float
    bram_count: int
    bram_bits: int
    uram_count: int
    uram_bits: int
    #: fraction of raw PL memory a streaming design can usefully fill:
    #: maximising BRAM ports spreads data thinly and double buffering
    #: doubles the footprint (Section V-J's "effective on-chip storage
    #: capacity is lower").
    pl_usable_fraction: float
    # ----- NoC / DRAM -----
    noc_lanes: int
    noc_lane_bandwidth: float
    noc_vcs_per_lane: int
    dram_channels: int
    dram_channel_bandwidth: float
    #: fixed AIE setup time the paper calibrates into its model (100 us)
    aie_setup_seconds: float = 100e-6

    # ------------------------------------------------------------------
    # Derived quantities (all match Section III's published numbers)
    # ------------------------------------------------------------------
    @property
    def num_aies(self) -> int:
        return self.aie_rows * self.aie_cols

    def peak_ops(self, precision: Precision, num_aies: int | None = None) -> float:
        """Peak throughput in ops/s: freq * MACs/cycle * #AIEs * 2."""
        aies = self.num_aies if num_aies is None else num_aies
        return self.aie_freq_hz * self.macs_per_cycle[precision] * aies * 2

    @property
    def total_plio_in(self) -> int:
        """PL -> AIE streams (8 per interface tile on VCK5000)."""
        return self.num_interface_tiles * self.plio_in_per_tile

    @property
    def total_plio_out(self) -> int:
        """AIE -> PL streams (6 per interface tile on VCK5000)."""
        return self.num_interface_tiles * self.plio_out_per_tile

    @property
    def pl_to_aie_bandwidth(self) -> float:
        """Aggregate PL->AIE bandwidth (1.2 TB/s on VCK5000)."""
        return self.plio_bandwidth * self.total_plio_in

    @property
    def aie_to_pl_bandwidth(self) -> float:
        """Aggregate AIE->PL bandwidth (0.9 TB/s on VCK5000)."""
        return self.plio_bandwidth * self.total_plio_out

    @property
    def bram_bytes(self) -> int:
        return self.bram_count * self.bram_bits // 8

    @property
    def uram_bytes(self) -> int:
        return self.uram_count * self.uram_bits // 8

    @property
    def pl_memory_bytes(self) -> int:
        """Raw PL memory (BRAM + URAM), ~24 MB on VCK5000."""
        return self.bram_bytes + self.uram_bytes

    @property
    def pl_usable_bytes(self) -> int:
        """Effective on-chip tile storage after port/banking constraints."""
        return int(self.pl_memory_bytes * self.pl_usable_fraction)

    @property
    def dram_bandwidth(self) -> float:
        """Theoretical DRAM bandwidth (102.4 GB/s on VCK5000)."""
        return self.dram_channels * self.dram_channel_bandwidth

    @property
    def noc_pl_bandwidth(self) -> float:
        """PL-side NoC ceiling: all vertical lanes (64 GB/s on VCK5000)."""
        return self.noc_lanes * self.noc_lane_bandwidth

    @property
    def aie_total_memory_bytes(self) -> int:
        """Aggregate AIE-array local memory (12.8 MB on VCK5000)."""
        return self.num_aies * self.aie_memory_bytes

    def plio_bytes_per_aie_cycle(self) -> float:
        """One PLIO stream's delivery rate in bytes per AIE cycle (3.2)."""
        return self.plio_bandwidth / self.aie_freq_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.aie_freq_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.aie_freq_hz


VCK5000 = DeviceSpec(
    name="VCK5000",
    aie_rows=8,
    aie_cols=50,
    aie_freq_hz=1.25e9,
    aie_memory_bytes=32 * 1024,
    macs_per_cycle=MappingProxyType(
        {Precision.FP32: 8, Precision.INT16: 32, Precision.INT8: 128}
    ),
    cascade_bytes_per_cycle=48.0,  # 384-bit cascade
    stream_bytes_per_cycle=4.0,  # 32-bit switch stream
    num_interface_tiles=39,
    plio_in_per_tile=8,
    plio_out_per_tile=6,
    plio_bandwidth=4e9,
    usable_plios=280,
    pl_freq_hz=230e6,
    bram_count=967,
    bram_bits=36 * 1024,
    uram_count=463,
    uram_bits=288 * 1024,
    pl_usable_fraction=0.20,
    noc_lanes=4,
    noc_lane_bandwidth=16e9,
    noc_vcs_per_lane=8,
    dram_channels=4,
    dram_channel_bandwidth=25.6e9,
)

#: Second-generation AIE-ML device (Section V-K), modelled on the
#: VE2802-class parts: fewer but beefier tiles (64 KB local memory,
#: 256 INT8 MACs/cycle), FP32 emulated on the bf16 datapath.
AIE_ML_DEVICE = DeviceSpec(
    name="AIE-ML",
    aie_rows=8,
    aie_cols=38,
    aie_freq_hz=1.25e9,
    aie_memory_bytes=64 * 1024,
    macs_per_cycle=MappingProxyType(
        {Precision.FP32: 16, Precision.INT16: 64, Precision.INT8: 256}
    ),
    cascade_bytes_per_cycle=64.0,
    stream_bytes_per_cycle=4.0,
    num_interface_tiles=36,
    plio_in_per_tile=8,
    plio_out_per_tile=6,
    plio_bandwidth=4e9,
    usable_plios=260,
    pl_freq_hz=250e6,
    bram_count=600,
    bram_bits=36 * 1024,
    uram_count=264,
    uram_bits=288 * 1024,
    pl_usable_fraction=0.20,
    noc_lanes=4,
    noc_lane_bandwidth=16e9,
    noc_vcs_per_lane=8,
    dram_channels=4,
    dram_channel_bandwidth=25.6e9,
)

_DEVICES = {spec.name.lower(): spec for spec in (VCK5000, AIE_ML_DEVICE)}


def device_by_name(name: str) -> DeviceSpec:
    try:
        return _DEVICES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_DEVICES))
        raise KeyError(f"unknown device {name!r}; known: {known}") from None
