"""AIE-to-AIE communication schemes and their timing (Fig. 8).

Partial sums flow between the AIEs of a reduction chain over one of
three physical mechanisms (Fig. 1):

* **Cascade** — the dedicated 384-bit nearest-neighbour link.  Wide
  enough (48 B/cycle vs. the 32 B/cycle an FP32 kernel produces) to keep
  the chain fully pipelined: zero exposed overhead.  The baseline every
  other scheme is normalised to.
* **Shared-memory buffer** — the producer writes the partial block into
  a neighbour-accessible buffer.  A *double* buffer lets producer and
  consumer overlap, costing only lock synchronisation per invocation;
  a *single* buffer ping-pongs them, exposing the lock round-trip plus
  the serialized write+read of the block.
* **Via-switch stream** — a 32-bit stream routed through the switch
  network, with *near*, *far* or *random* kernel placement.  The stream
  moves 4 B/cycle; when the chain's partial-sum bandwidth demand exceeds
  that, backpressure stalls the compute pipeline and the transfer time
  is exposed in full (the INT8 case: 16x the compute throughput of FP32
  but only 4x less data).  Below the limit, the window transfer overlaps
  with the next invocation and only hop latency plus per-packet header
  overhead shows.

Small-array (16-AIE) timings are produced entirely by these mechanisms.
For the maximum-array panels of Fig. 8 the dominant effects (PLIO/DMA
feed contention, placement scarcity, memory interference from buffer
allocation) are second-order artifacts of the full design; they are
applied as documented calibration factors in :data:`SCALE_CALIBRATION`,
taken from the paper's measurements.  :attr:`ChainTiming.calibrated`
records which path produced a number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hw.aie_array import HOP_LATENCY_CYCLES
from repro.hw.specs import DeviceSpec, VCK5000
from repro.kernels.kernel_timing import compute_cycles
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.workloads.gemm import GemmShape


class CommScheme(enum.Enum):
    """AIE-to-AIE partial-sum communication scheme."""

    CASCADE = "cascade"
    BUFFER_DOUBLE = "buffer_double"
    BUFFER_SINGLE = "buffer_single"
    VIA_SWITCH_NEAR = "via_switch_near"
    VIA_SWITCH_FAR = "via_switch_far"
    VIA_SWITCH_RANDOM = "via_switch_random"

    @property
    def is_via_switch(self) -> bool:
        return self.name.startswith("VIA_SWITCH")

    @property
    def is_buffer(self) -> bool:
        return self.name.startswith("BUFFER")

    def __str__(self) -> str:
        return self.value


#: Lock acquire/release round-trip when producer and consumer ping-pong a
#: single shared buffer (calibrated once against Fig 8's FP32/INT8 16-AIE
#: single-buffer overheads; the same value reproduces both).
SINGLE_BUFFER_LOCK_CYCLES = 1150
#: Lock synchronisation of a double buffer (overlap retained).
DOUBLE_BUFFER_SYNC_CYCLES = 40
#: Shared-memory port rate for buffer writes/reads, bytes per cycle.
SHARED_MEMORY_BYTES_PER_CYCLE = 48.0
#: Stream packet payload (bytes) and per-packet header/setup cycles for
#: via-switch transfers.
STREAM_PACKET_BYTES = 128
STREAM_PACKET_OVERHEAD_CYCLES = 8
#: Manhattan hop distance assumed per placement flavour on a small array.
PLACEMENT_HOPS = {
    CommScheme.VIA_SWITCH_NEAR: 2,
    CommScheme.VIA_SWITCH_RANDOM: 12,
    CommScheme.VIA_SWITCH_FAR: 25,
}

#: Fig. 8 maximum-array effects applied as calibrated slowdown ratios
#: (total time relative to cascade at the same scale).  ``None`` marks
#: configurations the paper could not build (via-switch far needs free
#: far-away tiles, which a maxed-out array doesn't have).
SCALE_CALIBRATION: dict[tuple[CommScheme, Precision], float | None] = {
    (CommScheme.BUFFER_DOUBLE, Precision.FP32): 1.22,
    (CommScheme.BUFFER_SINGLE, Precision.FP32): 1.32,
    (CommScheme.VIA_SWITCH_NEAR, Precision.FP32): 1.01,
    (CommScheme.VIA_SWITCH_RANDOM, Precision.FP32): 1.03,
    (CommScheme.VIA_SWITCH_FAR, Precision.FP32): None,
    (CommScheme.BUFFER_DOUBLE, Precision.INT8): 1.66,
    (CommScheme.BUFFER_SINGLE, Precision.INT8): 1.76,
    (CommScheme.VIA_SWITCH_NEAR, Precision.INT8): 1.16,
    (CommScheme.VIA_SWITCH_RANDOM, Precision.INT8): 1.80,
    (CommScheme.VIA_SWITCH_FAR, Precision.INT8): None,
}

#: AIE count above which the at-scale calibration applies (the paper's
#: "maximum possible AIEs" panels use 384 FP32 / 256 INT8).
SCALE_THRESHOLD_AIES = 128


@dataclass(frozen=True)
class ChainTiming:
    """Per-invocation timing of a reduction chain under one scheme."""

    scheme: CommScheme
    precision: Precision
    num_aies: int
    compute_cycles: float
    stall_cycles: float
    #: True when the number comes from the Fig. 8 at-scale calibration
    #: table rather than the mechanistic model.
    calibrated: bool = False
    #: None when the scheme cannot be built at this scale.
    feasible: bool = True

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.stall_cycles

    @property
    def overhead_ratio(self) -> float:
        """Slowdown relative to the cascade baseline (cascade == 1.0)."""
        return self.total_cycles / self.compute_cycles


class CommTimingModel:
    """Computes :class:`ChainTiming` for every scheme of Fig. 8."""

    def __init__(self, device: DeviceSpec = VCK5000):
        self.device = device

    # ------------------------------------------------------------------
    def partial_sum_bytes(self, kernel: GemmShape, precision: Precision) -> int:
        """Bytes of one partial-result block handed down the chain."""
        return kernel.elements_c() * precision.accumulator_bytes

    def chain_timing(
        self,
        scheme: CommScheme,
        precision: Precision,
        kernel: GemmShape,
        num_aies: int,
        style: KernelStyle = KernelStyle.INTRINSIC,
    ) -> ChainTiming:
        compute = compute_cycles(kernel, precision, style)
        at_scale = num_aies > SCALE_THRESHOLD_AIES

        if scheme is CommScheme.CASCADE:
            return ChainTiming(scheme, precision, num_aies, compute, 0.0)

        if at_scale:
            ratio = SCALE_CALIBRATION[(scheme, precision)]
            if ratio is None:
                return ChainTiming(
                    scheme, precision, num_aies, compute, 0.0,
                    calibrated=True, feasible=False,
                )
            return ChainTiming(
                scheme, precision, num_aies, compute,
                stall_cycles=(ratio - 1.0) * compute, calibrated=True,
            )

        partial = self.partial_sum_bytes(kernel, precision)
        if scheme is CommScheme.BUFFER_DOUBLE:
            return ChainTiming(
                scheme, precision, num_aies, compute,
                stall_cycles=DOUBLE_BUFFER_SYNC_CYCLES,
            )
        if scheme is CommScheme.BUFFER_SINGLE:
            transfer = 2 * partial / SHARED_MEMORY_BYTES_PER_CYCLE  # write + read
            return ChainTiming(
                scheme, precision, num_aies, compute,
                stall_cycles=SINGLE_BUFFER_LOCK_CYCLES + transfer,
            )
        return self._via_switch_timing(scheme, precision, kernel, num_aies, compute, partial)

    # ------------------------------------------------------------------
    def _via_switch_timing(
        self,
        scheme: CommScheme,
        precision: Precision,
        kernel: GemmShape,
        num_aies: int,
        compute: float,
        partial: int,
    ) -> ChainTiming:
        stream_rate = self.device.stream_bytes_per_cycle
        transfer = partial / stream_rate
        packets = -(-partial // STREAM_PACKET_BYTES)
        packet_overhead = packets * STREAM_PACKET_OVERHEAD_CYCLES
        hop_latency = PLACEMENT_HOPS[scheme] * HOP_LATENCY_CYCLES
        demand = partial / compute  # bytes the chain must move per compute cycle
        if demand > stream_rate:
            # Backpressure stalls the compute pipeline: the transfer time
            # is fully exposed (the paper's INT8 3.17-3.3x case).
            stall = transfer + packet_overhead + hop_latency
        else:
            # The window send overlaps with the next invocation; only the
            # hop latency and part of the packet overhead remain visible.
            stall = hop_latency + 0.25 * packet_overhead
        return ChainTiming(scheme, precision, num_aies, compute, stall)

    # ------------------------------------------------------------------
    def normalized_to_cascade(
        self,
        scheme: CommScheme,
        precision: Precision,
        kernel: GemmShape,
        num_aies: int,
    ) -> float | None:
        """Fig. 8 y-axis value: execution time / cascade execution time.

        Returns None for infeasible (scheme, scale) combinations.
        """
        timing = self.chain_timing(scheme, precision, kernel, num_aies)
        if not timing.feasible:
            return None
        return timing.overhead_ratio
