"""PLIO interfaces: the streams connecting the PL fabric to the AIE array.

Section III: interface tiles sit in the last row of the AIE array; each
PL interface tile offers 8 PL->AIE and 6 AIE->PL stream connections.  A
PLIO is 64-bit at up to 500 MHz, or 128-bit at half the clock — 4 GB/s
either way.  PLIOs are a scarce resource: Section V-H shows they dictate
both per-design performance and how many design replicas the array can
host.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hw.specs import DeviceSpec, VCK5000


class PlioDirection(enum.Enum):
    PL_TO_AIE = "pl_to_aie"  # inputs (matrices A and B)
    AIE_TO_PL = "aie_to_pl"  # outputs (matrix C)


@dataclass(frozen=True)
class PlioPort:
    """One configured PLIO stream."""

    name: str
    direction: PlioDirection
    width_bits: int = 128
    clock_hz: float = 250e6

    def __post_init__(self) -> None:
        if self.width_bits not in (32, 64, 128):
            raise ValueError(f"PLIO width must be 32/64/128 bits, got {self.width_bits}")

    @property
    def bandwidth(self) -> float:
        """Sustained bytes/s of this stream (width * clock)."""
        return self.width_bits / 8 * self.clock_hz


class PlioExhaustedError(RuntimeError):
    """Raised when a design requests more PLIOs than the device offers."""


class PlioAllocator:
    """Tracks PLIO usage against the device budget.

    Two budgets apply: the per-direction physical stream counts
    (8/6 per interface tile) and the practical routing budget
    ``device.usable_plios`` the paper's replication arithmetic implies.
    """

    def __init__(self, device: DeviceSpec = VCK5000):
        self.device = device
        self._allocated: list[PlioPort] = []

    @property
    def used_in(self) -> int:
        return sum(1 for p in self._allocated if p.direction is PlioDirection.PL_TO_AIE)

    @property
    def used_out(self) -> int:
        return sum(1 for p in self._allocated if p.direction is PlioDirection.AIE_TO_PL)

    @property
    def used_total(self) -> int:
        return len(self._allocated)

    @property
    def remaining_total(self) -> int:
        return self.device.usable_plios - self.used_total

    def allocate(self, name: str, direction: PlioDirection, width_bits: int = 128) -> PlioPort:
        if self.used_total >= self.device.usable_plios:
            raise PlioExhaustedError(
                f"design exceeds the usable PLIO budget ({self.device.usable_plios})"
            )
        if direction is PlioDirection.PL_TO_AIE and self.used_in >= self.device.total_plio_in:
            raise PlioExhaustedError(
                f"no PL->AIE streams left (max {self.device.total_plio_in})"
            )
        if direction is PlioDirection.AIE_TO_PL and self.used_out >= self.device.total_plio_out:
            raise PlioExhaustedError(
                f"no AIE->PL streams left (max {self.device.total_plio_out})"
            )
        port = PlioPort(name=name, direction=direction, width_bits=width_bits)
        self._allocated.append(port)
        return port

    def allocate_many(
        self, prefix: str, direction: PlioDirection, count: int
    ) -> list[PlioPort]:
        return [self.allocate(f"{prefix}{i}", direction) for i in range(count)]

    def max_replicas(self, plios_per_replica: int, aies_per_replica: int) -> int:
        """How many copies of a design fit on the device.

        Limited by both the PLIO budget and the AIE count — the trade-off
        at the heart of Fig. 13's right axis.
        """
        if plios_per_replica < 1 or aies_per_replica < 1:
            raise ValueError("replica resource counts must be positive")
        by_plio = self.device.usable_plios // plios_per_replica
        by_aie = self.device.num_aies // aies_per_replica
        return min(by_plio, by_aie)

    def array_utilization(self, plios_per_replica: int, aies_per_replica: int) -> float:
        """Fraction of the AIE array usable under the PLIO constraint."""
        replicas = self.max_replicas(plios_per_replica, aies_per_replica)
        return replicas * aies_per_replica / self.device.num_aies
