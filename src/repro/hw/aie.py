"""A single AI Engine tile.

Each tile holds a VLIW vector processor, 32 KB of tightly coupled memory,
stream switch ports, a 384-bit cascade input/output to its horizontal
neighbour, and shared-memory access to the three adjacent tiles
(Section III, Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.specs import DeviceSpec, VCK5000


@dataclass
class AieTile:
    """One AIE tile at array position (col, row)."""

    col: int
    row: int
    device: DeviceSpec = field(default=VCK5000, repr=False)
    #: bytes of data memory currently reserved by mapped buffers
    reserved_bytes: int = 0
    #: name of the kernel placed on this tile, if any
    kernel: str | None = None

    def __post_init__(self) -> None:
        if not (0 <= self.col < self.device.aie_cols):
            raise ValueError(f"column {self.col} outside array (0..{self.device.aie_cols - 1})")
        if not (0 <= self.row < self.device.aie_rows):
            raise ValueError(f"row {self.row} outside array (0..{self.device.aie_rows - 1})")

    @property
    def position(self) -> tuple[int, int]:
        return (self.col, self.row)

    @property
    def memory_bytes(self) -> int:
        return self.device.aie_memory_bytes

    @property
    def free_bytes(self) -> int:
        return self.memory_bytes - self.reserved_bytes

    def reserve(self, num_bytes: int) -> None:
        """Reserve data memory on this tile (raises if it doesn't fit)."""
        if num_bytes < 0:
            raise ValueError("cannot reserve negative memory")
        if num_bytes > self.free_bytes:
            raise MemoryError(
                f"tile {self.position}: {num_bytes} B requested, {self.free_bytes} B free"
            )
        self.reserved_bytes += num_bytes

    def release(self, num_bytes: int) -> None:
        if num_bytes < 0 or num_bytes > self.reserved_bytes:
            raise ValueError("release amount out of range")
        self.reserved_bytes -= num_bytes

    def place_kernel(self, name: str, data_bytes: int) -> None:
        """Place a kernel and reserve its buffers atomically."""
        if self.kernel is not None:
            raise RuntimeError(f"tile {self.position} already hosts kernel {self.kernel!r}")
        self.reserve(data_bytes)
        self.kernel = name

    @property
    def occupied(self) -> bool:
        return self.kernel is not None

    def cascade_successor(self) -> tuple[int, int] | None:
        """Position the cascade output feeds, snaking along rows.

        Even rows cascade left-to-right, odd rows right-to-left, and the
        chain turns upward at row ends — the physical cascade topology of
        the AIE array.
        """
        direction = 1 if self.row % 2 == 0 else -1
        nxt_col = self.col + direction
        if 0 <= nxt_col < self.device.aie_cols:
            return (nxt_col, self.row)
        if self.row + 1 < self.device.aie_rows:
            return (self.col, self.row + 1)
        return None

    def shared_memory_neighbors(self) -> list[tuple[int, int]]:
        """Tiles whose data memory this tile can address directly.

        An AIE reaches the memories of its west/east neighbour (depending
        on row parity) plus the tiles directly north and south.
        """
        candidates = [
            (self.col - 1 if self.row % 2 == 0 else self.col + 1, self.row),
            (self.col, self.row - 1),
            (self.col, self.row + 1),
        ]
        return [
            (c, r)
            for c, r in candidates
            if 0 <= c < self.device.aie_cols and 0 <= r < self.device.aie_rows
        ]
