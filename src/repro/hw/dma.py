"""HLS DMA datapath model: the design's DRAM-facing ports.

Section IV-C: the PL side of the design exposes HLS-generated AXI ports
of 512 bits running at the 230 MHz PL clock; DMA engines move matrix
tiles between DRAM and the PL buffers through them.  This module models
that datapath at descriptor granularity:

* a :class:`DmaPort` has a physical ceiling (width x clock) and the
  achieved NoC bandwidth of its virtual channel,
* a :class:`DmaEngine` splits a tile transfer into bursts, charges the
  per-burst setup latency, and reports the effective bandwidth — the
  "low efficiency for small sizes" the paper observes on hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.dram import DramModel, TRANSFER_LATENCY_SECONDS
from repro.hw.specs import DeviceSpec, VCK5000

#: AXI burst cap: 256 beats of 64 bytes.
MAX_BURST_BYTES = 256 * 64
#: Per-burst issue overhead on top of the one-time transfer setup.
BURST_ISSUE_SECONDS = 50e-9


@dataclass(frozen=True)
class DmaPort:
    """One HLS master port (512-bit @ PL clock)."""

    name: str
    width_bits: int = 512
    clock_hz: float = 230e6

    @property
    def physical_bandwidth(self) -> float:
        """What the port itself could stream (14.7 GB/s on VCK5000)."""
        return self.width_bits / 8 * self.clock_hz


@dataclass(frozen=True)
class DmaTransfer:
    """A completed (modelled) DMA transfer."""

    num_bytes: int
    bursts: int
    seconds: float

    @property
    def effective_bandwidth(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.num_bytes / self.seconds


class DmaEngine:
    """Moves tiles through one port at the achieved NoC bandwidth."""

    def __init__(
        self,
        port: DmaPort,
        dram: DramModel | None = None,
        device: DeviceSpec = VCK5000,
    ):
        self.port = port
        self.device = device
        self.dram = dram if dram is not None else DramModel(device)

    @property
    def sustained_bandwidth(self) -> float:
        """The port's real ceiling: min(physical, NoC virtual channel)."""
        return min(self.port.physical_bandwidth, self.dram.port_bandwidth())

    def transfer(self, num_bytes: int) -> DmaTransfer:
        """Model one tile transfer, burst segmentation included."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return DmaTransfer(0, 0, 0.0)
        bursts = math.ceil(num_bytes / MAX_BURST_BYTES)
        seconds = (
            TRANSFER_LATENCY_SECONDS
            + bursts * BURST_ISSUE_SECONDS
            + num_bytes / self.sustained_bandwidth
        )
        return DmaTransfer(num_bytes=num_bytes, bursts=bursts, seconds=seconds)

    def efficiency(self, num_bytes: int) -> float:
        """Achieved / sustained bandwidth for a transfer of this size."""
        if num_bytes <= 0:
            return 0.0
        return self.transfer(num_bytes).effective_bandwidth / self.sustained_bandwidth
