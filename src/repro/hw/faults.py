"""Fault injection: degraded-device what-ifs.

Boards degrade: AIE columns get fused off for yield, DDR channels fail,
thermal limits derate clocks, routing congestion eats PLIOs.  This
module derives *degraded* :class:`DeviceSpec` instances so designs can
be re-validated and re-estimated under faults — which Table II designs
survive losing an AIE column?  How much does half the DRAM hurt a
memory-bound configuration?

Faults compose: each injector returns a new spec, so chains like
``disable_aie_columns(derate_dram(device, 0.5), 2)`` express multi-fault
scenarios.  :mod:`repro.sim.chaos` lifts these static injectors into
*time-varying* fault schedules for the serving simulator.

Every injector validates its argument uniformly: counts must be plain
non-negative integers below the available resource, fractions must be
finite numbers in ``(0, 1]``; anything else (negative derates, >1
fractions, float column counts, booleans, NaN) raises
:class:`FaultError`.
"""

from __future__ import annotations

import dataclasses
import math

from repro.hw.specs import DeviceSpec, VCK5000

#: a degraded device never reports fewer PLIOs than this — even a
#: heavily-harvested array keeps a minimal set of routable streams
MIN_USABLE_PLIOS = 3


class FaultError(ValueError):
    """A fault specification is impossible."""


def _require_count(value: object, upper: int, what: str) -> int:
    """A plain integer count in ``[0, upper)`` — uniformly enforced."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise FaultError(f"{what} count must be an integer, got {value!r}")
    if not 0 <= value < upper:
        raise FaultError(f"cannot disable {value} of {upper} {what}s")
    return value


def _require_fraction(value: object, what: str) -> float:
    """A finite fraction in ``(0, 1]`` — uniformly enforced."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultError(f"{what} must be a number in (0, 1], got {value!r}")
    fraction = float(value)
    if not math.isfinite(fraction) or not 0.0 < fraction <= 1.0:
        raise FaultError(f"{what} must be in (0, 1], got {value!r}")
    return fraction


def disable_aie_columns(device: DeviceSpec, columns: int) -> DeviceSpec:
    """Fuse off whole AIE columns (yield harvesting / column faults)."""
    columns = _require_count(columns, device.aie_cols, "AIE column")
    # interface tiles sit under the array: losing columns loses them too
    interface_loss = round(device.num_interface_tiles * columns / device.aie_cols)
    return dataclasses.replace(
        device,
        name=f"{device.name}-cols-{columns}",
        aie_cols=device.aie_cols - columns,
        num_interface_tiles=device.num_interface_tiles - interface_loss,
        usable_plios=max(
            MIN_USABLE_PLIOS,
            device.usable_plios - interface_loss * device.plio_in_per_tile,
        ),
    )


def disable_dram_channels(device: DeviceSpec, channels: int) -> DeviceSpec:
    """Lose DDR4 channels (DIMM/controller faults)."""
    channels = _require_count(channels, device.dram_channels, "DRAM channel")
    return dataclasses.replace(
        device,
        name=f"{device.name}-dram-{channels}",
        dram_channels=device.dram_channels - channels,
        noc_lanes=max(1, device.noc_lanes - channels),
    )


def derate_clock(device: DeviceSpec, fraction: float) -> DeviceSpec:
    """Thermal derating: run the AIE array at a fraction of nominal."""
    fraction = _require_fraction(fraction, "clock derating fraction")
    return dataclasses.replace(
        device,
        name=f"{device.name}-clk-{fraction:g}",
        aie_freq_hz=device.aie_freq_hz * fraction,
        # PLIO streams are clocked with the array-side interface
        plio_bandwidth=device.plio_bandwidth * fraction,
    )


def derate_dram(device: DeviceSpec, fraction: float) -> DeviceSpec:
    """Derate per-channel DRAM bandwidth (throttling / marginal DIMMs).

    Unlike :func:`disable_dram_channels` every channel stays up, but
    each delivers only ``fraction`` of its nominal bandwidth — the
    refresh-storm / thermal-throttle failure mode.
    """
    fraction = _require_fraction(fraction, "DRAM derating fraction")
    return dataclasses.replace(
        device,
        name=f"{device.name}-drambw-{fraction:g}",
        dram_channel_bandwidth=device.dram_channel_bandwidth * fraction,
    )


def degrade_pl_memory(device: DeviceSpec, fraction: float) -> DeviceSpec:
    """Lose usable PL memory (column faults / ECC-disabled URAMs)."""
    fraction = _require_fraction(fraction, "remaining PL-memory fraction")
    return dataclasses.replace(
        device,
        name=f"{device.name}-pl-{fraction:g}",
        pl_usable_fraction=device.pl_usable_fraction * fraction,
    )


def surviving_configs(device: DeviceSpec = VCK5000) -> list[str]:
    """Which Table II configurations still build on this device?"""
    from repro.mapping.charm import CharmDesign
    from repro.mapping.configs import ALL_CONFIGS

    survivors = []
    for config in ALL_CONFIGS:
        if CharmDesign(config, device=device).is_valid():
            survivors.append(config.name)
    return survivors
