"""Fault injection: degraded-device what-ifs.

Boards degrade: AIE columns get fused off for yield, DDR channels fail,
thermal limits derate clocks, routing congestion eats PLIOs.  This
module derives *degraded* :class:`DeviceSpec` instances so designs can
be re-validated and re-estimated under faults — which Table II designs
survive losing an AIE column?  How much does half the DRAM hurt a
memory-bound configuration?

Faults compose: each injector returns a new spec, so chains like
``disable_aie_columns(derate_dram(device, 0.5), 2)`` express multi-fault
scenarios.
"""

from __future__ import annotations

import dataclasses

from repro.hw.specs import DeviceSpec, VCK5000


class FaultError(ValueError):
    """A fault specification is impossible."""


def disable_aie_columns(device: DeviceSpec, columns: int) -> DeviceSpec:
    """Fuse off whole AIE columns (yield harvesting / column faults)."""
    if not 0 <= columns < device.aie_cols:
        raise FaultError(f"cannot disable {columns} of {device.aie_cols} columns")
    # interface tiles sit under the array: losing columns loses them too
    interface_loss = round(device.num_interface_tiles * columns / device.aie_cols)
    return dataclasses.replace(
        device,
        name=f"{device.name}-cols-{columns}",
        aie_cols=device.aie_cols - columns,
        num_interface_tiles=device.num_interface_tiles - interface_loss,
        usable_plios=max(3, device.usable_plios - interface_loss * device.plio_in_per_tile),
    )


def disable_dram_channels(device: DeviceSpec, channels: int) -> DeviceSpec:
    """Lose DDR4 channels (DIMM/controller faults)."""
    if not 0 <= channels < device.dram_channels:
        raise FaultError(f"cannot disable {channels} of {device.dram_channels} channels")
    return dataclasses.replace(
        device,
        name=f"{device.name}-dram-{channels}",
        dram_channels=device.dram_channels - channels,
        noc_lanes=max(1, device.noc_lanes - channels),
    )


def derate_clock(device: DeviceSpec, fraction: float) -> DeviceSpec:
    """Thermal derating: run the AIE array at a fraction of nominal."""
    if not 0 < fraction <= 1.0:
        raise FaultError("derating fraction must be in (0, 1]")
    return dataclasses.replace(
        device,
        name=f"{device.name}-clk-{fraction:g}",
        aie_freq_hz=device.aie_freq_hz * fraction,
        # PLIO streams are clocked with the array-side interface
        plio_bandwidth=device.plio_bandwidth * fraction,
    )


def degrade_pl_memory(device: DeviceSpec, fraction: float) -> DeviceSpec:
    """Lose usable PL memory (column faults / ECC-disabled URAMs)."""
    if not 0 < fraction <= 1.0:
        raise FaultError("remaining fraction must be in (0, 1]")
    return dataclasses.replace(
        device,
        name=f"{device.name}-pl-{fraction:g}",
        pl_usable_fraction=device.pl_usable_fraction * fraction,
    )


def surviving_configs(device: DeviceSpec = VCK5000) -> list[str]:
    """Which Table II configurations still build on this device?"""
    from repro.mapping.charm import CharmDesign
    from repro.mapping.configs import ALL_CONFIGS

    survivors = []
    for config in ALL_CONFIGS:
        if CharmDesign(config, device=device).is_valid():
            survivors.append(config.name)
    return survivors
