"""DRAM access model: design ports, achieved bandwidth, transfer times.

Section IV-C ("DRAM interfacing"): the VCK5000's PL reaches DDR4 through
four vertical NoC lanes, but the Vitis NoC compiler assigns a design's
HLS ports to virtual channels without giving the user control over lane
placement.  The paper measures:

* 2 read + 1 write ports (CHARM's default) -> 20 GB/s
* 4 read + 2 write ports                   -> 34 GB/s
* more ports                               -> no further improvement

i.e. ~6.7 GB/s per port up to a 34 GB/s plateau (34% of the 102.4 GB/s
theoretical).  ``DramModel`` delegates the achieved-bandwidth question to
:class:`repro.hw.noc.NocModel`, which reproduces those operating points
mechanistically.  Small transfers additionally pay a fixed burst-setup
latency (the paper's "efficiency of DRAM bandwidth is low for smaller
sizes").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.noc import NocModel
from repro.hw.specs import DeviceSpec, VCK5000

#: Burst/setup latency charged once per DMA transfer.
TRANSFER_LATENCY_SECONDS = 2e-6


@dataclass(frozen=True)
class DramPorts:
    """An HLS design's DRAM port configuration, e.g. 4r2w."""

    reads: int
    writes: int

    def __post_init__(self) -> None:
        if self.reads < 1 or self.writes < 1:
            raise ValueError("a GEMM design needs at least one read and one write port")

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def __str__(self) -> str:
        return f"{self.reads}r{self.writes}w"

    @classmethod
    def parse(cls, text: str) -> "DramPorts":
        """Parse the paper's ``NrMw`` notation (e.g. ``"4r2w"``)."""
        lowered = text.lower()
        if "r" not in lowered or not lowered.endswith("w"):
            raise ValueError(f"expected NrMw notation, got {text!r}")
        reads, rest = lowered.split("r", 1)
        return cls(int(reads), int(rest[:-1]))


#: The two port setups the paper evaluates.
CHARM_DEFAULT_PORTS = DramPorts(2, 1)
IMPROVED_PORTS = DramPorts(4, 2)


class DramModel:
    """Achieved-DRAM-bandwidth model for a given device and port setup."""

    def __init__(
        self,
        device: DeviceSpec = VCK5000,
        ports: DramPorts = IMPROVED_PORTS,
        noc: NocModel | None = None,
    ):
        self.device = device
        self.ports = ports
        self.noc = noc if noc is not None else NocModel(device)

    # ------------------------------------------------------------------
    # Bandwidth
    # ------------------------------------------------------------------
    def total_bandwidth(self) -> float:
        """Aggregate achieved bandwidth across all design ports."""
        return self.noc.achieved_bandwidth(self.ports.total)

    def port_bandwidth(self) -> float:
        """Achieved bandwidth of one design port."""
        return self.total_bandwidth() / self.ports.total

    def read_bandwidth(self, ports_used: int | None = None) -> float:
        """Bandwidth available to a read stream using ``ports_used`` ports."""
        used = self.ports.reads if ports_used is None else ports_used
        if used > self.ports.reads:
            raise ValueError(f"only {self.ports.reads} read ports available")
        return self.port_bandwidth() * used

    def write_bandwidth(self, ports_used: int | None = None) -> float:
        used = self.ports.writes if ports_used is None else ports_used
        if used > self.ports.writes:
            raise ValueError(f"only {self.ports.writes} write ports available")
        return self.port_bandwidth() * used

    def utilization(self) -> float:
        """Fraction of theoretical DRAM bandwidth achieved (34% at 4r2w)."""
        return self.total_bandwidth() / self.device.dram_bandwidth

    # ------------------------------------------------------------------
    # Transfer timing
    # ------------------------------------------------------------------
    def transfer_seconds(self, num_bytes: int, bandwidth: float | None = None) -> float:
        """Time for one DMA transfer, including burst-setup latency."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        bw = self.total_bandwidth() if bandwidth is None else bandwidth
        return num_bytes / bw + TRANSFER_LATENCY_SECONDS

    def effective_bandwidth(self, num_bytes: int) -> float:
        """Achieved bandwidth for a transfer of this size (drops when small)."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.transfer_seconds(num_bytes)
