"""The 2-D AI Engine array and its stream-switch network.

Models the 50x8 grid of the VCK5000 (400 tiles), the interface-tile row
at the bottom, and the switch network used by via-switch (stream)
connections.  Routing runs over a networkx grid graph so via-switch hop
counts, placements (near / far / random) and link congestion can be
measured rather than assumed — these feed the Fig. 8 communication-scheme
study.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from repro.hw.aie import AieTile
from repro.hw.specs import DeviceSpec, VCK5000

#: Switch traversal latency per hop, in AIE cycles (stream register stage).
HOP_LATENCY_CYCLES = 4


@dataclass(frozen=True)
class Route:
    """A routed stream through the switch network."""

    source: tuple[int, int]
    dest: tuple[int, int]
    hops: tuple[tuple[int, int], ...]

    @property
    def hop_count(self) -> int:
        return len(self.hops) - 1

    @property
    def latency_cycles(self) -> int:
        return self.hop_count * HOP_LATENCY_CYCLES


class AieArray:
    """The AIE array: tile grid + switch network + placement bookkeeping."""

    def __init__(self, device: DeviceSpec = VCK5000):
        self.device = device
        self.tiles = {
            (col, row): AieTile(col, row, device)
            for col in range(device.aie_cols)
            for row in range(device.aie_rows)
        }
        self._graph = nx.grid_2d_graph(device.aie_cols, device.aie_rows)
        #: stream flows currently routed, per link (for congestion analysis)
        self._link_flows: dict[frozenset[tuple[int, int]], int] = {}

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    def tile(self, col: int, row: int) -> AieTile:
        return self.tiles[(col, row)]

    def occupied_count(self) -> int:
        return sum(1 for t in self.tiles.values() if t.occupied)

    def utilization(self) -> float:
        return self.occupied_count() / self.num_tiles

    def free_positions(self) -> list[tuple[int, int]]:
        return [pos for pos, t in sorted(self.tiles.items()) if not t.occupied]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place_block(self, name_prefix: str, count: int, data_bytes: int = 0) -> list[AieTile]:
        """Place ``count`` kernels on contiguous free tiles (column-major).

        This is the compact placement cascade connections require: each
        kernel's cascade successor is physically adjacent.
        """
        free = self.free_positions()
        if count > len(free):
            raise RuntimeError(
                f"cannot place {count} kernels; only {len(free)} tiles free"
            )
        placed = []
        for i, pos in enumerate(free[:count]):
            tile = self.tiles[pos]
            tile.place_kernel(f"{name_prefix}{i}", data_bytes)
            placed.append(tile)
        return placed

    def place_scattered(
        self, name_prefix: str, count: int, seed: int, data_bytes: int = 0
    ) -> list[AieTile]:
        """Place kernels on random free tiles (the compiler's 'random'
        placement in the Fig. 8 via-switch experiments)."""
        free = self.free_positions()
        if count > len(free):
            raise RuntimeError(
                f"cannot place {count} kernels; only {len(free)} tiles free"
            )
        rng = random.Random(seed)
        chosen = rng.sample(free, count)
        placed = []
        for i, pos in enumerate(chosen):
            tile = self.tiles[pos]
            tile.place_kernel(f"{name_prefix}{i}", data_bytes)
            placed.append(tile)
        return placed

    def reset_placement(self) -> None:
        for tile in self.tiles.values():
            tile.kernel = None
            tile.reserved_bytes = 0
        self._link_flows.clear()

    # ------------------------------------------------------------------
    # Via-switch routing
    # ------------------------------------------------------------------
    def route(self, src: tuple[int, int], dst: tuple[int, int]) -> Route:
        """Shortest-path route through the switch network, recording the
        flow on every traversed link for congestion accounting."""
        path = nx.shortest_path(self._graph, src, dst)
        for a, b in zip(path, path[1:]):
            link = frozenset((a, b))
            self._link_flows[link] = self._link_flows.get(link, 0) + 1
        return Route(source=src, dest=dst, hops=tuple(path))

    def max_link_congestion(self) -> int:
        """Largest number of flows sharing one switch link."""
        if not self._link_flows:
            return 0
        return max(self._link_flows.values())

    def mean_link_congestion(self) -> float:
        if not self._link_flows:
            return 0.0
        return sum(self._link_flows.values()) / len(self._link_flows)

    def distance(self, src: tuple[int, int], dst: tuple[int, int]) -> int:
        """Manhattan hop distance between two tiles."""
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])
