"""AIE lock protocol: the mechanism underneath ping-pong buffering.

Each AIE memory bank has hardware locks; DMA engines and kernels bracket
buffer accesses with acquire/release pairs.  Double ("ping-pong")
buffering is two buffers whose locks producers and consumers acquire in
alternation — the structural reason transfers overlap compute.  With a
single buffer the same protocol *serialises* producer and consumer; the
lock round-trips are the stall the Fig. 8 single-buffer bars measure.

:class:`LockedBufferPool` simulates the protocol at acquire/release
granularity and reports the producer/consumer stall cycles, giving the
interconnect model's ``SINGLE_BUFFER_LOCK_CYCLES`` calibration a
mechanistic counterpart that tests can compare against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Hardware lock acquire/release round-trip, cycles (per UG1079-class
#: figures: tens of cycles through the lock unit + stall/restart).
LOCK_ACQUIRE_CYCLES = 30.0
LOCK_RELEASE_CYCLES = 10.0


class LockState(enum.Enum):
    FOR_PRODUCER = "for_producer"
    FOR_CONSUMER = "for_consumer"


@dataclass
class Lock:
    """One hardware lock guarding one buffer."""

    name: str
    state: LockState = LockState.FOR_PRODUCER
    acquires: int = 0

    def acquire(self, want: LockState, now: float) -> float:
        """Acquire in state ``want``; returns the completion time.

        The caller is responsible for only acquiring when the state
        matches (the scheduler below enforces ordering); the cost model
        charges the acquire round-trip.
        """
        if self.state is not want:
            raise RuntimeError(f"lock {self.name} is {self.state}, wanted {want}")
        self.acquires += 1
        return now + LOCK_ACQUIRE_CYCLES

    def release(self, new_state: LockState, now: float) -> float:
        self.state = new_state
        return now + LOCK_RELEASE_CYCLES


@dataclass(frozen=True)
class PingPongReport:
    """Timing of a produce/consume stream through a buffer pool."""

    buffers: int
    items: int
    total_cycles: float
    producer_stall_cycles: float
    consumer_stall_cycles: float
    lock_overhead_cycles: float

    @property
    def stall_per_item(self) -> float:
        return (self.producer_stall_cycles + self.consumer_stall_cycles) / self.items


class LockedBufferPool:
    """Simulates N-buffer producer/consumer streaming with locks."""

    def __init__(self, buffers: int):
        if buffers < 1:
            raise ValueError("need at least one buffer")
        self.locks = [Lock(f"buf{i}") for i in range(buffers)]

    def stream(
        self,
        items: int,
        produce_cycles: float,
        consume_cycles: float,
    ) -> PingPongReport:
        """Stream ``items`` through the pool.

        The producer writes item t into buffer ``t % N`` (after acquiring
        it FOR_PRODUCER), releases it FOR_CONSUMER; the consumer mirrors.
        With N=2 the two proceed concurrently; with N=1 they ping-pong.
        """
        if items < 0:
            raise ValueError("items must be non-negative")
        n = len(self.locks)
        # consumer_done[t]: when the consumer released buffer (t % n)
        producer_time = 0.0
        consumer_time = 0.0
        buffer_ready_for_producer = [0.0] * n  # when consumer freed it
        buffer_ready_for_consumer = [0.0] * n  # when producer filled it
        producer_stall = consumer_stall = 0.0
        overhead = 0.0

        for t in range(items):
            b = t % n
            # producer side
            wait = max(0.0, buffer_ready_for_producer[b] - producer_time)
            producer_stall += wait
            producer_time += wait
            producer_time += LOCK_ACQUIRE_CYCLES + produce_cycles + LOCK_RELEASE_CYCLES
            overhead += LOCK_ACQUIRE_CYCLES + LOCK_RELEASE_CYCLES
            buffer_ready_for_consumer[b] = producer_time
            # consumer side
            wait = max(0.0, buffer_ready_for_consumer[b] - consumer_time)
            consumer_stall += wait
            consumer_time += wait
            consumer_time += LOCK_ACQUIRE_CYCLES + consume_cycles + LOCK_RELEASE_CYCLES
            overhead += LOCK_ACQUIRE_CYCLES + LOCK_RELEASE_CYCLES
            buffer_ready_for_producer[b] = consumer_time

        return PingPongReport(
            buffers=n,
            items=items,
            total_cycles=max(producer_time, consumer_time),
            producer_stall_cycles=producer_stall,
            consumer_stall_cycles=consumer_stall,
            lock_overhead_cycles=overhead,
        )
