"""AIE kernel models: precision, programming style and cycle timing."""

from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle, style_parameters, StyleParameters
from repro.kernels.kernel_timing import (
    compute_cycles,
    stream_cycles,
    KernelTiming,
    kernel_timing,
)
from repro.kernels.gemm_kernel import (
    SingleAieGemmKernel,
    MemoryVerdict,
    AIE_DATA_MEMORY_BYTES,
    NEIGHBOR_MEMORY_BYTES,
    MAX_DOUBLE_BUFFER_OPERAND_BYTES,
)

__all__ = [
    "Precision",
    "KernelStyle",
    "StyleParameters",
    "style_parameters",
    "compute_cycles",
    "stream_cycles",
    "KernelTiming",
    "kernel_timing",
    "SingleAieGemmKernel",
    "MemoryVerdict",
    "AIE_DATA_MEMORY_BYTES",
    "NEIGHBOR_MEMORY_BYTES",
    "MAX_DOUBLE_BUFFER_OPERAND_BYTES",
]
