"""Cycle-level timing model of a single-AIE GEMM kernel.

The model reproduces the mechanisms Section V-B/V-C attribute the observed
behaviour to:

* Compute: the vector unit updates ``lanes`` output elements per cycle,
  folding ``k_per_cycle`` reduction steps; each block of ``lanes`` outputs
  pays an exposed pipeline-drain cost, and each kernel invocation pays a
  fixed ramp (Section V-B's per-kernel overhead).  The programming style
  adds an initiation-interval multiplier (intrinsic = 1.0).
* Communication: operands stream over PLIOs at 4 GB/s per port
  (= 3.2 bytes per 1.25 GHz AIE cycle).  A and B use separate PLIOs, so
  their reads overlap with each other; with double buffering reads and the
  C write-back also overlap with compute (``max``), without it they
  serialise (``sum``).

These mechanisms alone reproduce the paper's structure: FP32 kernels are
mostly compute-bound (8 MACs/cycle is slow relative to 3.2 B/cycle
streams) while INT8 kernels are mostly communication-bound (compute grows
16x while data shrinks only 4x), with 128x128x128 the INT8 exception.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle, style_parameters
from repro.workloads.gemm import GemmShape

#: Bytes a single PLIO stream delivers per AIE cycle: 4 GB/s at 1.25 GHz.
PLIO_BYTES_PER_CYCLE = 3.2


def compute_cycles(
    shape: GemmShape,
    precision: Precision,
    style: KernelStyle = KernelStyle.INTRINSIC,
) -> float:
    """Cycles the vector unit needs to compute ``shape`` at ``precision``.

    ``blocks * (K / k_per_cycle + drain) * ii + ramp`` where a block is
    ``lanes`` output elements.
    """
    params = style_parameters(style, precision)
    blocks = math.ceil(shape.m * shape.n / precision.lanes)
    cycles_per_block = shape.k / precision.k_per_cycle + precision.drain_cycles
    return blocks * cycles_per_block * params.ii_multiplier + params.ramp_cycles


def ideal_compute_cycles(shape: GemmShape, precision: Precision) -> float:
    """Theoretical minimum cycles at peak MACs/cycle (the efficiency baseline)."""
    return shape.macs / precision.macs_per_cycle


def stream_cycles(
    num_bytes: int,
    num_plios: int = 1,
    bytes_per_cycle: float = PLIO_BYTES_PER_CYCLE,
) -> float:
    """Cycles to move ``num_bytes`` over ``num_plios`` parallel PLIO streams."""
    if num_plios < 1:
        raise ValueError("need at least one PLIO")
    return num_bytes / (num_plios * bytes_per_cycle)


@dataclass(frozen=True)
class KernelTiming:
    """Timing breakdown of one kernel invocation, in AIE cycles.

    ``read_a``/``read_b`` are PL->AIE input streams (parallel PLIOs, so the
    effective input time is their max), ``write_c`` is the AIE->PL output
    stream, ``compute`` is the vector-unit time.
    """

    shape: GemmShape
    precision: Precision
    style: KernelStyle
    read_a: float
    read_b: float
    write_c: float
    compute: float
    ideal_compute: float
    double_buffered: bool

    @property
    def communication(self) -> float:
        """Effective communication time: inputs overlap, output follows."""
        return max(self.read_a, self.read_b, self.write_c)

    @property
    def total(self) -> float:
        """Steady-state cycles per invocation.

        Double buffering overlaps communication with compute (take the
        max); disabling it serialises them (Section V-C).
        """
        if self.double_buffered:
            return max(self.compute, self.read_a, self.read_b, self.write_c)
        return self.compute + max(self.read_a, self.read_b) + self.write_c

    @property
    def efficiency(self) -> float:
        """Paper definition: theoretical peak time / observed time."""
        return self.ideal_compute / self.total

    @property
    def compute_bound(self) -> bool:
        return self.compute >= self.communication

    @property
    def bound(self) -> str:
        return "compute" if self.compute_bound else "communication"

    @property
    def overlap_cycles(self) -> float:
        """Cycles during which compute and communication proceed together."""
        if not self.double_buffered:
            return 0.0
        return min(self.compute, self.communication)

    def seconds(self, aie_freq_hz: float) -> float:
        return self.total / aie_freq_hz


def kernel_timing(
    shape: GemmShape,
    precision: Precision,
    style: KernelStyle = KernelStyle.INTRINSIC,
    double_buffered: bool = True,
    plios_a: int = 1,
    plios_b: int = 1,
    plios_c: int = 1,
) -> KernelTiming:
    """Build the timing breakdown for one kernel invocation."""
    eb = precision.element_bytes
    return KernelTiming(
        shape=shape,
        precision=precision,
        style=style,
        read_a=stream_cycles(shape.bytes_a(eb), plios_a),
        read_b=stream_cycles(shape.bytes_b(eb), plios_b),
        write_c=stream_cycles(shape.bytes_c(eb), plios_c),
        compute=compute_cycles(shape, precision, style),
        ideal_compute=ideal_compute_cycles(shape, precision),
        double_buffered=double_buffered,
    )
