"""Element-level AIE kernel emulator.

The cycle model in :mod:`repro.kernels.kernel_timing` asserts that a
GEMM kernel executes as ``blocks * (K/k_per_cycle + drain) + ramp``
cycles.  This module *executes* that schedule: an interpreter that walks
the vector datapath issue-by-issue — lane blocks, reduction steps,
accumulator drains, double-buffer swaps — producing both the numeric
result and the exact cycle count.  It is the ground truth the closed-form
model is tested against, and a reference for anyone porting the kernels
to real AIE intrinsics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.gemm_kernel import SingleAieGemmKernel
from repro.kernels.precision import Precision
from repro.kernels.programming import style_parameters
from repro.workloads.gemm import GemmShape

_DTYPES = {
    Precision.FP32: (np.float32, np.float64),
    Precision.INT16: (np.int16, np.int64),
    Precision.INT8: (np.int8, np.int64),
}


@dataclass(frozen=True)
class EmulationResult:
    """Outcome of emulating one kernel invocation."""

    shape: GemmShape
    cycles: float
    vector_issues: int
    drains: int
    result: np.ndarray

    def matches(self, reference: np.ndarray, tolerance: float = 1e-3) -> bool:
        if np.issubdtype(self.result.dtype, np.integer):
            return bool(np.array_equal(self.result, reference))
        denom = np.maximum(np.abs(reference), 1.0)
        return bool(np.max(np.abs(self.result - reference) / denom) <= tolerance)


class AieKernelEmulator:
    """Issue-accurate interpreter for the single-AIE GEMM kernel."""

    def __init__(self, kernel: SingleAieGemmKernel):
        if not kernel.is_feasible():
            raise ValueError(f"kernel {kernel.shape} violates the AIE memory rules")
        self.kernel = kernel
        self.precision = kernel.precision

    # ------------------------------------------------------------------
    def run(
        self, a: np.ndarray, b: np.ndarray, interpreted: bool = False
    ) -> EmulationResult:
        """Execute the kernel's vector schedule on concrete matrices.

        The default path evaluates all lane blocks at once with a blocked
        ``einsum`` (same schedule, array-at-a-time); ``interpreted=True``
        walks the original issue-by-issue interpreter.  Both produce
        bit-identical results and counters — the vectorized path applies
        the same float64 accumulation per k-chunk in the same order.
        """
        shape = self.kernel.shape
        if a.shape != (shape.m, shape.k) or b.shape != (shape.k, shape.n):
            raise ValueError("operand shapes do not match the kernel")
        if interpreted:
            return self._run_interpreted(a, b)
        return self._run_vectorized(a, b)

    def _run_vectorized(self, a: np.ndarray, b: np.ndarray) -> EmulationResult:
        """Blocked-``einsum`` execution of the same vector schedule.

        Output elements pad up to whole lane blocks (padding lanes
        recompute element (0, 0) and are discarded), each k-chunk is one
        accumulation step over all blocks — mirroring the interpreter's
        per-chunk ``+=`` so FP32 rounding behaviour is identical — and
        the issue/drain counters come from the block/chunk counts the
        loop structure makes closed-form.
        """
        shape = self.kernel.shape
        in_dtype, acc_dtype = _DTYPES[self.precision]
        a = a.astype(acc_dtype)
        b = b.astype(acc_dtype)
        lanes = self.precision.lanes
        k_step = self.precision.k_per_cycle
        params = style_parameters(self.kernel.style, self.precision)

        outputs = shape.m * shape.n
        blocks = -(-outputs // lanes)
        rows = np.repeat(np.arange(shape.m), shape.n)
        cols = np.tile(np.arange(shape.n), shape.m)
        pad = blocks * lanes - outputs
        if pad:
            rows = np.concatenate([rows, np.zeros(pad, dtype=rows.dtype)])
            cols = np.concatenate([cols, np.zeros(pad, dtype=cols.dtype)])
        lhs = a[rows].reshape(blocks, lanes, shape.k)
        rhs = b[:, cols].T.reshape(blocks, lanes, shape.k)

        accumulator = np.zeros((blocks, lanes), dtype=acc_dtype)
        chunks = 0
        for k0 in range(0, shape.k, k_step):
            k1 = min(k0 + k_step, shape.k)
            accumulator += np.einsum(
                "blc,blc->bl", lhs[:, :, k0:k1], rhs[:, :, k0:k1]
            )
            chunks += 1
        vector_issues = blocks * chunks
        drains = blocks

        c = np.zeros((shape.m, shape.n), dtype=acc_dtype)
        c.flat[:outputs] = accumulator.reshape(-1)[:outputs]

        loop_cycles = vector_issues + drains * self.precision.drain_cycles
        cycles = loop_cycles * params.ii_multiplier + params.ramp_cycles
        out_dtype = np.float32 if self.precision is Precision.FP32 else acc_dtype
        return EmulationResult(
            shape=shape,
            cycles=cycles,
            vector_issues=vector_issues,
            drains=drains,
            result=c.astype(out_dtype),
        )

    def _run_interpreted(self, a: np.ndarray, b: np.ndarray) -> EmulationResult:
        """The original issue-by-issue interpreter (ground truth)."""
        shape = self.kernel.shape
        in_dtype, acc_dtype = _DTYPES[self.precision]
        a = a.astype(acc_dtype)
        b = b.astype(acc_dtype)
        lanes = self.precision.lanes
        k_step = self.precision.k_per_cycle
        params = style_parameters(self.kernel.style, self.precision)

        c = np.zeros((shape.m, shape.n), dtype=acc_dtype)
        vector_issues = 0
        drains = 0

        # output elements are processed `lanes` at a time in row-major
        # order; each block accumulates over K in k_step chunks — one
        # vector issue per chunk — then drains its accumulator
        flat_outputs = [(i, j) for i in range(shape.m) for j in range(shape.n)]
        for base in range(0, len(flat_outputs), lanes):
            block = flat_outputs[base : base + lanes]
            accumulator = np.zeros(len(block), dtype=acc_dtype)
            for k0 in range(0, shape.k, k_step):
                k1 = min(k0 + k_step, shape.k)
                for lane, (i, j) in enumerate(block):
                    accumulator[lane] += a[i, k0:k1] @ b[k0:k1, j]
                vector_issues += 1
            for lane, (i, j) in enumerate(block):
                c[i, j] = accumulator[lane]
            drains += 1

        # the style's initiation interval stretches the whole loop body
        # (issue slots and drain bubbles alike), matching kernel_timing
        loop_cycles = vector_issues + drains * self.precision.drain_cycles
        cycles = loop_cycles * params.ii_multiplier + params.ramp_cycles
        out_dtype = np.float32 if self.precision is Precision.FP32 else acc_dtype
        return EmulationResult(
            shape=shape,
            cycles=cycles,
            vector_issues=vector_issues,
            drains=drains,
            result=c.astype(out_dtype),
        )

    def run_random(self, seed: int = 0) -> tuple[EmulationResult, np.ndarray]:
        """Emulate on random inputs; returns (emulation, numpy reference)."""
        shape = self.kernel.shape
        in_dtype, acc_dtype = _DTYPES[self.precision]
        rng = np.random.default_rng(seed)
        if self.precision is Precision.FP32:
            a = rng.standard_normal((shape.m, shape.k)).astype(in_dtype)
            b = rng.standard_normal((shape.k, shape.n)).astype(in_dtype)
        else:
            a = rng.integers(-8, 8, (shape.m, shape.k), dtype=in_dtype)
            b = rng.integers(-8, 8, (shape.k, shape.n), dtype=in_dtype)
        reference = a.astype(acc_dtype) @ b.astype(acc_dtype)
        if self.precision is Precision.FP32:
            reference = reference.astype(np.float32)
        return self.run(a, b), reference
