"""Kernel programming styles: low-level intrinsics vs the vendor API.

Section V-B compares kernels written with raw intrinsics (``fpmac``,
``mac16``) against the high-level ``aie::mmul`` API.  The paper measures a
46% performance reduction for the FP32 API kernel and 7% for INT8.  We
model the gap as an initiation-interval multiplier on the vector inner
loop plus a larger per-invocation ramp (function-call/setup) overhead —
the mechanism the vendor documentation attributes the difference to — with
the magnitudes calibrated to the published numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kernels.precision import Precision


class KernelStyle(enum.Enum):
    """How the AIE kernel source is written."""

    INTRINSIC = "intrinsic"
    API = "api"

    @classmethod
    def parse(cls, text: str) -> "KernelStyle":
        for member in cls:
            if member.value == text.lower():
                return member
        raise ValueError(f"unknown kernel style {text!r}")

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class StyleParameters:
    """Timing parameters of a (style, precision) pair.

    ``ii_multiplier`` scales the steady-state vector-loop time (an
    initiation interval of 1.0 means every cycle issues a vector MAC).
    ``ramp_cycles`` is the fixed per-kernel-invocation overhead (argument
    marshalling, loop setup, pipeline fill).
    """

    ii_multiplier: float
    ramp_cycles: int


# Calibrated against Fig. 5: intrinsics reach >90% kernel efficiency for
# both precisions; the API loses 46% (FP32) / 7% (INT8) of performance.
_STYLE_TABLE: dict[tuple[KernelStyle, Precision], StyleParameters] = {
    (KernelStyle.INTRINSIC, Precision.FP32): StyleParameters(1.0, 100),
    (KernelStyle.INTRINSIC, Precision.INT8): StyleParameters(1.0, 100),
    (KernelStyle.INTRINSIC, Precision.INT16): StyleParameters(1.0, 100),
    (KernelStyle.API, Precision.FP32): StyleParameters(1.86, 150),
    (KernelStyle.API, Precision.INT8): StyleParameters(1.06, 150),
    (KernelStyle.API, Precision.INT16): StyleParameters(1.20, 150),
}


def style_parameters(style: KernelStyle, precision: Precision) -> StyleParameters:
    """Timing parameters for a kernel written in ``style`` at ``precision``."""
    return _STYLE_TABLE[(style, precision)]


def intrinsic_name(precision: Precision) -> str:
    """The intrinsic the paper's kernels use for this precision."""
    return {
        Precision.FP32: "fpmac",
        Precision.INT16: "mac16",
        Precision.INT8: "mac16",
    }[precision]
