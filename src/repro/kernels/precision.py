"""Numeric precisions supported by the AIE vector processor.

Section III ("Speeds and Feeds"): each first-generation AIE achieves
8 MACs/cycle for FP32 and 128 MACs/cycle for INT8.  INT16 (32 MACs/cycle)
is included because CHARM 2.0 adds it; the paper's experiments use FP32
and INT8 only.

The vector datapath is modelled as ``lanes`` output elements updated per
cycle, each receiving ``k_per_cycle`` reduction steps, so that
``lanes * k_per_cycle == macs_per_cycle``.  For FP32 the ``fpmac``
intrinsic updates 8 lanes one reduction step at a time; for INT8 the
``mac16`` intrinsic updates 16 lanes with an 8-deep reduction each cycle.
"""

from __future__ import annotations

import enum


class Precision(enum.Enum):
    """A numeric precision with its AIE datapath characteristics."""

    FP32 = ("fp32", 4, 8, 8, 4, 2.0)
    INT16 = ("int16", 2, 32, 16, 4, 1.0)
    INT8 = ("int8", 1, 128, 16, 4, 0.5)

    def __init__(
        self,
        label: str,
        element_bytes: int,
        macs_per_cycle: int,
        lanes: int,
        accumulator_bytes: int,
        drain_cycles: float,
    ) -> None:
        self.label = label
        #: bytes per input/output element (C is stored at input precision,
        #: as in CHARM, which re-quantises INT8 outputs on chip)
        self.element_bytes = element_bytes
        #: peak multiply-accumulates per cycle on one AIE
        self.macs_per_cycle = macs_per_cycle
        #: output elements updated in parallel by one vector op
        self.lanes = lanes
        #: bytes per partial-sum element while accumulating (cascade width)
        self.accumulator_bytes = accumulator_bytes
        #: exposed pipeline-drain cycles per output block (averaged over the
        #: accumulator interleaving the compiler applies)
        self.drain_cycles = drain_cycles

    @property
    def k_per_cycle(self) -> int:
        """Reduction steps folded into one vector op (macs/cycle / lanes)."""
        return self.macs_per_cycle // self.lanes

    def peak_ops_per_aie(self, aie_freq_hz: float) -> float:
        """Peak ops/s of one AIE: 2 ops (multiply + add) per MAC."""
        return 2.0 * self.macs_per_cycle * aie_freq_hz

    @classmethod
    def parse(cls, text: str) -> "Precision":
        for member in cls:
            if member.label == text.lower():
                return member
        known = ", ".join(m.label for m in cls)
        raise ValueError(f"unknown precision {text!r}; known: {known}")

    def __str__(self) -> str:
        return self.label
