"""Single-AIE GEMM kernel: memory footprint rules and timing.

Section V-C's memory accounting:

* Each AIE owns 32 KB of tightly coupled memory; it can additionally
  address 96 KB from the three neighbouring tiles (128 KB total).
* Double buffering doubles the footprint of every operand, and each
  individual double buffer must live inside a single AIE, capping one
  operand at 16 KB (4k FP32 / 16k INT8 elements).  Hence the maximum
  double-buffered single-AIE workload is 64x64x64 (FP32) and
  128x128x128 (INT8).
* Kernels that fit in the local 32 KB are scalable across the whole
  array; kernels that borrow neighbour memory (the dotted bars of
  Figs. 6/7) are not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kernels.kernel_timing import KernelTiming, kernel_timing
from repro.kernels.precision import Precision
from repro.kernels.programming import KernelStyle
from repro.workloads.gemm import GemmShape

#: Tightly coupled data memory of one AIE tile.
AIE_DATA_MEMORY_BYTES = 32 * 1024
#: Memory addressable from the three neighbouring tiles.
NEIGHBOR_MEMORY_BYTES = 3 * AIE_DATA_MEMORY_BYTES
#: A double buffer (2x operand) must fit within one AIE's memory.
MAX_DOUBLE_BUFFER_OPERAND_BYTES = AIE_DATA_MEMORY_BYTES // 2


class MemoryVerdict(enum.Enum):
    """Where a kernel's buffers live."""

    LOCAL = "local"  # fits in the AIE's own 32 KB -> scalable
    NEIGHBOR = "neighbor"  # needs neighbour memory -> works, not scalable
    TOO_LARGE = "too_large"  # exceeds the 128 KB addressable window


@dataclass(frozen=True)
class SingleAieGemmKernel:
    """A GEMM kernel mapped onto one AI Engine."""

    shape: GemmShape
    precision: Precision
    style: KernelStyle = KernelStyle.INTRINSIC
    double_buffered: bool = True

    # ------------------------------------------------------------------
    # Memory footprint
    # ------------------------------------------------------------------
    def operand_bytes(self) -> tuple[int, int, int]:
        eb = self.precision.element_bytes
        return (
            self.shape.bytes_a(eb),
            self.shape.bytes_b(eb),
            self.shape.bytes_c(eb),
        )

    def footprint_bytes(self) -> int:
        """Total data-memory footprint including buffering."""
        factor = 2 if self.double_buffered else 1
        return factor * sum(self.operand_bytes())

    def memory_verdict(self) -> MemoryVerdict:
        footprint = self.footprint_bytes()
        if footprint <= AIE_DATA_MEMORY_BYTES:
            return MemoryVerdict.LOCAL
        if footprint <= AIE_DATA_MEMORY_BYTES + NEIGHBOR_MEMORY_BYTES:
            return MemoryVerdict.NEIGHBOR
        return MemoryVerdict.TOO_LARGE

    def needs_neighbor_memory(self) -> bool:
        """True for the dotted bars of Figs. 6/7."""
        return self.memory_verdict() is MemoryVerdict.NEIGHBOR

    def is_scalable(self) -> bool:
        """Can this kernel be replicated on every AIE of the array?"""
        return self.memory_verdict() is MemoryVerdict.LOCAL

    def double_buffer_legal(self) -> bool:
        """Each individual double buffer must fit within a single AIE."""
        if not self.double_buffered:
            return True
        return all(b <= MAX_DOUBLE_BUFFER_OPERAND_BYTES for b in self.operand_bytes())

    def is_feasible(self) -> bool:
        return (
            self.memory_verdict() is not MemoryVerdict.TOO_LARGE
            and self.double_buffer_legal()
        )

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def timing(self, plios_a: int = 1, plios_b: int = 1, plios_c: int = 1) -> KernelTiming:
        return kernel_timing(
            self.shape,
            self.precision,
            self.style,
            double_buffered=self.double_buffered,
            plios_a=plios_a,
            plios_b=plios_b,
            plios_c=plios_c,
        )

    def efficiency(self) -> float:
        return self.timing().efficiency

    @classmethod
    def max_double_buffered_shape(cls, precision: Precision) -> GemmShape:
        """Largest square double-buffered single-AIE workload.

        64x64x64 for FP32, 128x128x128 for INT8 (Section V-C).
        """
        elements = MAX_DOUBLE_BUFFER_OPERAND_BYTES // precision.element_bytes
        side = int(elements ** 0.5)
        # round side down to a power of two, matching the paper's sweep
        side = 1 << (side.bit_length() - 1)
        return GemmShape.square(side)
