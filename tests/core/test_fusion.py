"""Post-op fusion tests (the paper's multi-AIE recommendation)."""

import pytest

from repro.core.fusion import FusionPlanner, PostOp
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def planner():
    return FusionPlanner(CharmDesign(config_by_name("C5")))  # 256 AIEs: 144 spare


@pytest.fixture(scope="module")
def workload():
    return GemmShape(2048, 2048, 2048)


class TestPlanning:
    def test_spare_aies(self, planner):
        assert planner.spare_aies == 400 - 256

    def test_needed_engines_positive(self, planner, workload):
        assert planner.postop_aies_needed(PostOp.RELU, workload) >= 1

    def test_heavier_ops_need_more_engines(self, planner, workload):
        relu = planner.postop_aies_needed(PostOp.RELU, workload)
        gelu = planner.postop_aies_needed(PostOp.GELU, workload)
        assert gelu >= relu

    def test_full_array_design_rejected(self, workload):
        full = FusionPlanner(CharmDesign(config_by_name("C6")))
        # C6 uses 384 of 400 — still has spares; simulate full occupancy
        assert full.spare_aies == 16
        estimate = full.estimate(PostOp.RELU, workload)
        assert estimate.spare_aies <= 16


class TestEstimates:
    def test_fusion_always_wins_for_relu(self, planner, workload):
        """The paper's claim: avoiding the PL/DRAM round trip improves
        overall performance."""
        estimate = planner.estimate(PostOp.RELU, workload)
        assert estimate.fused_total < estimate.unfused_total
        assert estimate.speedup > 1.0

    @pytest.mark.parametrize("post_op", list(PostOp))
    def test_every_postop_estimable(self, planner, workload, post_op):
        estimate = planner.estimate(post_op, workload)
        assert estimate.fused_total > 0
        assert estimate.unfused_pass_seconds > 0

    def test_avoided_traffic_is_two_c_matrices(self, planner, workload):
        estimate = planner.estimate(PostOp.RELU, workload)
        assert estimate.avoided_dram_bytes == 2 * workload.bytes_c(4)

    def test_light_postop_fully_hidden(self, planner, workload):
        """ReLU on spare engines overlaps the GEMM completely."""
        estimate = planner.estimate(PostOp.RELU, workload)
        assert estimate.fused_total == pytest.approx(estimate.gemm_seconds)

    def test_savings_equals_pass_cost_when_hidden(self, planner, workload):
        estimate = planner.estimate(PostOp.RELU, workload)
        assert estimate.savings_seconds == pytest.approx(
            estimate.unfused_pass_seconds
        )

    def test_unfused_pass_scales_with_output_size(self, planner):
        small = planner.estimate(PostOp.RELU, GemmShape(1024, 1024, 1024))
        large = planner.estimate(PostOp.RELU, GemmShape(4096, 1024, 4096))
        assert large.unfused_pass_seconds > small.unfused_pass_seconds
