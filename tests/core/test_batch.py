"""Batched-execution (setup amortisation) tests."""

import pytest

from repro.core.batch import batched_estimate
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def design():
    return CharmDesign(config_by_name("C5"))


class TestBatchedEstimate:
    def test_setup_paid_once(self, design):
        shape = GemmShape(512, 128, 512)
        batch = batched_estimate(design, shape, count=10)
        assert batch.total_seconds == pytest.approx(
            batch.setup_seconds + 10 * batch.steady_seconds
        )

    def test_amortization_speedup_for_small_shapes(self, design):
        """For setup-heavy shapes (attention heads) amortisation
        approaches single/steady — here the 100 us setup is ~40% of each
        naive call, so batching approaches a 1.7x saving."""
        shape = GemmShape(512, 128, 512)
        batch = batched_estimate(design, shape, count=40)
        assert batch.amortization_speedup > 1.5
        ceiling = batch.first.total_seconds / batch.steady_seconds
        assert batch.amortization_speedup < ceiling

    def test_large_shapes_barely_amortise(self, design):
        batch = batched_estimate(design, GemmShape(4096, 4096, 4096), count=4)
        assert batch.amortization_speedup < 1.05

    def test_single_call_equals_estimate(self, design):
        shape = GemmShape(1024, 1024, 1024)
        batch = batched_estimate(design, shape, count=1)
        assert batch.total_seconds == pytest.approx(batch.first.total_seconds)

    def test_amortized_below_single(self, design):
        shape = GemmShape(512, 128, 512)
        batch = batched_estimate(design, shape, count=8)
        assert batch.amortized_seconds < batch.first.total_seconds

    def test_rejects_zero_count(self, design):
        with pytest.raises(ValueError):
            batched_estimate(design, GemmShape(64, 64, 64), count=0)


class TestAttentionGemms:
    def test_shapes(self):
        from repro.workloads.transformer import LLAMA2_13B

        scores, values = LLAMA2_13B.attention_gemms(2048)
        assert scores.shape == GemmShape(2048, 128, 2048)
        assert values.shape == GemmShape(2048, 2048, 128)
        assert scores.count == LLAMA2_13B.num_heads

    def test_forward_with_attention_has_more_flops(self):
        from repro.workloads.transformer import BERT_LARGE

        with_attn = BERT_LARGE.forward_flops(1024, include_attention=True)
        without = BERT_LARGE.forward_flops(1024, include_attention=False)
        assert with_attn > without

    def test_e2e_with_attention_slower(self):
        from repro.core.e2e import ModelEstimator
        from repro.workloads.transformer import BERT_LARGE

        estimator = ModelEstimator()
        base = estimator.estimate(BERT_LARGE, 1024)
        full = estimator.estimate(BERT_LARGE, 1024, include_attention=True)
        assert full.total_seconds > base.total_seconds
        assert full.total_flops > base.total_flops
