"""Design-space exploration tests."""

import pytest

from repro.core.dse import DesignSpaceExplorer
from repro.kernels.precision import Precision
from repro.mapping.grouping import pack_depth_for
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def fp32_explorer():
    return DesignSpaceExplorer(Precision.FP32, max_aies=128)


class TestCandidates:
    def test_groupings_respect_aie_budget(self, fp32_explorer):
        for grouping in fp32_explorer.candidate_groupings():
            assert grouping.num_aies <= 128

    def test_groupings_pack_aligned(self, fp32_explorer):
        depth = pack_depth_for(Precision.FP32)
        for grouping in fp32_explorer.candidate_groupings():
            assert grouping.gk % depth == 0

    def test_candidates_all_valid(self, fp32_explorer):
        for design in fp32_explorer.candidates():
            design.validate()

    def test_port_exploration_doubles_candidates(self):
        base = DesignSpaceExplorer(Precision.FP32, max_aies=64)
        ports = DesignSpaceExplorer(Precision.FP32, max_aies=64, explore_ports=True)
        assert len(ports.candidates()) == 2 * len(base.candidates())


class TestExploration:
    def test_results_sorted_by_time(self, fp32_explorer):
        points = fp32_explorer.explore(GemmShape(1024, 1024, 1024), top=5)
        times = [p.seconds for p in points]
        assert times == sorted(times)

    def test_best_is_first(self, fp32_explorer):
        workload = GemmShape(1024, 1024, 1024)
        best = fp32_explorer.best(workload)
        assert best.seconds == fp32_explorer.explore(workload, top=1)[0].seconds

    def test_top_limits_results(self, fp32_explorer):
        assert len(fp32_explorer.explore(GemmShape(512, 512, 512), top=3)) == 3

    def test_more_aies_win_for_large_compute_bound_workloads(self):
        explorer = DesignSpaceExplorer(Precision.FP32, max_aies=64)
        best = explorer.best(GemmShape(2048, 2048, 2048))
        # a 64-AIE grouping should beat tiny ones on a large workload
        assert best.num_aies >= 32

    def test_int8_explorer(self):
        explorer = DesignSpaceExplorer(Precision.INT8, max_aies=64)
        best = explorer.best(GemmShape(1024, 1024, 1024))
        assert best.config.precision is Precision.INT8
