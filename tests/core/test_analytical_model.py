"""Analytical model tests (Section V-A, Eqs. 1-2)."""

import pytest

from repro.core.analytical_model import AnalyticalModel
from repro.core.breakdown import Bottleneck
from repro.hw.dram import CHARM_DEFAULT_PORTS
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape


@pytest.fixture
def c6_model(c6_design):
    return AnalyticalModel(c6_design)


class TestAieLevel:
    """Eq. 1 structure."""

    def test_period_is_max_of_phases(self, c6_model):
        level = c6_model.aie_level_times()
        assert level.period == max(level.plio_a, level.plio_b, level.compute, level.plio_c)

    def test_c6_native_is_compute_bound_at_aie_level(self, c6_model):
        assert c6_model.aie_level_times().bottleneck is Bottleneck.COMPUTE

    def test_aie_cycles_scale_with_pl_tiles(self, c6_design, c6_model, square_2048):
        plan = c6_design.tile_plan(square_2048)
        level = c6_model.aie_level_times()
        cycles = c6_model.aie_cycles_per_dram_tile(plan)
        assert cycles == pytest.approx(
            plan.pl_tiles_per_dram_tile * level.period + level.exposed_fill
        )

    def test_exposed_fill_positive(self, c6_model):
        assert c6_model.aie_level_times().exposed_fill > 0


class TestDramLevel:
    """Eq. 2 structure."""

    def test_period_is_max(self, c6_design, c6_model, square_2048):
        plan = c6_design.tile_plan(square_2048)
        level = c6_model.dram_level_times(plan)
        assert level.period == max(level.load_inputs, level.aie, level.store_c)

    def test_store_amortised_by_k_sweep(self, c6_design, c6_model, square_2048):
        plan = c6_design.tile_plan(square_2048)
        level = c6_model.dram_level_times(plan)
        _, tk, _ = plan.dram_tile_counts
        assert tk > 1
        # a full C-tile write takes tk times the amortised value
        assert level.store_c * tk > level.store_c

    def test_serialized_period_exceeds_pipelined(self, c6_design, c6_model, square_2048):
        plan = c6_design.tile_plan(square_2048)
        level = c6_model.dram_level_times(plan)
        assert level.serialized_period > level.period


class TestEstimate:
    def test_includes_setup_calibration(self, c6_design, square_2048):
        """The paper adds a fixed 100 us AIE setup."""
        estimate = AnalyticalModel(c6_design).estimate(square_2048)
        assert estimate.breakdown.setup_seconds == pytest.approx(100e-6)

    def test_2048_cubed_on_c6_near_paper(self, c6_design, square_2048):
        """Section V-G: C6 double-buffered runs 2048^3 in 9.95 ms."""
        estimate = AnalyticalModel(c6_design).estimate(square_2048)
        assert estimate.total_seconds == pytest.approx(9.95e-3, rel=0.20)

    def test_2048_cubed_on_c11_near_paper(self, c11_design, square_2048):
        """Section V-G: C11 double-buffered runs 2048^3 in 0.92 ms."""
        estimate = AnalyticalModel(c11_design).estimate(square_2048)
        assert estimate.total_seconds == pytest.approx(0.92e-3, rel=0.20)

    def test_efficiency_bounded(self, c6_design, square_2048):
        estimate = AnalyticalModel(c6_design).estimate(square_2048)
        assert 0 < estimate.efficiency < 1

    def test_throughput_consistent(self, c6_design, square_2048):
        estimate = AnalyticalModel(c6_design).estimate(square_2048)
        assert estimate.throughput_ops == pytest.approx(
            square_2048.flops / estimate.total_seconds
        )

    def test_more_bandwidth_never_slower(self, square_2048):
        for name in ("C4", "C5", "C6", "C10", "C11"):
            design = CharmDesign(config_by_name(name))
            fast = AnalyticalModel(design).estimate(square_2048).total_seconds
            slow_design = design.with_ports(CHARM_DEFAULT_PORTS)
            slow = AnalyticalModel(slow_design).estimate(square_2048).total_seconds
            assert fast <= slow

    def test_single_buffering_slower_with_same_plan(self, c6_design, square_2048):
        """Section V-G: serialising DRAM with AIE adds latency for FP32."""
        plan = c6_design.tile_plan(square_2048)
        double = AnalyticalModel(c6_design).estimate(square_2048, plan).total_seconds
        import dataclasses

        single_plan = dataclasses.replace(plan, double_buffered=False)
        single_design = c6_design.with_single_buffering()
        single = AnalyticalModel(single_design).estimate(
            square_2048, single_plan
        ).total_seconds
        assert single > double

    def test_breakdown_bottleneck_consistency(self, c6_design, square_2048):
        estimate = AnalyticalModel(c6_design).estimate(square_2048)
        assert estimate.bottleneck is estimate.breakdown.bound_phase

    def test_memory_bound_beyond_c4(self, square_2048):
        """Fig. 11: from C5/C6 onward the 2048^3 workload is memory bound."""
        for name in ("C5", "C6"):
            estimate = AnalyticalModel(CharmDesign(config_by_name(name))).estimate(
                square_2048
            )
            assert estimate.breakdown.memory_bound

    def test_small_configs_not_memory_bound(self, square_2048):
        for name in ("C1", "C2", "C3"):
            estimate = AnalyticalModel(CharmDesign(config_by_name(name))).estimate(
                square_2048
            )
            assert not estimate.breakdown.memory_bound

    def test_tiny_workload_dominated_by_setup(self, c1_design):
        native = c1_design.native_size
        estimate = AnalyticalModel(c1_design).estimate(native)
        assert estimate.breakdown.setup_seconds / estimate.total_seconds > 0.5

    def test_invalid_design_rejected_at_construction(self):
        import dataclasses

        config = dataclasses.replace(config_by_name("C1"), num_plios=500)
        with pytest.raises(Exception):
            AnalyticalModel(CharmDesign(config))
