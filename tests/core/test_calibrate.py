"""Calibration-fitting tests: the paper's points recover the defaults."""

import pytest

from repro.core.calibrate import fit_noc, fit_pl_fraction
from repro.hw.noc import SECOND_VC_FACTOR, VC_EFFECTIVE_BANDWIDTH
from repro.hw.specs import VCK5000
from repro.workloads.gemm import GemmShape

PAPER_NOC_POINTS = [(3, 20e9), (6, 34e9), (12, 34e9)]
PAPER_TIME_POINTS = [
    ("C6", GemmShape(2048, 2048, 2048), 9.95e-3),
    ("C11", GemmShape(2048, 2048, 2048), 0.92e-3),
]


class TestNocFit:
    def test_recovers_default_constants(self):
        fit = fit_noc(PAPER_NOC_POINTS)
        assert fit.vc_bandwidth == pytest.approx(VC_EFFECTIVE_BANDWIDTH, rel=0.05)
        assert fit.second_vc_factor == pytest.approx(SECOND_VC_FACTOR, abs=0.05)
        assert fit.max_relative_error < 0.02

    def test_built_model_reproduces_points(self):
        noc = fit_noc(PAPER_NOC_POINTS).build()
        for ports, target in PAPER_NOC_POINTS:
            assert noc.achieved_bandwidth(ports) == pytest.approx(target, rel=0.02)

    def test_different_targets_give_different_fit(self):
        fit = fit_noc([(3, 30e9), (6, 48e9)])
        assert fit.vc_bandwidth > VC_EFFECTIVE_BANDWIDTH

    def test_empty_measurements_rejected(self):
        with pytest.raises(ValueError):
            fit_noc([])


class TestPlFractionFit:
    def test_recovers_default_fraction(self):
        fit = fit_pl_fraction(PAPER_TIME_POINTS)
        assert fit.pl_usable_fraction == pytest.approx(
            VCK5000.pl_usable_fraction, abs=0.04
        )
        assert fit.max_relative_error < 0.25

    def test_built_device_usable(self):
        device = fit_pl_fraction(PAPER_TIME_POINTS).build()
        assert 0 < device.pl_usable_fraction < 1

    def test_empty_measurements_rejected(self):
        with pytest.raises(ValueError):
            fit_pl_fraction([])
