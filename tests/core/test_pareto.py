"""Pareto-front utility tests."""

import pytest

from repro.core.pareto import (
    design_tradeoff_records,
    dominates,
    knee_point,
    pareto_front,
)
from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape

RECORDS = [
    {"name": "fast-big", "seconds": 1.0, "aies": 256},
    {"name": "slow-small", "seconds": 4.0, "aies": 16},
    {"name": "balanced", "seconds": 2.0, "aies": 64},
    {"name": "dominated", "seconds": 3.0, "aies": 256},  # worse than fast-big
]


class TestDominance:
    def test_dominates(self):
        assert dominates(RECORDS[0], RECORDS[3], ["seconds", "aies"])

    def test_incomparable(self):
        assert not dominates(RECORDS[0], RECORDS[1], ["seconds", "aies"])
        assert not dominates(RECORDS[1], RECORDS[0], ["seconds", "aies"])

    def test_equal_does_not_dominate(self):
        assert not dominates(RECORDS[0], RECORDS[0], ["seconds", "aies"])


class TestFront:
    def test_front_excludes_dominated(self):
        front = pareto_front(RECORDS, ["seconds", "aies"])
        names = {r["name"] for r in front}
        assert names == {"fast-big", "slow-small", "balanced"}

    def test_single_objective_front_is_minimum(self):
        front = pareto_front(RECORDS, ["seconds"])
        assert [r["name"] for r in front] == ["fast-big"]

    def test_requires_objectives(self):
        with pytest.raises(ValueError):
            pareto_front(RECORDS, [])


class TestKnee:
    def test_knee_is_balanced(self):
        front = pareto_front(RECORDS, ["seconds", "aies"])
        assert knee_point(front, ["seconds", "aies"])["name"] == "balanced"

    def test_empty_front_rejected(self):
        with pytest.raises(ValueError):
            knee_point([], ["seconds"])


class TestDesignTradeoffs:
    def test_records_and_front(self):
        records = design_tradeoff_records(
            GemmShape(1024, 1024, 1024), Precision.FP32, max_aies=64
        )
        assert records
        front = pareto_front(records, ["seconds", "aies"])
        assert front
        # the front is never larger than the candidate set and every
        # member is feasible
        assert len(front) <= len(records)
        fastest = min(records, key=lambda r: r["seconds"])
        assert fastest in front

    def test_energy_objective(self):
        records = design_tradeoff_records(
            GemmShape(1024, 1024, 1024), Precision.FP32, max_aies=64
        )
        front = pareto_front(records, ["seconds", "joules"])
        assert front
