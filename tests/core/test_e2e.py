"""End-to-end model estimation tests."""

import pytest

from repro.core.e2e import ModelEstimator
from repro.kernels.precision import Precision
from repro.mapping.configs import config_by_name
from repro.workloads.transformer import BERT_LARGE, LLAMA2_13B


@pytest.fixture(scope="module")
def estimator():
    return ModelEstimator(Precision.FP32)


class TestModelEstimates:
    def test_totals_sum_layers(self, estimator):
        estimate = estimator.estimate(BERT_LARGE, tokens=512)
        assert estimate.total_seconds == pytest.approx(
            sum(l.total_seconds for l in estimate.layers)
        )

    def test_flops_accounted(self, estimator):
        estimate = estimator.estimate(BERT_LARGE, tokens=512)
        assert estimate.total_flops == BERT_LARGE.forward_flops(512)
        assert estimate.throughput_ops > 0

    def test_bigger_model_slower(self, estimator):
        bert = estimator.estimate(BERT_LARGE, tokens=512).total_seconds
        llama = estimator.estimate(LLAMA2_13B, tokens=512).total_seconds
        assert llama > bert

    def test_tokens_per_second_positive(self, estimator):
        assert estimator.estimate(BERT_LARGE, tokens=256).tokens_per_second > 0

    def test_dominant_layer_is_mlp(self, estimator):
        """MLP GEMMs carry ~2/3 of transformer FLOPs."""
        estimate = estimator.estimate(LLAMA2_13B, tokens=1024)
        assert estimate.dominant_layer().gemm.name.startswith("mlp")


class TestConfigSelection:
    def test_per_layer_selection_never_worse(self):
        per_layer = ModelEstimator(Precision.FP32, per_layer_selection=True)
        fixed = ModelEstimator(Precision.FP32, per_layer_selection=False)
        a = per_layer.estimate(BERT_LARGE, tokens=512).total_seconds
        b = fixed.estimate(BERT_LARGE, tokens=512).total_seconds
        assert a <= b * 1.0001

    def test_restricted_config_set(self):
        only_c1 = ModelEstimator(Precision.FP32, configs=(config_by_name("C1"),))
        estimate = only_c1.estimate(BERT_LARGE, tokens=256)
        assert all(l.config_name == "C1" for l in estimate.layers)

    def test_int8_estimator(self):
        estimator = ModelEstimator(Precision.INT8)
        fp32 = ModelEstimator(Precision.FP32)
        int8_t = estimator.estimate(BERT_LARGE, tokens=512).total_seconds
        fp32_t = fp32.estimate(BERT_LARGE, tokens=512).total_seconds
        assert int8_t < fp32_t  # 16x the MACs/cycle

    def test_empty_config_set_rejected(self):
        with pytest.raises(ValueError):
            ModelEstimator(Precision.FP32, configs=())
