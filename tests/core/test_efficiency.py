"""Efficiency metric tests."""

import pytest

from repro.core.efficiency import achieved_ops, array_efficiency, kernel_efficiency
from repro.kernels.precision import Precision
from repro.workloads.gemm import GemmShape


class TestKernelEfficiency:
    def test_ideal_time_gives_unity(self):
        shape = GemmShape(32, 32, 32)
        ideal = shape.macs / Precision.FP32.macs_per_cycle
        assert kernel_efficiency(shape, Precision.FP32, ideal) == pytest.approx(1.0)

    def test_double_time_gives_half(self):
        shape = GemmShape(32, 32, 32)
        ideal = shape.macs / Precision.FP32.macs_per_cycle
        assert kernel_efficiency(shape, Precision.FP32, 2 * ideal) == pytest.approx(0.5)

    def test_rejects_non_positive_cycles(self):
        with pytest.raises(ValueError):
            kernel_efficiency(GemmShape(1, 1, 1), Precision.FP32, 0)


class TestAchievedOps:
    def test_value(self):
        shape = GemmShape(100, 100, 100)
        assert achieved_ops(shape, 2.0) == pytest.approx(shape.flops / 2.0)

    def test_rejects_zero_seconds(self):
        with pytest.raises(ValueError):
            achieved_ops(GemmShape(1, 1, 1), 0.0)


class TestArrayEfficiency:
    def test_peak_execution_gives_unity(self):
        shape = GemmShape(1024, 1024, 1024)
        peak_seconds = shape.flops / (1.25e9 * 8 * 400 * 2)
        assert array_efficiency(
            shape, Precision.FP32, peak_seconds, 400
        ) == pytest.approx(1.0)

    def test_scales_with_aie_count(self):
        shape = GemmShape(1024, 1024, 1024)
        full = array_efficiency(shape, Precision.FP32, 1.0, 400)
        half = array_efficiency(shape, Precision.FP32, 1.0, 200)
        assert half == pytest.approx(2 * full)
