"""Roofline tests (Fig. 15)."""

import pytest

from repro.core.roofline import Roofline
from repro.kernels.precision import Precision
from repro.mapping.configs import config_by_name
from repro.workloads.dnn import DNN_WORKLOADS, workload_by_id


@pytest.fixture
def roofline():
    return Roofline(Precision.INT8)


class TestCeilings:
    def test_one_per_int8_config_plus_device(self, roofline):
        labels = [c.label for c in roofline.ceilings()]
        assert labels == ["C7", "C8", "C9", "C10", "C11", "VCK5000 peak"]

    def test_device_peak_is_128_tops(self, roofline):
        assert roofline.ceilings()[-1].peak_ops == pytest.approx(128e12)

    def test_ceilings_increase_with_aies(self, roofline):
        peaks = [c.peak_ops for c in roofline.ceilings()]
        assert peaks == sorted(peaks)

    def test_ridge_point(self, roofline):
        roof = roofline.ceilings()[-1]
        assert roof.ridge_point(roofline.dram_bandwidth()) == pytest.approx(1250.0)


class TestBandwidthLines:
    def test_dram_line_is_theoretical(self, roofline):
        assert roofline.dram_bandwidth() == pytest.approx(102.4e9)

    def test_achieved_dram_34_gbs(self, roofline):
        assert roofline.achieved_dram_bandwidth() == pytest.approx(34e9, rel=0.01)

    def test_plio_line_far_above_dram(self, roofline):
        """Fig. 15: two distinct BW limits; PLIO >> DRAM."""
        assert roofline.plio_bandwidth() > 10 * roofline.dram_bandwidth()


class TestAttainable:
    def test_bandwidth_region(self, roofline):
        oi = 10.0
        assert roofline.attainable(oi) == pytest.approx(oi * 102.4e9)

    def test_compute_region_clamped(self, roofline):
        assert roofline.attainable(1e6) == pytest.approx(128e12)

    def test_rejects_non_positive_oi(self, roofline):
        with pytest.raises(ValueError):
            roofline.attainable(0)


class TestWorkloadPoints:
    def test_red_dot_classification_matches_paper(self, roofline):
        """Fig. 15: B1/V1/L1/L2 compute-bound, L3/L4 DRAM-bound."""
        expected = {"B1": True, "V1": True, "L1": True, "L2": True, "L3": False, "L4": False}
        for workload in DNN_WORKLOADS:
            point = roofline.point(workload.workload_id, workload.shape)
            assert point.compute_bound is expected[workload.workload_id]

    def test_tiling_pushes_points_left(self, roofline):
        config = config_by_name("C11")
        for workload in DNN_WORKLOADS:
            ideal = roofline.point(workload.workload_id, workload.shape)
            tiled = roofline.tiled_point(workload.workload_id, workload.shape, config)
            assert tiled.operational_intensity < ideal.operational_intensity

    def test_all_tiled_points_dram_bound(self, roofline):
        """Fig. 15 green circles: tiling makes every workload DRAM-bound,
        so 128 TOPS is unattainable."""
        config = config_by_name("C11")
        for workload in DNN_WORKLOADS:
            tiled = roofline.tiled_point(workload.workload_id, workload.shape, config)
            assert not tiled.compute_bound
            assert tiled.attainable_ops < 128e12

    def test_attainable_on_roof_or_slope(self, roofline):
        point = roofline.point("B1", workload_by_id("B1").shape)
        assert point.attainable_ops <= 128e12

    def test_overhead_flag(self, roofline):
        config = config_by_name("C11")
        shape = workload_by_id("B1").shape
        assert not roofline.point("B1", shape).includes_tiling_overhead
        assert roofline.tiled_point("B1", shape, config).includes_tiling_overhead


class TestAsciiRendering:
    def test_renders_all_points(self, roofline):
        config = config_by_name("C11")
        points = []
        for workload in DNN_WORKLOADS:
            points.append(roofline.point(workload.workload_id, workload.shape))
            points.append(
                roofline.tiled_point(workload.workload_id, workload.shape, config)
            )
        text = roofline.render_ascii(points, width=60, height=12)
        lines = text.splitlines()
        assert len(lines) == 12 + 2  # grid + rule + legend
        assert "o" in text and "x" in text  # both point families plotted
        assert "/" in text and "-" in text  # slope and roof drawn

    def test_respects_dimensions(self, roofline):
        points = [roofline.point("B1", workload_by_id("B1").shape)]
        text = roofline.render_ascii(points, width=40, height=8)
        assert all(len(line) == 40 for line in text.splitlines()[:8])

    def test_empty_points_rejected(self, roofline):
        with pytest.raises(ValueError):
            roofline.render_ascii([])
