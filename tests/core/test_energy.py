"""Energy-model tests."""

import pytest

from repro.core.energy import EnergyModel
from repro.kernels.precision import Precision
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def workload():
    return GemmShape(2048, 2048, 2048)


class TestEnergyAccounting:
    def test_components_positive(self, workload):
        energy = EnergyModel(CharmDesign(config_by_name("C6"))).estimate(workload)
        for value in (
            energy.compute_joules,
            energy.plio_joules,
            energy.pl_joules,
            energy.dram_joules,
            energy.static_joules,
        ):
            assert value > 0

    def test_totals_sum(self, workload):
        energy = EnergyModel(CharmDesign(config_by_name("C6"))).estimate(workload)
        assert energy.total_joules == pytest.approx(
            energy.dynamic_joules + energy.static_joules
        )

    def test_fractions_sum_to_one(self, workload):
        energy = EnergyModel(CharmDesign(config_by_name("C6"))).estimate(workload)
        assert sum(energy.fractions().values()) == pytest.approx(1.0)

    def test_average_power_reasonable(self, workload):
        """A VCK5000-class accelerator draws tens of watts, not kilowatts."""
        energy = EnergyModel(CharmDesign(config_by_name("C6"))).estimate(workload)
        assert 20 < energy.average_power_watts < 400


class TestEnergyInsights:
    def test_int8_more_ops_per_joule_than_fp32(self, workload):
        fp32 = EnergyModel(CharmDesign(config_by_name("C6"))).estimate(workload)
        int8 = EnergyModel(CharmDesign(config_by_name("C11"))).estimate(workload)
        assert int8.ops_per_joule > fp32.ops_per_joule

    def test_dram_dominates_dynamic_energy_when_memory_bound(self, workload):
        """150 pJ/B off-chip vs ~1 pJ/B on-chip: tiling overhead costs
        energy, not just time."""
        energy = EnergyModel(CharmDesign(config_by_name("C6"))).estimate(workload)
        assert energy.dram_joules > energy.plio_joules
        assert energy.dram_joules > energy.pl_joules

    def test_static_energy_punishes_slow_configs(self, workload):
        slow = EnergyModel(CharmDesign(config_by_name("C1"))).estimate(workload)
        fast = EnergyModel(CharmDesign(config_by_name("C5"))).estimate(workload)
        assert slow.static_joules > fast.static_joules
        assert fast.gflops_per_watt > slow.gflops_per_watt

    def test_custom_static_power(self, workload):
        base = EnergyModel(CharmDesign(config_by_name("C5")), static_power_watts=10.0)
        heavy = EnergyModel(CharmDesign(config_by_name("C5")), static_power_watts=100.0)
        assert heavy.estimate(workload).total_joules > base.estimate(workload).total_joules
