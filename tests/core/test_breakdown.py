"""ExecutionBreakdown data-structure tests."""

import pytest

from repro.core.breakdown import Bottleneck, ExecutionBreakdown


def make_breakdown(**overrides):
    defaults = dict(
        total_seconds=1.0,
        load_a_seconds=0.3,
        load_b_seconds=0.4,
        aie_seconds=0.8,
        store_c_seconds=0.1,
        setup_seconds=1e-4,
        compute_seconds=0.6,
        exposed_plio_seconds=0.05,
        dram_bottleneck=Bottleneck.AIE,
        aie_bottleneck=Bottleneck.COMPUTE,
    )
    defaults.update(overrides)
    return ExecutionBreakdown(**defaults)


class TestBottleneckEnum:
    def test_memory_classification(self):
        assert Bottleneck.LOAD_A.is_memory
        assert Bottleneck.STORE_C.is_memory
        assert not Bottleneck.COMPUTE.is_memory
        assert not Bottleneck.AIE.is_memory

    def test_str(self):
        assert str(Bottleneck.LOAD_B) == "load_b"


class TestBreakdown:
    def test_dram_seconds_combines_loads_and_store(self):
        b = make_breakdown()
        assert b.dram_seconds == pytest.approx(0.4 + 0.1)

    def test_memory_bound_flag(self):
        assert make_breakdown(dram_bottleneck=Bottleneck.LOAD_A).memory_bound
        assert not make_breakdown(dram_bottleneck=Bottleneck.AIE).memory_bound

    def test_bound_phase_refines_to_aie_level(self):
        b = make_breakdown(
            dram_bottleneck=Bottleneck.AIE, aie_bottleneck=Bottleneck.PLIO_B
        )
        assert b.bound_phase is Bottleneck.PLIO_B

    def test_bound_phase_keeps_dram_winner(self):
        b = make_breakdown(dram_bottleneck=Bottleneck.STORE_C)
        assert b.bound_phase is Bottleneck.STORE_C

    def test_phase_fractions(self):
        fractions = make_breakdown().phase_fractions()
        assert fractions["aie"] == pytest.approx(0.8)
        assert set(fractions) == {"load_a", "load_b", "aie", "store_c", "setup"}

    def test_phase_fractions_rejects_zero_total(self):
        with pytest.raises(ValueError):
            make_breakdown(total_seconds=0.0).phase_fractions()
