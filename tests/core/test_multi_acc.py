"""Multi-accelerator composition tests (the CHARM idea)."""

import pytest

from repro.core.multi_acc import (
    AcceleratorPartition,
    GemmJob,
    MultiAccScheduler,
)
from repro.mapping.charm import DesignError
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def partition():
    # C5 (256 AIEs) + C3 (64 AIEs) + C1 (16 AIEs) = 336 AIEs, 91 PLIOs
    return AcceleratorPartition(
        [config_by_name("C5"), config_by_name("C3"), config_by_name("C1")]
    )


class TestPartitionValidation:
    def test_valid_partition_builds(self, partition):
        assert len(partition.designs) == 3

    def test_aie_budget_enforced(self):
        with pytest.raises(DesignError, match="AIEs"):
            AcceleratorPartition([config_by_name("C6"), config_by_name("C5")])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            AcceleratorPartition([config_by_name("C1"), config_by_name("C1")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorPartition([])

    def test_two_large_accelerators_exceed_array(self):
        import dataclasses

        second = dataclasses.replace(config_by_name("C5"), name="C5b")
        with pytest.raises(DesignError, match="AIEs"):
            AcceleratorPartition([config_by_name("C5"), second])


class TestAcceleratorSelection:
    def test_large_square_prefers_big_accelerator(self, partition):
        name, _ = partition.best_accelerator(GemmShape(4096, 4096, 4096))
        assert name == "C5"

    def test_estimates_positive(self, partition):
        for name in partition.designs:
            assert partition.estimate_on(name, GemmShape(1024, 1024, 1024)) > 0


class TestScheduling:
    def test_empty_schedule(self, partition):
        schedule = MultiAccScheduler(partition).schedule([])
        assert schedule.makespan == 0.0

    def test_single_job_no_sharing_penalty(self, partition):
        schedule = MultiAccScheduler(partition).schedule(
            [GemmJob("big", GemmShape(2048, 2048, 2048))]
        )
        assert schedule.dram_sharing_factor == 1.0
        assert len(schedule.assignments) == 1

    def test_concurrent_jobs_beat_serial(self, partition):
        """The CHARM claim: composed accelerators finish a layer mix
        faster than running everything serially on one device."""
        jobs = [
            GemmJob("mlp", GemmShape(2048, 2048, 2048), count=4),
            GemmJob("proj", GemmShape(1024, 1024, 1024), count=4),
            GemmJob("small", GemmShape(256, 512, 256), count=16),
        ]
        schedule = MultiAccScheduler(partition).schedule(jobs)
        assert schedule.speedup_vs_serial > 1.0
        assert schedule.makespan < schedule.serial_seconds

    def test_all_jobs_assigned(self, partition):
        jobs = [GemmJob(f"j{i}", GemmShape(512, 512, 512)) for i in range(7)]
        schedule = MultiAccScheduler(partition).schedule(jobs)
        assert len(schedule.assignments) == 7

    def test_lanes_balanced_by_lpt(self, partition):
        jobs = [GemmJob(f"j{i}", GemmShape(1024, 1024, 1024)) for i in range(9)]
        schedule = MultiAccScheduler(partition).schedule(jobs)
        utils = schedule.utilization()
        assert max(utils.values()) == 1.0
        # the two competitive accelerators share the work; the tiny C1
        # correctly stays idle (it would only delay completion)
        assert utils["C5"] > 0.5 and utils["C3"] > 0.5
        assert utils["C1"] == 0.0

    def test_sharing_factor_bounded(self, partition):
        jobs = [GemmJob(f"j{i}", GemmShape(1024, 1024, 1024)) for i in range(6)]
        schedule = MultiAccScheduler(partition).schedule(jobs)
        assert 1.0 <= schedule.dram_sharing_factor <= len(partition.designs)

    def test_repeated_jobs_scale(self, partition):
        one = MultiAccScheduler(partition).schedule(
            [GemmJob("x", GemmShape(1024, 1024, 1024), count=1)]
        )
        four = MultiAccScheduler(partition).schedule(
            [GemmJob("x", GemmShape(1024, 1024, 1024), count=4)]
        )
        assert four.makespan > 2 * one.makespan
