"""Sensitivity-analysis tests."""

import pytest

from repro.core.sensitivity import SensitivityAnalysis
from repro.hw.dram import DramPorts
from repro.mapping.charm import CharmDesign
from repro.mapping.configs import config_by_name
from repro.workloads.gemm import GemmShape


@pytest.fixture(scope="module")
def analysis():
    return SensitivityAnalysis(
        CharmDesign(config_by_name("C6")), GemmShape(2048, 2048, 2048)
    )


class TestAxes:
    def test_dram_ports_monotone(self, analysis):
        points = analysis.dram_ports([DramPorts(2, 1), DramPorts(4, 2), DramPorts(8, 4)])
        times = [p.seconds for p in points]
        assert times[0] > times[1]
        # beyond 4r2w the NoC plateau stops further gains (Section IV-C)
        assert times[2] == pytest.approx(times[1], rel=0.01)

    def test_plio_count_more_never_slower(self, analysis):
        points = analysis.plio_count([48, 96, 192])
        times = [p.seconds for p in points]
        assert all(b <= a * 1.0001 for a, b in zip(times, times[1:]))

    def test_aie_frequency_memory_bound_insensitive(self, analysis):
        """C6 at 2048^3 is DRAM-bound: halving the AIE clock barely
        moves the total — the signature of a memory wall."""
        base = analysis.aie_frequency([1.25e9])[0].seconds
        slow = analysis.aie_frequency([0.625e9])[0].seconds
        assert slow < 1.5 * base

    def test_aie_frequency_compute_bound_sensitive(self):
        compute_bound = SensitivityAnalysis(
            CharmDesign(config_by_name("C3")), GemmShape(2048, 2048, 2048)
        )
        base = compute_bound.aie_frequency([1.25e9])[0].seconds
        slow = compute_bound.aie_frequency([0.625e9])[0].seconds
        assert slow > 1.7 * base

    def test_pl_memory_more_never_slower(self, analysis):
        points = analysis.pl_memory_fraction([0.1, 0.2, 0.4])
        times = [p.seconds for p in points]
        assert all(b <= a * 1.0001 for a, b in zip(times, times[1:]))

    def test_dram_channel_bandwidth_saturates(self, analysis):
        """Raw DDR bandwidth is not the binding constraint — the NoC
        assignment is (Section IV-C)."""
        points = analysis.dram_channel_bandwidth([25.6e9, 51.2e9])
        assert points[1].seconds == pytest.approx(points[0].seconds, rel=0.01)


class TestSummary:
    def test_summary_covers_axes(self, analysis):
        summary = analysis.summary()
        assert set(summary) == {"dram_ports", "plios", "aie_freq_hz", "pl_usable_fraction"}
        for points in summary.values():
            assert points
            for point in points:
                assert point.seconds > 0
                assert point.bottleneck
