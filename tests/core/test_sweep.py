"""Parameter sweep helper tests."""

from repro.core.sweep import sweep


class TestSweep:
    def test_cartesian_product(self):
        result = sweep(
            {"a": [1, 2], "b": [10, 20]},
            lambda a, b: {"sum": a + b},
        )
        assert len(result) == 4
        assert result.records[0] == {"a": 1, "b": 10, "sum": 11}

    def test_skip_via_none(self):
        result = sweep(
            {"a": [1, 2, 3]},
            lambda a: None if a == 2 else {"sq": a * a},
        )
        assert len(result) == 2

    def test_column_access(self):
        result = sweep({"a": [1, 2]}, lambda a: {"b": a * 2})
        assert result.column("b") == [2, 4]

    def test_where_filter(self):
        result = sweep({"a": [1, 2], "b": [3, 4]}, lambda a, b: {})
        assert len(result.where(a=1)) == 2
        assert len(result.where(a=1, b=3)) == 1

    def test_iterable(self):
        result = sweep({"a": [5]}, lambda a: {})
        assert [r["a"] for r in result] == [5]

    def test_axes_materialized(self):
        result = sweep({"a": iter([1, 2])}, lambda a: {})
        assert result.axes["a"] == [1, 2]
