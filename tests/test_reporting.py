"""Reporting/rendering tests."""

import json

from repro.reporting import (
    format_seconds,
    format_value,
    render_csv,
    render_json,
    render_table,
)


class TestFormatValue:
    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_none(self):
        assert format_value(None) == "-"

    def test_float_trimmed(self):
        assert format_value(1.5) == "1.5"

    def test_large_float_scientific(self):
        assert "e" in format_value(1.23e9)

    def test_zero(self):
        assert format_value(0.0) == "0"


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(1.5) == "1.500 s"

    def test_milliseconds(self):
        assert format_seconds(9.95e-3) == "9.950 ms"

    def test_microseconds(self):
        assert format_seconds(100e-6) == "100.0 us"


class TestRenderers:
    ROWS = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]

    def test_table_alignment(self):
        text = render_table(self.ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len({len(line) for line in lines if line}) <= 2

    def test_table_with_title(self):
        assert render_table(self.ROWS, title="T").startswith("T\n")

    def test_empty_rows(self):
        assert "(no rows)" in render_table([])

    def test_csv(self):
        text = render_csv(self.ROWS)
        assert text.splitlines()[0] == "a,b"
        assert "22,yy" in text

    def test_csv_empty(self):
        assert render_csv([]) == ""

    def test_json_round_trips(self):
        parsed = json.loads(render_json(self.ROWS))
        assert parsed[1]["a"] == 22

    def test_column_subset(self):
        text = render_table(self.ROWS, columns=["b"])
        assert "a" not in text.splitlines()[0]
