"""Extension-experiment tests."""

import pytest

from repro.experiments import available_experiments, run_experiment


class TestRegistry:
    def test_extensions_registered(self):
        expected = {
            "ext_fusion",
            "ext_fragmentation",
            "ext_sensitivity",
            "ext_transformer",
            "ext_energy",
            "insights",
        }
        assert expected <= set(available_experiments())


class TestFusionAblation:
    def test_fusion_always_speeds_up(self):
        result = run_experiment("ext_fusion")
        assert all(r["speedup"] > 1.0 for r in result.rows)

    def test_avoided_traffic_constant_across_postops(self):
        result = run_experiment("ext_fusion")
        values = {r["dram_bytes_avoided_mb"] for r in result.rows}
        assert len(values) == 1  # always 2x the C matrix


class TestFragmentation:
    def test_one_row_per_config_and_workload(self):
        result = run_experiment("ext_fragmentation")
        assert len(result.rows) == 6 * 6  # 6 workloads x 6 FP32 configs

    def test_most_table3_waste_is_modest(self):
        result = run_experiment("ext_fragmentation")
        modest = [r for r in result.rows if r["waste_pct"] < 10]
        assert len(modest) >= len(result.rows) - 2

    def test_small_k_layer_pays_on_deep_k_native(self):
        """L3's K=128 is smaller than C4's native K=256: the reduction
        dimension doubles through padding — a 50% MAC waste the paper's
        future-work question is about."""
        result = run_experiment("ext_fragmentation")
        row = next(
            r for r in result.rows
            if r["workload"] == "L3" and r["configuration"] == "C4"
        )
        assert row["waste_pct"] == pytest.approx(50.0, abs=1)

    def test_waste_zero_when_aligned(self):
        result = run_experiment("ext_fragmentation")
        # V1 (3072x1024x4096) is an exact multiple of C3's 128x128x128
        row = next(
            r for r in result.rows
            if r["workload"] == "V1" and r["configuration"] == "C3"
        )
        assert row["waste_pct"] == 0.0


class TestSensitivity:
    def test_axes_present(self):
        result = run_experiment("ext_sensitivity")
        axes = {r["parameter"] for r in result.rows}
        assert axes == {"dram_ports", "plios", "aie_freq_hz", "pl_usable_fraction"}

    def test_all_points_positive(self):
        result = run_experiment("ext_sensitivity")
        assert all(r["ms"] > 0 for r in result.rows)


class TestTransformerE2e:
    def test_zoo_covered(self):
        result = run_experiment("ext_transformer")
        assert len(result.rows) == 5

    def test_bigger_models_slower(self):
        result = run_experiment("ext_transformer")
        bert = result.row_by("model", "BERT-large")["ms"]
        llama70 = result.row_by("model", "Llama2-70B")["ms"]
        assert llama70 > 5 * bert

    def test_mlp_dominates(self):
        result = run_experiment("ext_transformer")
        assert all(r["dominant_layer"].startswith("mlp") for r in result.rows)


class TestConsistency:
    def test_emulator_matches_model_exactly(self):
        result = run_experiment("ext_consistency")
        assert all(abs(r["emulator_vs_model_pct"]) < 0.5 for r in result.rows)

    def test_aiesim_converges_to_timing(self):
        result = run_experiment("ext_consistency")
        assert all(abs(r["aiesim_vs_timing_pct"]) < 2.0 for r in result.rows)

    def test_numerics_always_match(self):
        result = run_experiment("ext_consistency")
        assert all(r["numerics_match"] for r in result.rows)


class TestServing:
    def test_latency_explodes_past_capacity(self):
        result = run_experiment("ext_serving")
        p95s = [r["p95_ms"] for r in result.rows]
        assert p95s[-1] > 5 * p95s[0]

    def test_light_load_latency_near_service_time(self):
        result = run_experiment("ext_serving")
        assert result.rows[0]["p50_ms"] < 2.0

    def test_achieved_saturates(self):
        result = run_experiment("ext_serving")
        last = result.rows[-1]
        assert last["achieved_rps"] < last["offered_rps"]


class TestSpmm:
    def test_dense_end_prefers_dense(self):
        result = run_experiment("ext_spmm")
        assert result.row_by("density", 1)["winner"] == "dense"

    def test_sparse_end_prefers_sparse(self):
        result = run_experiment("ext_spmm")
        assert result.row_by("density", 0.01)["winner"] == "sparse"

    def test_speedup_monotone_in_sparsity(self):
        result = run_experiment("ext_spmm")
        speedups = [r["sparse_speedup"] for r in result.rows]
        assert all(b <= a for a, b in zip(speedups, speedups[1:]))


class TestDecode:
    def test_batch_one_wastes_almost_everything(self):
        result = run_experiment("ext_decode")
        assert result.row_by("batch", 1)["padding_waste_pct"] > 95

    def test_batching_restores_utilisation(self):
        result = run_experiment("ext_decode")
        wastes = [r["padding_waste_pct"] for r in result.rows]
        assert wastes == sorted(wastes, reverse=True)
        assert result.rows[-1]["padding_waste_pct"] < 5

    def test_useful_throughput_grows_with_batch(self):
        result = run_experiment("ext_decode")
        tflops = [r["useful_tflops"] for r in result.rows]
        assert all(b > a for a, b in zip(tflops, tflops[1:]))


class TestFaults:
    def test_scenarios_covered(self):
        result = run_experiment("ext_faults")
        assert len(result.rows) == 6
        healthy = result.row_by("scenario", "healthy")
        assert healthy["surviving_configs"] == 11

    def test_clock_derate_hurts_compute_bound(self):
        result = run_experiment("ext_faults")
        healthy = result.row_by("scenario", "healthy")
        derated = result.row_by("scenario", "20% thermal clock derate")
        assert derated["c3_ms"] > 1.15 * healthy["c3_ms"]

    def test_ddr_loss_hurts_memory_bound(self):
        result = run_experiment("ext_faults")
        healthy = result.row_by("scenario", "healthy")
        degraded = result.row_by("scenario", "2 DDR channels down")
        assert degraded["c5_ms"] > 1.2 * healthy["c5_ms"]

    def test_column_fuses_kill_big_configs(self):
        result = run_experiment("ext_faults")
        fused = result.row_by("scenario", "5 AIE columns fused off")
        assert fused["surviving_configs"] < 11


class TestConv:
    def test_all_layers_estimated(self):
        result = run_experiment("ext_conv")
        assert len(result.rows) == 7
        assert all(r["ms"] > 0 for r in result.rows)

    def test_tall_conv_gemms_store_bound(self):
        """Like Fig. 14's small-K DNN layers, tall im2col GEMMs are
        bound by the output store."""
        result = run_experiment("ext_conv")
        assert result.row_by("layer", "stage1_1x1a")["bottleneck"] == "store_c"

    def test_expansion_reported(self):
        result = run_experiment("ext_conv")
        assert result.row_by("layer", "stage1_3x3")["im2col_expansion"] == 9.0


class TestEnergy:
    def test_int8_beats_fp32_efficiency(self):
        result = run_experiment("ext_energy")
        best_fp32 = max(
            r["gflops_per_watt"] for r in result.rows if r["precision"] == "fp32"
        )
        best_int8 = max(
            r["gflops_per_watt"] for r in result.rows if r["precision"] == "int8"
        )
        assert best_int8 > 4 * best_fp32

    def test_power_band(self):
        result = run_experiment("ext_energy")
        assert all(20 < r["avg_watts"] < 400 for r in result.rows)
