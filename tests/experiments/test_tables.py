"""Table driver tests."""

from repro.experiments import run_experiment


class TestTable1:
    def test_rows(self):
        result = run_experiment("table1")
        assert len(result.rows) == 5
        assert result.row_by("platform", "sw_emu")["usecase"] == "FV"
        assert result.row_by("platform", "hw_emu")["speed"] == "Slow"


class TestTable2:
    def test_rows_match_paper(self):
        result = run_experiment("table2")
        assert len(result.rows) == 11
        c6 = result.row_by("configuration", "C6")
        assert c6["aies"] == 384
        assert c6["native_size"] == "384x128x256"
        assert c6["plios"] == 96

    def test_render_contains_all_configs(self):
        text = run_experiment("table2").render()
        for name in ("C1", "C5", "C11"):
            assert name in text


class TestTable3:
    def test_rows(self):
        result = run_experiment("table3")
        assert len(result.rows) == 6
        l2 = result.row_by("id", "L2")
        assert l2["K"] == 20480
        assert l2["workload"] == "Llama2-34B"

    def test_no_square_workloads(self):
        result = run_experiment("table3")
        assert all(r["aspect"] != "square" for r in result.rows)
