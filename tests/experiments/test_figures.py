"""Figure-driver tests: each experiment must reproduce the paper's claims."""

import pytest

from repro.experiments import available_experiments, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run each experiment once per module."""
    cache = {}

    def get(experiment_id):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id)
        return cache[experiment_id]

    return get


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "table1", "table2", "table3",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15",
            "model_accuracy", "buffering", "dram_ports",
        }
        assert expected <= set(available_experiments())

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    @pytest.mark.parametrize("experiment_id", sorted([
        "table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8",
        "fig12", "fig13", "fig15", "dram_ports",
    ]))
    def test_every_fast_experiment_renders(self, results, experiment_id):
        text = results(experiment_id).render()
        assert experiment_id in text


class TestFig5:
    def test_intrinsics_over_90pct(self, results):
        rows = results("fig5").rows
        intr = [r for r in rows if r["style"] == "intrinsic"]
        assert all(r["efficiency"] > 0.85 for r in intr)

    def test_fp32_api_reduction_near_46pct(self, results):
        rows = results("fig5").rows
        intr = next(r for r in rows if r["precision"] == "fp32" and r["style"] == "intrinsic")
        api = next(r for r in rows if r["precision"] == "fp32" and r["style"] == "api")
        reduction = 1 - api["efficiency"] / intr["efficiency"]
        assert reduction == pytest.approx(0.46, abs=0.04)

    def test_int8_api_reduction_near_7pct(self, results):
        rows = results("fig5").rows
        intr = next(r for r in rows if r["precision"] == "int8" and r["style"] == "intrinsic")
        api = next(r for r in rows if r["precision"] == "int8" and r["style"] == "api")
        reduction = 1 - api["efficiency"] / intr["efficiency"]
        assert reduction == pytest.approx(0.07, abs=0.03)

    def test_hw_time_exceeds_aiesim(self, results):
        for row in results("fig5").rows:
            assert row["hw_us"] > row["aiesim_us"]


class TestFig6:
    def test_fp32_efficiency_band_70_to_98(self, results):
        effs = results("fig6").column("efficiency")
        assert min(effs) >= 0.65
        assert max(effs) <= 0.99

    def test_16x128x16_near_best_and_dotted(self, results):
        """Section V-C: long-K kernels like 16x128x16 reach the highest
        efficiencies but need neighbour memory."""
        result = results("fig6")
        row = result.row_by("shape", "16x128x16")
        best = max(result.column("efficiency"))
        assert row["efficiency"] >= 0.97 * best
        assert row["needs_neighbor_memory"]
        best_row = max(result.rows, key=lambda r: r["efficiency"])
        assert "128" in best_row["shape"].split("x")[1]  # K = 128 wins

    def test_majority_compute_bound(self, results):
        """Fig. 6: most FP32 kernels are compute-bound."""
        rows = results("fig6").rows
        compute_bound = sum(1 for r in rows if r["bound"] == "compute")
        assert compute_bound > len(rows) / 2


class TestFig7:
    def test_128cube_highest_efficiency(self, results):
        rows = results("fig7").rows
        row = results("fig7").row_by("shape", "128x128x128")
        assert row["efficiency"] == max(r["efficiency"] for r in rows)
        assert row["needs_neighbor_memory"]

    def test_some_kernels_communication_bound(self, results):
        """Fig. 7: INT8's 16x compute / 4x data asymmetry shows up."""
        rows = results("fig7").rows
        assert any(r["bound"] == "communication" for r in rows)

    def test_int8_worst_efficiency_below_fp32_worst(self, results):
        assert min(results("fig7").column("efficiency")) < min(
            results("fig6").column("efficiency")
        )


class TestFig8:
    def test_panels_present(self, results):
        panels = results("fig8").panels
        assert set(panels) == {
            "fp32 16 AIEs", "fp32 384 AIEs", "int8 16 AIEs", "int8 256 AIEs"
        }

    def test_cascade_always_best(self, results):
        for rows in results("fig8").panels.values():
            cascade = next(r for r in rows if r["scheme"] == "cascade")
            assert cascade["normalized_time"] == 1.0
            feasible = [r["normalized_time"] for r in rows if r["feasible"]]
            assert min(feasible) == 1.0

    def test_int8_via_switch_band(self, results):
        rows = results("fig8").panels["int8 16 AIEs"]
        near = next(r for r in rows if r["scheme"] == "via_switch_near")
        assert 3.1 <= near["normalized_time"] <= 3.4


class TestFig13:
    def test_both_panels(self, results):
        assert set(results("fig13").panels) == {"FP32 (C1)", "INT8 (C7)"}

    def test_fp32_speedup(self, results):
        rows = results("fig13").panels["FP32 (C1)"]
        assert rows[-1]["speedup_vs_3plio"] == pytest.approx(4.6, abs=0.3)

    def test_utilization_tradeoff(self, results):
        rows = results("fig13").panels["FP32 (C1)"]
        assert rows[0]["array_utilization_pct"] == 100
        assert rows[-1]["array_utilization_pct"] == 28


class TestFig15:
    def test_red_dot_classification(self, results):
        result = results("fig15")
        for workload_id in ("B1", "V1", "L1", "L2"):
            assert result.row_by("workload", workload_id)["ideal_bound"] == "compute"
        for workload_id in ("L3", "L4"):
            assert result.row_by("workload", workload_id)["ideal_bound"] == "dram"

    def test_all_tiled_points_dram_bound(self, results):
        assert all(r["tiled_bound"] == "dram" for r in results("fig15").rows)

    def test_bandwidth_lines(self, results):
        lines = {r["line"]: r["gb_per_s"] for r in results("fig15").panels["bandwidth_lines"]}
        assert lines["DRAM (theoretical)"] == pytest.approx(102.4)
        assert lines["DRAM (achieved, 4r2w)"] == pytest.approx(34.0, abs=0.5)
        assert lines["PLIO (PL->AIE)"] == pytest.approx(1248.0)


class TestDramPorts:
    def test_plateau_rows(self, results):
        result = results("dram_ports")
        assert result.row_by("ports", "2r1w")["achieved_gb_s"] == pytest.approx(20.0, abs=0.2)
        assert result.row_by("ports", "4r2w")["achieved_gb_s"] == pytest.approx(34.0, abs=0.2)
        assert result.row_by("ports", "8r4w")["achieved_gb_s"] == pytest.approx(34.0, abs=0.2)
