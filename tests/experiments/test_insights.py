"""Insight-audit tests: every boxed paper claim must hold on the models."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.insights import INSIGHTS


@pytest.fixture(scope="module")
def audit():
    return run_experiment("insights")


class TestInsights:
    def test_ten_insights(self):
        assert len(INSIGHTS) == 10

    def test_ids_unique(self):
        ids = [i.insight_id for i in INSIGHTS]
        assert len(set(ids)) == len(ids)

    def test_all_hold(self, audit):
        failing = [r["insight"] for r in audit.rows if not r["holds"]]
        assert not failing, f"insights no longer supported by the models: {failing}"

    def test_every_section_covered(self):
        sections = {i.section for i in INSIGHTS}
        assert {"V-B", "V-C", "V-D", "V-G", "V-H", "V-I", "V-J", "IV-C"} <= sections

    def test_evidence_strings_nonempty(self, audit):
        assert all(r["evidence"] for r in audit.rows)

    @pytest.mark.parametrize("insight", INSIGHTS, ids=lambda i: i.insight_id)
    def test_each_check_individually(self, insight):
        passed, detail = insight.check()
        assert passed, detail
