"""Research-question index tests."""

from repro.experiments import available_experiments, run_experiment
from repro.experiments.research_questions import RESEARCH_QUESTIONS


class TestIndex:
    def test_eight_questions(self):
        """Section IV-B poses eight bullet questions."""
        assert len(RESEARCH_QUESTIONS) == 8

    def test_every_referenced_experiment_exists(self):
        known = set(available_experiments())
        for question in RESEARCH_QUESTIONS:
            for experiment_id in question.experiments:
                assert experiment_id in known, experiment_id

    def test_driver_renders(self):
        result = run_experiment("questions")
        assert len(result.rows) == 8
        assert "intrinsics" in result.render()

    def test_all_questions_have_answers(self):
        assert all(q.answer for q in RESEARCH_QUESTIONS)
