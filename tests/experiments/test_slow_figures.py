"""Tests for the heavier experiment drivers (scaling, breakdown, fig14)."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig9():
    return run_experiment("fig9")


@pytest.fixture(scope="module")
def fig10():
    return run_experiment("fig10")


@pytest.fixture(scope="module")
def fig11():
    return run_experiment("fig11")


@pytest.fixture(scope="module")
def fig14():
    return run_experiment("fig14")


class TestFig9StrongScaling:
    def test_fp32_latency_decreases_through_c5(self, fig9):
        rows = fig9.panels["FP32"]
        times = [r["seconds"] for r in rows]
        for a, b in zip(times[:4], times[1:5]):
            assert b < a

    def test_tail_flattens_when_memory_bound(self, fig9):
        """Beyond the compute-bound region the curve flattens; C6 stays
        within 1.3x of C5 (our DSE's plan for C6 is B-reread limited;
        see EXPERIMENTS.md)."""
        rows = fig9.panels["FP32"]
        c5 = fig9.row_by("configuration", "C5", panel="FP32")["seconds"]
        c6 = fig9.row_by("configuration", "C6", panel="FP32")["seconds"]
        assert c6 <= 1.3 * c5

    def test_int8_monotone_within_tolerance(self, fig9):
        times = [r["seconds"] for r in fig9.panels["INT8"]]
        for a, b in zip(times, times[1:]):
            assert b <= 1.05 * a

    def test_order_of_magnitude_speedup_c1_to_c6(self, fig9):
        """Fig. 9: latency 'decreases exponentially' across configs."""
        rows = fig9.panels["FP32"]
        assert rows[0]["seconds"] / rows[-1]["seconds"] > 8

    def test_bottleneck_shifts_to_memory(self, fig9):
        rows = fig9.panels["FP32"]
        assert rows[0]["bottleneck"] == "aie"  # compute/PLIO side binds
        assert rows[-1]["bottleneck"] in ("load_a", "load_b", "store_c")


class TestFig10WeakScaling:
    def test_time_rises_with_config(self, fig10):
        for panel in fig10.panels.values():
            times = [r["us"] for r in panel]
            assert all(b >= a for a, b in zip(times, times[1:]))

    def test_io_grows_with_native_size(self, fig10):
        for panel in fig10.panels.values():
            io = [r["io_bytes"] for r in panel]
            assert all(b > a for a, b in zip(io, io[1:]))

    def test_spread_within_paper_band(self, fig10):
        """Paper: max difference 100% (FP32) / 1.4x (INT8).  Our setup
        time compresses the spread; assert the band loosely."""
        fp32 = fig10.panels["FP32"]
        assert 1.15 <= fp32[-1]["vs_smallest"] <= 2.2


class TestFig11Breakdown:
    def test_model_error_within_5pct(self, fig11):
        assert all(abs(r["model_error_pct"]) <= 5.0 for r in fig11.rows)

    def test_memory_bound_right_of_c4(self, fig11):
        for name in ("C5", "C6"):
            assert fig11.row_by("configuration", name)["memory_bound"]

    def test_compute_side_bound_left_of_c4(self, fig11):
        for name in ("C1", "C2", "C3"):
            assert not fig11.row_by("configuration", name)["memory_bound"]

    def test_c6_total_near_paper(self, fig11):
        """Section V-G quotes 9.95 ms for C6 at 2048^3."""
        assert fig11.row_by("configuration", "C6")["hw_ms"] == pytest.approx(
            9.95, rel=0.15
        )

    def test_exposed_plio_positive(self, fig11):
        assert all(r["exposed_plio_ms"] > 0 for r in fig11.rows)


class TestModelAccuracy:
    def test_within_5pct_everywhere(self):
        result = run_experiment("model_accuracy")
        assert all(abs(r["error_pct"]) <= 5.0 for r in result.rows)
        assert len(result.rows) == 11 * 6


class TestBuffering:
    def test_fp32_same_tiles_matches_paper_ratio(self):
        result = run_experiment("buffering")
        c6 = result.row_by("configuration", "C6")
        assert 1.35 <= c6["same_tiles_ratio"] <= 1.6  # paper: 1.48

    def test_int8_retiled_beats_same_tiles(self):
        result = run_experiment("buffering")
        c11 = result.row_by("configuration", "C11")
        assert c11["single_retiled_ms"] < c11["single_same_tiles_ms"]


class TestFig14:
    def test_l3_l4_store_bound_everywhere(self, fig14):
        rows = [r for r in fig14.rows if r["workload"] in ("L3", "L4")]
        assert rows and all(r["bottleneck"] == "store_c" for r in rows)

    def test_inputs_bound_at_low_bandwidth(self, fig14):
        rows = [
            r
            for r in fig14.rows
            if r["variant"].endswith("(2r1w)") and r["workload"] in ("B1", "V1", "L1", "L2")
        ]
        assert rows and all(r["input_load_bound"] for r in rows)

    def test_more_bandwidth_reduces_latency(self, fig14):
        for workload in ("B1", "V1", "L1", "L2", "L3", "L4"):
            slow = next(
                r["ms"] for r in fig14.rows
                if r["workload"] == workload and "20GB/s" in r["variant"]
            )
            fast = next(
                r["ms"] for r in fig14.rows
                if r["workload"] == workload and r["variant"] == "C6 32^3 34GB/s (4r2w)"
            )
            assert fast < slow

    def test_four_variants_times_six_workloads(self, fig14):
        assert len(fig14.rows) == 4 * 6
