"""Integration tests: whole-library flows a downstream user would run."""

import pytest

from repro import (
    AnalyticalModel,
    CharmDesign,
    DesignSpaceExplorer,
    FunctionalGemm,
    GemmShape,
    HwSimulator,
    Precision,
    Roofline,
    config_by_name,
    run_on_platform,
    workload_by_id,
)
from repro.hw.specs import AIE_ML_DEVICE


class TestAnalyzeThenVerifyThenRun:
    """The quickstart story: estimate, verify numerics, simulate HW."""

    def test_full_flow_fp32(self):
        design = CharmDesign(config_by_name("C3"))
        workload = GemmShape(1024, 1024, 1024)

        estimate = AnalyticalModel(design).estimate(workload)
        functional = FunctionalGemm(design, seed=0).run(design.native_size)
        hw = HwSimulator(design).run(workload)

        assert functional.correct
        assert estimate.total_seconds == pytest.approx(hw.total_seconds, rel=0.05)

    def test_full_flow_int8(self):
        design = CharmDesign(config_by_name("C9"))
        workload = GemmShape(1024, 1024, 1024)
        estimate = AnalyticalModel(design).estimate(workload)
        hw = HwSimulator(design).run(workload)
        assert estimate.total_seconds == pytest.approx(hw.total_seconds, rel=0.05)
        assert FunctionalGemm(design, seed=1).run(design.native_size).correct


class TestDseToExecution:
    def test_explored_design_runs_end_to_end(self):
        explorer = DesignSpaceExplorer(Precision.FP32, max_aies=64)
        workload = GemmShape(1024, 1024, 1024)
        best = explorer.best(workload)
        design = CharmDesign(best.config)
        hw = HwSimulator(design).run(workload)
        # the DSE estimate and the HW simulation agree
        assert best.seconds == pytest.approx(hw.total_seconds, rel=0.06)

    def test_dse_beats_naive_smallest_config(self):
        explorer = DesignSpaceExplorer(Precision.FP32)
        workload = GemmShape(2048, 2048, 2048)
        best = explorer.best(workload)
        small = AnalyticalModel(CharmDesign(config_by_name("C1"))).estimate(workload)
        assert best.seconds < small.total_seconds


class TestRealWorkloadStory:
    def test_llama_workload_on_best_fp32_config(self):
        """Fig. 14's setup: L3 on C6 is store-bound."""
        design = CharmDesign(config_by_name("C6"))
        estimate = AnalyticalModel(design).estimate(workload_by_id("L3").shape)
        assert str(estimate.bottleneck) == "store_c"

    def test_roofline_agrees_with_model_on_boundedness(self):
        """If the roofline calls a tiled workload DRAM-bound, the
        analytical model should also report a memory bottleneck."""
        config = config_by_name("C11")
        design = CharmDesign(config)
        roofline = Roofline(Precision.INT8)
        for workload_id in ("L3", "L4"):
            shape = workload_by_id(workload_id).shape
            point = roofline.tiled_point(workload_id, shape, config)
            estimate = AnalyticalModel(design).estimate(shape)
            assert not point.compute_bound
            assert estimate.breakdown.memory_bound


class TestPlatformParity:
    def test_hw_and_analytical_agree(self):
        design = CharmDesign(config_by_name("C4"))
        workload = GemmShape(1024, 1024, 1024)
        hw = run_on_platform("hw", design, workload)
        analytical = run_on_platform("analytical", design, workload)
        assert analytical.seconds == pytest.approx(hw.seconds, rel=0.06)


class TestSecondGenerationDevice:
    """Section V-K: the analysis transfers to AIE-ML."""

    def test_aie_ml_shifts_compute_bound_designs_to_communication(self):
        """Section V-K: AIE-ML's higher per-tile throughput changes the
        quantitative picture — a design that was compute-bound on
        VCK5000 becomes communication-bound, and the paper's analysis
        machinery identifies it."""
        workload = GemmShape(2048, 2048, 2048)
        config = config_by_name("C3")  # compute-bound on VCK5000
        vck = AnalyticalModel(CharmDesign(config)).estimate(workload)
        aie_ml = AnalyticalModel(CharmDesign(config, device=AIE_ML_DEVICE)).estimate(
            workload
        )
        assert str(vck.bottleneck) == "compute"
        assert str(aie_ml.bottleneck).startswith("plio")
        assert aie_ml.total_seconds <= vck.total_seconds

    def test_aie_ml_has_double_the_peak(self):
        config = config_by_name("C9")
        vck = CharmDesign(config)
        aie_ml = CharmDesign(config, device=AIE_ML_DEVICE)
        assert aie_ml.peak_ops() == 2 * vck.peak_ops()

    def test_functional_on_second_gen(self):
        config = config_by_name("C7")
        design = CharmDesign(config, device=AIE_ML_DEVICE)
        assert FunctionalGemm(design, seed=2).run(design.native_size).correct
