"""Trace summary math against hand-computed fixtures."""

import pytest

from repro.obs.summary import summarize_trace


def track_meta(pid, tid, name):
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "args": {"name": name},
    }


def slice_event(pid, tid, ts_us, dur_us, name="work"):
    return {
        "name": name,
        "ph": "X",
        "ts": ts_us,
        "dur": dur_us,
        "pid": pid,
        "tid": tid,
    }


def two_track_trace():
    """load busy [0,2]+[3,5]s, compute busy [1,4]s -> wall 5s.

    Hand-computed: load busy 4s (util 0.8), compute busy 3s (util 0.6);
    overlap segments [1,2] and [3,4] -> 2s on each track.
    """
    events = [
        track_meta(1, 1, "load"),
        track_meta(1, 2, "compute"),
        slice_event(1, 1, 0, 2_000_000),
        slice_event(1, 2, 1_000_000, 3_000_000),
        slice_event(1, 1, 3_000_000, 2_000_000),
    ]
    return {"traceEvents": events}


class TestTwoTrackFixture:
    def test_wall_and_busy(self):
        summary = summarize_trace(two_track_trace())
        assert summary.wall_seconds == pytest.approx(5.0)
        by_name = {t.track: t for t in summary.tracks}
        assert by_name["load"].busy_seconds == pytest.approx(4.0)
        assert by_name["compute"].busy_seconds == pytest.approx(3.0)

    def test_utilization(self):
        summary = summarize_trace(two_track_trace())
        by_name = {t.track: t for t in summary.tracks}
        assert by_name["load"].utilization == pytest.approx(0.8)
        assert by_name["compute"].utilization == pytest.approx(0.6)

    def test_overlap(self):
        summary = summarize_trace(two_track_trace())
        by_name = {t.track: t for t in summary.tracks}
        assert by_name["load"].overlap_seconds == pytest.approx(2.0)
        assert by_name["compute"].overlap_seconds == pytest.approx(2.0)
        assert by_name["compute"].overlap_fraction == pytest.approx(2.0 / 3.0)

    def test_bottleneck_is_busiest_track(self):
        summary = summarize_trace(two_track_trace())
        assert summary.bottleneck == "load"

    def test_render_mentions_bound_track(self):
        text = summarize_trace(two_track_trace()).render()
        assert "<-- bound" in text
        assert "bottleneck: load" in text


class TestIntervalMerging:
    def test_nested_slices_do_not_double_count(self):
        events = [
            track_meta(1, 1, "t"),
            slice_event(1, 1, 0, 4_000_000),
            slice_event(1, 1, 1_000_000, 1_000_000),  # nested inside
        ]
        summary = summarize_trace({"traceEvents": events})
        (track,) = summary.tracks
        assert track.busy_seconds == pytest.approx(4.0)
        assert track.events == 2

    def test_zero_duration_slice_contributes_nothing(self):
        events = [
            track_meta(1, 1, "t"),
            slice_event(1, 1, 0, 2_000_000),
            slice_event(1, 1, 3_000_000, 0),
        ]
        summary = summarize_trace({"traceEvents": events})
        (track,) = summary.tracks
        assert track.busy_seconds == pytest.approx(2.0)
        assert summary.wall_seconds == pytest.approx(3.0)


class TestEventKinds:
    def test_async_pairs_count_as_intervals(self):
        events = [
            track_meta(1, 1, "queue"),
            {"name": "w", "ph": "b", "ts": 0, "pid": 1, "tid": 1,
             "cat": "wait", "id": "1"},
            {"name": "w", "ph": "e", "ts": 2_000_000, "pid": 1, "tid": 1,
             "cat": "wait", "id": "1"},
        ]
        summary = summarize_trace({"traceEvents": events})
        (track,) = summary.tracks
        assert track.track == "queue"
        assert track.busy_seconds == pytest.approx(2.0)

    def test_sync_pairs_count_as_intervals(self):
        events = [
            track_meta(1, 1, "t"),
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "x", "ph": "E", "ts": 1_000_000, "pid": 1, "tid": 1},
        ]
        summary = summarize_trace({"traceEvents": events})
        assert summary.tracks[0].busy_seconds == pytest.approx(1.0)

    def test_instants_counted_not_timed(self):
        events = [
            track_meta(1, 1, "chaos"),
            {"name": "kill", "ph": "i", "ts": 500, "pid": 1, "tid": 1},
            {"name": "kill", "ph": "i", "ts": 900, "pid": 1, "tid": 1},
        ]
        summary = summarize_trace({"traceEvents": events})
        (track,) = summary.tracks
        assert track.instants == 2
        assert track.busy_seconds == 0.0

    def test_multiple_pids_qualify_track_names(self):
        events = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "ts": 0,
             "args": {"name": "wall"}},
            {"name": "process_name", "ph": "M", "pid": 2, "tid": 0, "ts": 0,
             "args": {"name": "sim"}},
            track_meta(1, 1, "serving"),
            track_meta(2, 2, "C5"),
            slice_event(1, 1, 0, 1_000_000),
            slice_event(2, 2, 0, 1_000_000),
        ]
        summary = summarize_trace({"traceEvents": events})
        names = {t.track for t in summary.tracks}
        assert names == {"wall/serving", "sim/C5"}


class TestEdgeCases:
    def test_empty_trace(self):
        summary = summarize_trace({"traceEvents": []})
        assert summary.wall_seconds == 0.0
        assert summary.tracks == []
        assert summary.bottleneck is None
        assert "(no rows)" in summary.render()

    def test_rejects_malformed_input(self):
        with pytest.raises(ValueError):
            summarize_trace({"wrong": []})

    def test_single_track_has_no_overlap(self):
        events = [track_meta(1, 1, "t"), slice_event(1, 1, 0, 1_000_000)]
        summary = summarize_trace({"traceEvents": events})
        assert summary.tracks[0].overlap_seconds == 0.0


class TestIntervalMergeEdgeCases:
    def test_zero_duration_span_bridging_two_intervals_merges_them(self):
        # touching intervals merge; the zero-width span at the seam adds
        # an event but no time
        events = [
            track_meta(1, 1, "t"),
            slice_event(1, 1, 0, 1_000_000),
            slice_event(1, 1, 1_000_000, 0),
            slice_event(1, 1, 1_000_000, 1_000_000),
        ]
        summary = summarize_trace({"traceEvents": events})
        (track,) = summary.tracks
        assert track.events == 3
        assert track.busy_seconds == pytest.approx(2.0)
        assert track.utilization == pytest.approx(1.0)

    def test_fully_nested_async_spans_do_not_double_count(self):
        def pair(id_, start_us, end_us):
            common = {"name": "w", "pid": 1, "tid": 1, "cat": "wait", "id": id_}
            return [
                {**common, "ph": "b", "ts": start_us},
                {**common, "ph": "e", "ts": end_us},
            ]

        events = [
            track_meta(1, 1, "queue"),
            *pair("outer", 0, 4_000_000),
            *pair("inner", 1_000_000, 2_000_000),  # strictly inside outer
        ]
        summary = summarize_trace({"traceEvents": events})
        (track,) = summary.tracks
        assert track.events == 2
        assert track.busy_seconds == pytest.approx(4.0)

    def test_single_event_track_is_fully_utilized_and_bound(self):
        events = [track_meta(1, 1, "solo"), slice_event(1, 1, 0, 2_000_000)]
        summary = summarize_trace({"traceEvents": events})
        (track,) = summary.tracks
        assert track.events == 1
        assert track.utilization == pytest.approx(1.0)
        assert track.overlap_fraction == 0.0
        assert summary.bottleneck == "solo"

    def test_overlap_fraction_on_empty_track_is_zero_not_nan(self):
        # an instants-only track has zero busy seconds; the fraction
        # must read 0.0 instead of dividing by zero
        events = [
            track_meta(1, 1, "busy"),
            track_meta(1, 2, "chaos"),
            slice_event(1, 1, 0, 1_000_000),
            {"name": "kill", "ph": "i", "ts": 500, "pid": 1, "tid": 2},
        ]
        summary = summarize_trace({"traceEvents": events})
        by_name = {t.track: t for t in summary.tracks}
        empty = by_name["chaos"]
        assert empty.busy_seconds == 0.0
        assert empty.overlap_fraction == 0.0
        assert by_name["busy"].overlap_seconds == 0.0

    def test_zero_duration_spans_create_no_overlap(self):
        # both tracks "active" for zero seconds at t=1: no overlap accrues
        events = [
            track_meta(1, 1, "a"),
            track_meta(1, 2, "b"),
            slice_event(1, 1, 0, 2_000_000),
            slice_event(1, 2, 1_000_000, 0),
        ]
        summary = summarize_trace({"traceEvents": events})
        by_name = {t.track: t for t in summary.tracks}
        assert by_name["a"].overlap_seconds == 0.0
        assert by_name["b"].overlap_seconds == 0.0
        assert by_name["b"].overlap_fraction == 0.0
